//! Where does the energy go? Breaks an energy ledger into its categories
//! for the monolithic baseline and the partitioned cache, across sizes —
//! the mechanics behind the paper's Esav columns.
//!
//! ```sh
//! cargo run --release --example energy_study
//! ```

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::policy::PolicyKind;
use nbti_cache_repro::arch::report::Table;
use nbti_cache_repro::power::{BankArray, BreakevenAnalysis, EnergyModel, Technology};
use nbti_cache_repro::sim::CacheGeometry;
use nbti_cache_repro::traces::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = suite::by_name("gsme").expect("in suite");

    let mut table = Table::new(
        "Energy breakdown, gsme (fJ per cycle, averaged)",
        vec![
            "config".into(),
            "dynamic".into(),
            "leakage".into(),
            "wake".into(),
            "overhead".into(),
            "total".into(),
            "Esav %".into(),
        ],
    );

    for kb in [8u64, 16, 32] {
        let geom = CacheGeometry::direct_mapped(kb * 1024, 16, 4)?;
        let arch = PartitionedCache::new(geom, PolicyKind::Identity)?;
        let out = arch.simulate(profile.trace(5).take(320_000), UpdateSchedule::Never)?;
        let cycles = out.cycles as f64;
        let mono = &out.monolithic_baseline;
        table.push_row(vec![
            format!("{kb}kB monolithic"),
            format!("{:.1}", mono.dynamic_fj / cycles),
            format!("{:.1}", mono.leakage_fj / cycles),
            "0.0".into(),
            "0.0".into(),
            format!("{:.1}", mono.total_fj() / cycles),
            "-".into(),
        ]);
        table.push_row(vec![
            format!("{kb}kB partitioned"),
            format!("{:.1}", out.energy.dynamic_fj / cycles),
            format!("{:.1}", out.energy.leakage_fj / cycles),
            format!("{:.1}", out.energy.wake_fj / cycles),
            format!("{:.1}", out.energy.overhead_fj / cycles),
            format!("{:.1}", out.energy.total_fj() / cycles),
            format!("{:.1}", 100.0 * out.energy_saving()),
        ]);
    }
    println!("{table}");

    // The breakeven analysis that drives the Block Control sizing.
    let tech = Technology::default_45nm();
    let model = EnergyModel::new(tech)?;
    println!("\nBreakeven times (bank of a 16 B-line cache, M = 4):");
    for (kb, lines, tag) in [(8u64, 128u64, 20u64), (16, 256, 19), (32, 512, 18)] {
        let bank = BankArray::new(lines, 128, tag)?;
        let be = BreakevenAnalysis::for_bank(&model, &bank)?;
        println!(
            "  {kb:>2} kB cache: {:>3} cycles ({}-bit Block Control counters)",
            be.cycles(),
            be.counter_bits()
        );
    }
    Ok(())
}
