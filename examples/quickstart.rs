//! Quickstart: simulate one workload on the paper's reference cache and
//! print the three headline quantities — energy saving, lifetime without
//! re-indexing (LT0) and lifetime with it (LT).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nbti_cache_repro::arch::experiment::{run_benchmark, ExperimentConfig};
use nbti_cache_repro::traces::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's reference configuration: a 16 kB direct-mapped cache
    // with 16 B lines, split into M = 4 uniform banks.
    let cfg = ExperimentConfig::paper_reference();
    let ctx = cfg.build_context()?;

    // `sha` is the paper's best case: two banks stream constantly while
    // the other two are idle >94 % of the time.
    let profile = suite::by_name("sha").expect("sha is in the MediaBench suite");
    let result = run_benchmark(&profile, &cfg, &ctx)?;

    println!("benchmark        : {}", result.name);
    println!(
        "useful idleness  : {:?} %",
        result
            .useful_idleness
            .iter()
            .map(|v| (v * 1000.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("energy saving    : {:.1} %", 100.0 * result.esav);
    println!(
        "lifetime LT0     : {:.2} years (power management only)",
        result.lt0_years
    );
    println!(
        "lifetime LT      : {:.2} years (with Probing re-indexing)",
        result.lt_years
    );
    println!(
        "re-indexing gain : +{:.0} % over the power-managed cache",
        100.0 * (result.lt_years - result.lt0_years) / result.lt0_years
    );
    println!(
        "vs monolithic    : {:.2}x the 2.93-year monolithic-cell lifetime",
        result.lt_years / 2.93
    );
    Ok(())
}
