//! Builds a custom synthetic workload from scratch — regions, phase
//! schedule, patterns — and a custom indexing policy registered from
//! user code, then runs both through the Study API. This is the path a
//! user takes to evaluate the architecture on *their* traffic rather
//! than the MediaBench models.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use nbti_cache_repro::arch::experiment::ExperimentContext;
use nbti_cache_repro::arch::{PolicyRegistry, Probing, StudySpec};
use nbti_cache_repro::sim::BankMapping;
use nbti_cache_repro::traces::{AccessPattern, Region, ScheduleBuilder, WorkloadProfile};

/// A user-defined policy: probing that skips ahead by a seed-derived
/// stride (any odd stride is coprime to a power-of-two M, so the window
/// fairness of plain probing is preserved).
struct StridedProbing {
    stride: u32,
    banks: u32,
    offset: u32,
}

impl BankMapping for StridedProbing {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        (logical + self.offset) & (banks - 1)
    }

    fn update(&mut self) {
        self.offset = (self.offset + self.stride) & (self.banks - 1);
    }

    fn name(&self) -> &str {
        "strided-probing"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A packet-processing flavour: one hot flow table, one streaming
    // payload buffer, two rarely-touched control regions.
    let quarter = 4096u64;
    let regions = [
        // Bank 0: flow table, heavily skewed lookups.
        vec![Region::new(0, 2048, AccessPattern::Hotspot { hot: 0.2 })],
        // Bank 1: payload streaming.
        vec![Region::new(
            quarter,
            2048,
            AccessPattern::Sequential { stride: 16 },
        )],
        // Bank 2: statistics counters, random scattered updates.
        vec![Region::new(2 * quarter, 1024, AccessPattern::Random)],
        // Bank 3: config block, touched rarely.
        vec![Region::new(3 * quarter, 512, AccessPattern::Random)],
    ];
    // Banks 0-1 run hot; bank 2 idles 70 %, bank 3 idles 95 % of slots.
    let schedule = ScheduleBuilder::new([0.05, 0.10, 0.70, 0.95]).build();
    let profile = WorkloadProfile::new(
        "packet-pipeline",
        regions,
        schedule,
        2,         // two traffic epochs (e.g. two tenant contexts)
        16 * 1024, // one cache period apart
        0.10,      // lingering cross-epoch traffic
        0.40,      // write-heavy (counter updates)
        0.5,       // balanced stored values
    );

    // Register the custom policy next to the built-ins.
    let mut registry = PolicyRegistry::builtin();
    registry.register_fn(
        "strided-probing",
        "probing with a seed-derived odd stride (user example)",
        |banks, seed| {
            Probing::new(banks)?; // reuse the built-in bank-count validation
            Ok(Box::new(StridedProbing {
                stride: ((seed as u32) | 1) & (banks - 1) | 1,
                banks,
                offset: 0,
            }))
        },
    )?;

    // One workload, three policies, one declarative run.
    let ctx = ExperimentContext::new()?;
    let report = StudySpec::new("packet pipeline study")
        .registry(registry)
        .workloads([profile])
        .policies(["identity", "probing", "strided-probing"])
        .base_seed(2024)
        .run(&ctx)?;

    let baseline = &report.records()[0];
    println!("workload         : {}", baseline.scenario.workload);
    println!("miss rate        : {:.3}", baseline.miss_rate);
    println!(
        "useful idleness  : {:?}",
        baseline
            .useful_idleness
            .iter()
            .map(|v| format!("{:.1}%", v * 100.0))
            .collect::<Vec<_>>()
    );
    println!("energy saving    : {:.1} %", 100.0 * baseline.esav);
    println!();
    for r in report.records() {
        println!(
            "{:>16} : LT {:.2} years (+{:.0} % over no re-indexing)",
            r.scenario.policy,
            r.lt_years(),
            100.0 * (r.lt_years() - r.lt0_years()) / r.lt0_years()
        );
    }
    Ok(())
}
