//! Builds a custom synthetic workload from scratch — regions, phase
//! schedule, patterns — runs it through the partitioned cache and the
//! aging pipeline. This is the path a user takes to evaluate the
//! architecture on *their* traffic rather than the MediaBench models.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::experiment::ExperimentConfig;
use nbti_cache_repro::arch::policy::PolicyKind;
use nbti_cache_repro::traces::{
    AccessPattern, Region, ScheduleBuilder, WorkloadProfile,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A packet-processing flavour: one hot flow table, one streaming
    // payload buffer, two rarely-touched control regions.
    let quarter = 4096u64;
    let regions = [
        // Bank 0: flow table, heavily skewed lookups.
        vec![Region::new(0, 2048, AccessPattern::Hotspot { hot: 0.2 })],
        // Bank 1: payload streaming.
        vec![Region::new(quarter, 2048, AccessPattern::Sequential { stride: 16 })],
        // Bank 2: statistics counters, random scattered updates.
        vec![Region::new(2 * quarter, 1024, AccessPattern::Random)],
        // Bank 3: config block, touched rarely.
        vec![Region::new(3 * quarter, 512, AccessPattern::Random)],
    ];
    // Banks 0-1 run hot; bank 2 idles 70 %, bank 3 idles 95 % of slots.
    let schedule = ScheduleBuilder::new([0.05, 0.10, 0.70, 0.95]).build();
    let profile = WorkloadProfile::new(
        "packet-pipeline",
        regions,
        schedule,
        2,         // two traffic epochs (e.g. two tenant contexts)
        16 * 1024, // one cache period apart
        0.10,      // lingering cross-epoch traffic
        0.40,      // write-heavy (counter updates)
        0.5,       // balanced stored values
    );

    let cfg = ExperimentConfig::paper_reference();
    let ctx = cfg.build_context()?;
    let arch = PartitionedCache::new(cfg.geometry()?, PolicyKind::Probing)?;
    let out = arch.simulate(
        profile.trace(2024).take(320_000),
        UpdateSchedule::Never,
    )?;
    out.validate().map_err(std::io::Error::other)?;

    println!("workload         : {}", profile.name());
    println!("miss rate        : {:.3}", out.miss_rate());
    println!("useful idleness  : {:?}",
        out.useful_idleness_all().iter().map(|v| format!("{:.1}%", v * 100.0)).collect::<Vec<_>>());
    println!("energy saving    : {:.1} %", 100.0 * out.energy_saving());

    let sleep = out.sleep_fraction_all();
    let lt0 = ctx.aging.cache_lifetime(&sleep, profile.p0(), PolicyKind::Identity)?;
    let lt = ctx.aging.cache_lifetime(&sleep, profile.p0(), PolicyKind::Probing)?;
    println!("lifetime LT0/LT  : {lt0:.2} / {lt:.2} years (+{:.0} %)",
        100.0 * (lt - lt0) / lt0);
    Ok(())
}
