//! The analysis layer as a library: run one small sweep, then query,
//! aggregate, baseline-join, re-render and diff it — everything after
//! the measurement is pure functions over the [`StudyReport`].
//!
//! Mirrors the "Query and compare studies" walkthrough in
//! EXPERIMENTS.md, which drives the same machinery from the `study`
//! CLI (`--format`, `--group-by`, `--baseline`, `compare`).
//!
//! ```sh
//! cargo run --release --example query_report
//! ```
//!
//! [`StudyReport`]: nbti_cache_repro::arch::study::StudyReport

use nbti_cache_repro::arch::analysis::{Axis, Query, Reduce, ReportDiff};
use nbti_cache_repro::arch::render::{self, Format};
use nbti_cache_repro::arch::report::Table;
use nbti_cache_repro::arch::session::StudySession;
use nbti_cache_repro::arch::study::StudyReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Measure once: the paper's comparative pair — the conventional
    //    identity-indexed cache vs the Probing rotation — over two
    //    sizes and two workloads.
    let session = StudySession::new();
    let spec = session
        .spec("query demo")
        .cache_kb([8, 16])
        .policies(["identity", "probing"])
        .workload_names(["sha", "CRC32"])?
        .trace_cycles(40_000);
    let report = session.run(&spec)?;

    // 2. Query: filter / group-by / reduce over any axis and metric.
    //    Groups come back in first-appearance order; empty selections
    //    and missing metrics are errors, never silent NaNs.
    println!("mean lifetime by (policy, cache size):");
    let rows = Query::new(&report)
        .group_by([Axis::Policy, Axis::CacheBytes])
        .reduce("lt_years", Reduce::Mean)?;
    for row in &rows {
        println!(
            "  {:>9} @ {:>5} B: {:.2} y",
            row.key[0], row.key[1], row.value
        );
    }

    // 3. Derive the paper's headline: lifetime gain over the baseline,
    //    as a join of scenarios differing only on the policy axis.
    println!("\nlifetime gain vs the conventional (identity) cache:");
    let gains = Query::new(&report).gain_vs(Axis::Policy, "identity", "lt_years")?;
    for g in &gains {
        println!(
            "  {:>7} / {:>5} @ {:>5} B: {:.2}x ({:.2} y over {:.2} y)",
            g.record.scenario.policy,
            g.record.scenario.workload,
            g.record.scenario.cache_bytes,
            g.gain,
            g.value,
            g.base
        );
    }
    let overall = Reduce::Geomean.apply(&gains.iter().map(|g| g.gain).collect::<Vec<_>>())?;
    println!("  geomean: {overall:.2}x");

    // 4. Re-render the derived result as a paper-ready Markdown table
    //    (the `study` CLI's --group-by/--baseline/--format path).
    let mut table = Table::new(
        "Lifetime gain vs identity",
        vec!["cache".into(), "gain".into()],
    );
    for size in Query::new(&report).distinct(Axis::CacheBytes) {
        let at_size: Vec<f64> = gains
            .iter()
            .filter(|g| Axis::CacheBytes.value_of(&g.record.scenario) == size)
            .map(|g| g.gain)
            .collect();
        table.push_row(vec![
            size.to_string(),
            format!("{:.2}x", Reduce::Geomean.apply(&at_size)?),
        ]);
    }
    println!("\n{}", render::table(&table, Format::Markdown));

    // 5. Round-trip and diff: the canonical JSON parses back into a
    //    report that diffs empty against the original, cell for cell —
    //    publishing a report loses nothing.
    let replayed = StudyReport::from_json(&report.to_json())?;
    let diff = ReportDiff::between(&report, &replayed, 0.0);
    assert!(diff.is_empty(), "round-trip must not move a cell: {diff}");
    println!(
        "round-trip diff: {} scenarios matched, clean",
        diff.matched()
    );
    Ok(())
}
