//! The geometry axis end to end: sweep associativity, put an L2 behind
//! the L1, and register a custom way-replacement policy by name. This
//! example doubles as an API smoke test for `StudySpec::ways()` /
//! `.replacement()` / `.l2_cache_kb()` and the per-level L2 metrics
//! (`sleep_fraction_l2`, `lt_years_l2`).
//!
//! ```sh
//! cargo run --release --example hierarchy_sweep
//! ```

use nbti_cache_repro::arch::analysis::{self, Axis};
use nbti_cache_repro::arch::model::ModelContext;
use nbti_cache_repro::arch::render::{self, Format};
use nbti_cache_repro::arch::StudySpec;
use nbti_cache_repro::sim::ReplacementRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start from the built-ins (`lru`, `mru`) and add a user policy:
    // way 0 is pinned — never evicted — and the rest run true LRU.
    // Stamps are the per-way last-touch clocks; the policy must be a
    // pure function of them (replay determinism depends on it).
    let mut registry = ReplacementRegistry::builtin();
    registry.register_fn(
        "pin-way0",
        "never evicts way 0; LRU over the remaining ways (user example)",
        |stamps| {
            let rest = &stamps[1..];
            match rest.iter().enumerate().min_by_key(|&(_, s)| *s) {
                Some((i, _)) => i + 1,
                None => 0, // direct-mapped set: way 0 is all there is
            }
        },
    )?;

    // 2 ways × 3 replacements × {no L2, 64 kB 4-way L2} = 12 points.
    // (Direct-mapped points have no replacement decision to make, but
    // keeping them on the grid shows the axis collapsing gracefully.)
    let report = StudySpec::new("hierarchy sweep")
        .cache_kb([16])
        .line_bytes([16])
        .banks([4])
        .ways([1, 4])
        .replacement(["lru", "mru", "pin-way0"])
        .replacement_registry(registry)
        .l2_cache_kb([0, 64])
        .l2_ways([4])
        .policies(["probing"])
        .workload_names(["dijkstra"])?
        .trace_cycles(160_000)
        .run(&ModelContext::new())?;

    let table = analysis::summary_table(
        &report,
        &[Axis::Ways, Axis::Replacement, Axis::L2CacheBytes],
        None,
    )?;
    println!("{}", render::table(&table, Format::Text));

    // The L2 sees only the L1 miss stream, so its banks sleep more
    // than the L1's and recover more NBTI stress.
    for r in report.records() {
        let Some(l2_sleep) = r.metric("sleep_fraction_l2") else {
            continue; // single-level point
        };
        let l1_sleep = r.sleep_fractions.iter().sum::<f64>() / r.sleep_fractions.len() as f64;
        assert!(
            l2_sleep > l1_sleep,
            "L1 filtering must induce L2 sleep ({l2_sleep:.3} vs {l1_sleep:.3})"
        );
        println!(
            "ways={} repl={:<8} L2 sleeps {:.1} % vs L1 {:.1} %  →  LT_l2 {:.2} y vs LT {:.2} y",
            r.scenario.ways,
            r.scenario.replacement,
            100.0 * l2_sleep,
            100.0 * l1_sleep,
            r.metric("lt_years_l2").unwrap_or(f64::NAN),
            r.lt_years(),
        );
    }
    Ok(())
}
