//! Sweep the device model: the third open axis of the Study API,
//! driven through the [`StudySession`] execution front door.
//!
//! The paper evaluates one device model — a 45 nm cell calibrated to a
//! 2.93-year lifetime at 85 °C with a 20 % SNM failure criterion. This
//! example sweeps exactly that axis: operating temperature, drowsy
//! rail, failure criterion, process variation — and registers a custom
//! model, all through the same grid engine the paper tables run on.
//! The session owns the model context, so calibration counts (and the
//! cross-run simulation memo) are first-class observables.
//!
//! ```sh
//! cargo run --release --example model_sweep
//! ```
//!
//! [`StudySession`]: nbti_cache_repro::arch::session::StudySession

use nbti_cache_repro::arch::model::{ModelContext, ModelRegistry};
use nbti_cache_repro::arch::report::years;
use nbti_cache_repro::arch::session::StudySession;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pinned idleness profile drives the physics directly — no trace
    // simulation, so the sweep is pure model evaluation.
    let profile = "profile:0.1,0.8,0.6,0.3";

    // 1. One session, three device-axis sweeps. Every distinct model
    //    calibrates exactly once in the session's context;
    //    `nbti:vlow=0.75` canonicalizes back to `nbti-45nm`, so it
    //    reuses the reference calibration.
    let session = StudySession::new();
    let spec = session
        .spec("device-model sweep")
        .models([
            "nbti-45nm",        // the paper's reference, bit-for-bit
            "nbti:temp=45",     // cooler silicon, same calibrated drift model
            "nbti:temp=125",    // hotter silicon
            "nbti:fail=10",     // a stricter failure criterion
            "nbti:sleep=gated", // power gating instead of drowsy sleep
            "variation:30",     // worst cell of 37k under 30 mV mismatch
        ])
        .workload_names([profile])?;
    let report = session.run(&spec)?;

    println!(
        "model sweep ({} calibrations):",
        session.context().calibration_count()
    );
    for r in report.records() {
        println!(
            "{:>18}: LT0 {:>8}  LT {:>8}",
            r.scenario.model,
            years(r.lt0_years()),
            years(r.lt_years()),
        );
    }

    // 2. Models expose their calibration provenance — a published
    //    report can name exactly what was measured.
    let model = session.context().registry().resolve("variation:30")?;
    println!(
        "\nprovenance of {}:\n  {}",
        model.name(),
        model.provenance()
    );

    // 3. Custom models register by name, like policies and workloads;
    //    a session over a custom context resolves them everywhere.
    //    This one wraps the reference at a fixed 105 °C hotspot.
    let mut registry = ModelRegistry::builtin();
    let hotspot = registry.resolve("nbti:temp=105")?;
    registry.register_fn(
        "hotspot",
        "the reference cell at a 105 degC hotspot",
        "alias of nbti:temp=105",
        move || hotspot.calibrate(),
    )?;
    let session = StudySession::with_context(ModelContext::with_registry(registry));
    let spec = session
        .spec("custom model")
        .models(["hotspot"])
        .workload_names([profile])?;
    let report = session.run(&spec)?;
    println!(
        "\ncustom `hotspot` model: LT {}",
        years(report.records()[0].lt_years())
    );
    Ok(())
}
