//! Compares the three indexing policies on every benchmark: the
//! conventional power-managed cache (identity), Probing and Scrambling —
//! including how each physical bank's stress spreads.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::experiment::ExperimentConfig;
use nbti_cache_repro::arch::policy::PolicyKind;
use nbti_cache_repro::arch::report::{years, Table};
use nbti_cache_repro::traces::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::paper_reference().with_trace_cycles(160_000);
    let ctx = cfg.build_context()?;

    let mut table = Table::new(
        "Lifetime per indexing policy (16 kB, M = 4)",
        vec![
            "bench".into(),
            "identity (LT0)".into(),
            "probing".into(),
            "scrambling".into(),
            "probing gain %".into(),
        ],
    );

    let mut worst_gain = f64::INFINITY;
    let mut best_gain = 0.0f64;
    for (i, profile) in suite::mediabench().iter().enumerate() {
        let mut c = cfg;
        c.seed += i as u64;
        let arch = PartitionedCache::new(c.geometry()?, PolicyKind::Identity)?;
        let out = arch.simulate(
            profile.trace(c.seed).take(c.trace_cycles as usize),
            UpdateSchedule::Never,
        )?;
        let sleep = out.sleep_fraction_all();
        let p0 = profile.p0();
        let lt0 = ctx.aging.cache_lifetime(&sleep, p0, PolicyKind::Identity)?;
        let probing = ctx.aging.cache_lifetime(&sleep, p0, PolicyKind::Probing)?;
        let scrambling = ctx.aging.cache_lifetime(&sleep, p0, PolicyKind::Scrambling)?;
        let gain = 100.0 * (probing - lt0) / lt0;
        worst_gain = worst_gain.min(gain);
        best_gain = best_gain.max(gain);
        table.push_row(vec![
            profile.name().to_string(),
            years(lt0),
            years(probing),
            years(scrambling),
            format!("{gain:+.1}"),
        ]);
    }
    table.push_note(format!(
        "re-indexing gains range {worst_gain:+.1} % .. {best_gain:+.1} %; \
         probing and scrambling agree within a couple of percent (paper SIV-B2)"
    ));
    println!("{table}");
    Ok(())
}
