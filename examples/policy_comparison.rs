//! Compares every registered indexing policy on every benchmark —
//! including one registered from user code — through the Study API.
//! This example doubles as an API smoke test: registering a policy,
//! putting it on a `StudySpec` axis, and reading the structured report.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use nbti_cache_repro::arch::experiment::ExperimentContext;
use nbti_cache_repro::arch::report::{years, Table};
use nbti_cache_repro::arch::{PolicyRegistry, StudySpec};
use nbti_cache_repro::sim::FnMapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start from the built-ins and add a user policy: bit-reversal of
    // the bank-select field. A static bijection — the study will show it
    // behaves like the identity baseline, which is exactly the point:
    // *rotation over time*, not the shape of the map, buys lifetime.
    let mut registry = PolicyRegistry::builtin();
    registry.register_fn(
        "bit-reverse",
        "static bit-reversal of the bank-select field (user example)",
        |banks, _seed| {
            let p = banks.trailing_zeros();
            Ok(Box::new(FnMapping::new(move |logical, _| {
                if p == 0 {
                    logical
                } else {
                    logical.reverse_bits() >> (32 - p)
                }
            })))
        },
    )?;
    let policies = registry.names();

    let ctx = ExperimentContext::new()?;
    let report = StudySpec::new("policy comparison")
        .registry(registry)
        .policies(policies.iter().map(String::as_str))
        .trace_cycles(160_000)
        .run(&ctx)?;

    let mut headers = vec!["bench".to_string()];
    headers.extend(policies.iter().cloned());
    let mut table = Table::new("Lifetime per indexing policy (16 kB, M = 4)", headers);

    // Records arrive policy-major (policy is an outer axis, workload the
    // innermost); regroup them workload-major for the table.
    let per_policy = report.records().len() / policies.len();
    let mut worst_gain = f64::INFINITY;
    let mut best_gain = 0.0f64;
    for w in 0..per_policy {
        let mut row = Vec::with_capacity(policies.len() + 1);
        let mut lt0 = f64::NAN;
        let mut probing = f64::NAN;
        for (pi, policy) in policies.iter().enumerate() {
            let r = &report.records()[pi * per_policy + w];
            assert_eq!(&r.scenario.policy, policy);
            if pi == 0 {
                row.push(r.scenario.workload.clone());
            }
            if policy == "identity" {
                lt0 = r.lt_years();
            }
            if policy == "probing" {
                probing = r.lt_years();
            }
            row.push(years(r.lt_years()));
        }
        let gain = 100.0 * (probing - lt0) / lt0;
        worst_gain = worst_gain.min(gain);
        best_gain = best_gain.max(gain);
        table.push_row(row);
    }
    table.push_note(format!(
        "re-indexing gains range {worst_gain:+.1} % .. {best_gain:+.1} %; \
         rotation-based policies agree within a couple of percent (paper SIV-B2), \
         while the static user policy tracks the identity baseline"
    ));
    println!("{table}");
    Ok(())
}
