//! Runs the paper's evaluation on an *external* trace file instead of
//! the synthetic suite — the "bring your own workload" path — through
//! the [`StudySession`] front door, with a persistent result cache.
//!
//! The example fabricates a CSV trace on disk (in real use this is a
//! file from your own tooling: a Dinero `.din`, Valgrind Lackey output,
//! or CSV), then drives the Table II axes — cache size × the Probing
//! policy — over it by passing a `csv:path` key to the workload axis.
//! The report embeds the trace's format and content hash, so the JSON
//! is self-describing: anyone can verify which trace produced it. The
//! same content hash keys the session's result cache, so the second
//! run below replays the journal byte-identically without simulating
//! a single access.
//!
//! ```sh
//! cargo run --release --example trace_ingestion
//! ```
//!
//! [`StudySession`]: nbti_cache_repro::arch::session::StudySession

use nbti_cache_repro::arch::report::{pct, years, Table};
use nbti_cache_repro::arch::rescache::JsonlCache;
use nbti_cache_repro::arch::session::StudySession;
use nbti_cache_repro::traces::formats::write_csv;
use nbti_cache_repro::traces::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fabricate an external trace: 200 k accesses of the calibrated
    //    `sha` generator, serialized as CSV. Any trace producer works —
    //    the pipeline only sees `addr,kind` pairs.
    let accesses: Vec<_> = suite::by_name("sha")
        .expect("suite workload")
        .trace(42)
        .take(200_000)
        .collect();
    let mut text = String::new();
    write_csv(&mut text, &accesses);
    let dir = std::env::temp_dir().join("nbti-trace-ingestion");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("my_workload.csv");
    std::fs::write(&path, &text)?;
    println!("wrote {} ({} accesses)", path.display(), accesses.len());

    // 2. Table II's axes, but with the workload axis pointing at the
    //    file. `csv:`/`din:`/`lackey:` keys resolve like suite names.
    //    The session journals every finished scenario into an on-disk
    //    JSONL cache keyed by the trace's *content hash* (not its
    //    path), the geometry, seeds and model.
    let cache_dir = dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir); // fresh demo
    let key = format!("csv:{}", path.display());
    let session = StudySession::new().cache(JsonlCache::in_dir(&cache_dir)?);
    let spec = session
        .spec("Table II on an external trace")
        .cache_kb([8, 16, 32])
        .policies(["probing"])
        .workload_names([key.as_str()])?
        .trace_cycles(200_000)
        .policy_seed(1);
    let report = session.run(&spec)?;

    // 3. Render the table and show the provenance the report carries.
    let mut table = Table::new(
        "Esav / LT0 / LT vs cache size (external trace)",
        vec!["kB".into(), "Esav%".into(), "LT0".into(), "LT".into()],
    );
    for r in report.records() {
        table.push_row(vec![
            (r.scenario.cache_bytes / 1024).to_string(),
            pct(r.esav),
            years(r.lt0_years()),
            years(r.lt_years()),
        ]);
    }
    println!("{table}");

    let source = report.records()[0]
        .scenario
        .workload_source
        .as_ref()
        .expect("file-backed workloads carry provenance");
    println!(
        "workload provenance: format={} hash={}",
        source.format, source.hash
    );
    assert!(
        report.to_json().contains(&source.hash),
        "hash is in the JSON"
    );

    // 4. Re-run against the warm journal — as a fresh session, like a
    //    second process resuming an interrupted sweep. Zero
    //    simulations, byte-identical report.
    let resumed = StudySession::new().cache(JsonlCache::in_dir(&cache_dir)?);
    let replay = resumed.run(&spec)?;
    let stats = resumed.stats();
    assert_eq!(stats.simulations, 0, "warm journal: nothing to simulate");
    assert_eq!(replay.to_json(), report.to_json(), "byte-identical replay");
    println!(
        "warm re-run: {} scenarios replayed from {}, 0 simulations",
        stats.cache_hits,
        cache_dir.join(JsonlCache::FILE_NAME).display()
    );
    Ok(())
}
