//! Runs the paper's evaluation on an *external* trace file instead of
//! the synthetic suite — the "bring your own workload" path.
//!
//! The example fabricates a CSV trace on disk (in real use this is a
//! file from your own tooling: a Dinero `.din`, Valgrind Lackey output,
//! or CSV), then drives the Table II axes — cache size × the Probing
//! policy — over it by passing a `csv:path` key to the workload axis.
//! The report embeds the trace's format and content hash, so the JSON
//! is self-describing: anyone can verify which trace produced it.
//!
//! ```sh
//! cargo run --release --example trace_ingestion
//! ```

use nbti_cache_repro::arch::experiment::ExperimentContext;
use nbti_cache_repro::arch::report::{pct, years, Table};
use nbti_cache_repro::arch::StudySpec;
use nbti_cache_repro::traces::formats::write_csv;
use nbti_cache_repro::traces::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fabricate an external trace: 200 k accesses of the calibrated
    //    `sha` generator, serialized as CSV. Any trace producer works —
    //    the pipeline only sees `addr,kind` pairs.
    let accesses: Vec<_> = suite::by_name("sha")
        .expect("suite workload")
        .trace(42)
        .take(200_000)
        .collect();
    let mut text = String::new();
    write_csv(&mut text, &accesses);
    let dir = std::env::temp_dir().join("nbti-trace-ingestion");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("my_workload.csv");
    std::fs::write(&path, &text)?;
    println!("wrote {} ({} accesses)", path.display(), accesses.len());

    // 2. Table II's axes, but with the workload axis pointing at the
    //    file. `csv:`/`din:`/`lackey:` keys resolve like suite names.
    let key = format!("csv:{}", path.display());
    let ctx = ExperimentContext::new()?;
    let report = StudySpec::new("Table II on an external trace")
        .cache_kb([8, 16, 32])
        .policies(["probing"])
        .workload_names([key.as_str()])?
        .trace_cycles(200_000)
        .run(&ctx)?;

    // 3. Render the table and show the provenance the report carries.
    let mut table = Table::new(
        "Esav / LT0 / LT vs cache size (external trace)",
        vec!["kB".into(), "Esav%".into(), "LT0".into(), "LT".into()],
    );
    for r in report.records() {
        table.push_row(vec![
            (r.scenario.cache_bytes / 1024).to_string(),
            pct(r.esav),
            years(r.lt0_years()),
            years(r.lt_years()),
        ]);
    }
    println!("{table}");

    let source = report.records()[0]
        .scenario
        .workload_source
        .as_ref()
        .expect("file-backed workloads carry provenance");
    println!(
        "workload provenance: format={} hash={}",
        source.format, source.hash
    );
    assert!(
        report.to_json().contains(&source.hash),
        "hash is in the JSON"
    );
    println!("the same fields appear in every scenario of the JSON report");
    Ok(())
}
