//! The search layer as a library: find the best operating point for
//! cache lifetime *without* sweeping the whole axis, then verify the
//! adaptive answer against the exhaustive one.
//!
//! Mirrors the "Optimize instead of sweep" walkthrough in
//! EXPERIMENTS.md, which drives the same machinery from the `study`
//! CLI (`study optimize --objective … --driver bisect`).
//!
//! ```sh
//! cargo run --release --example optimize_lifetime
//! ```

use nbti_cache_repro::arch::search::{self, Constraint, Driver, Objective, ScenarioSpace, Search};
use nbti_cache_repro::arch::session::StudySession;
use nbti_cache_repro::arch::study::StudySpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the space: the paper's reference cache across eight
    //    die temperatures, 45 °C to 150 °C. `search::steps` /
    //    `log_steps` feed any numeric axis; `ScenarioSpace` composes
    //    (filter / union) but a single grid is the common case.
    let temps: Vec<String> = search::steps(45.0, 150.0, 15.0)?
        .into_iter()
        .map(|t| format!("nbti:temp={t}"))
        .collect();
    let spec = StudySpec::new("operating-point search")
        .models(temps)
        .workload_names(["sha"])?
        .trace_cycles(40_000);
    let space = ScenarioSpace::grid(spec);

    // 2. Search it: NBTI stress grows with temperature, so lifetime
    //    is strictly monotone along this axis — exactly what the
    //    bisection driver exploits, and *audits*, falling back to
    //    exhaustive with a note if a probe contradicts the assumption.
    let session = StudySession::new();
    let report = Search::new(space.clone(), Objective::maximize("lt_years"))
        .driver(Driver::Bisect)
        .run(&session)?;
    println!("{report}");
    println!(
        "bisect probed {} of {} candidates\n",
        report.probes_issued(),
        report.space_len()
    );

    // 3. Trust, but verify: the exhaustive driver is the reference
    //    answer, and the adaptive incumbent must match it exactly —
    //    same scenario, same value, fewer probes. (The property suite
    //    asserts this for every space; here it is just visible.)
    let full = Search::new(space.clone(), Objective::maximize("lt_years")).run(&session)?;
    let (best, reference) = match (report.incumbent(), full.incumbent()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err("search found no feasible candidate".into()),
    };
    assert_eq!(best.scenario, reference.scenario);
    println!(
        "exhaustive agrees: {} -> {:.3} years ({} vs {} probes)\n",
        best.scenario.model,
        best.value,
        report.probes_issued(),
        full.probes_issued()
    );

    // 4. Constraints turn the same machinery into boundary-finding —
    //    the thermal headroom question: how hot can this cache run
    //    and still clear a lifetime floor? The hottest feasible point
    //    is the least-lifetime feasible point, so minimize the metric
    //    subject to its own floor and bisection homes in on the
    //    boundary. Every probe above was journaled through the
    //    session, so overlapping points replay from cache, not
    //    simulation.
    let values: Vec<f64> = full
        .batches()
        .iter()
        .flat_map(|b| b.probes.iter().map(|p| p.value))
        .collect();
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    // Lifetime decays exponentially with temperature, so the midpoint
    // that puts the feasibility boundary mid-axis is the geometric one.
    let floor = (lo * hi).sqrt();
    let constrained = Search::new(space, Objective::minimize("lt_years"))
        .constraint(Constraint::at_least("lt_years", floor)?)
        .driver(Driver::Bisect)
        .run(&session)?;
    match constrained.incumbent() {
        Some(hottest) => println!(
            "hottest operating point with lt_years >= {floor:.3}: {} \
             ({:.3} years, {} probes)",
            hottest.scenario.model,
            hottest.value,
            constrained.probes_issued()
        ),
        None => println!("no operating point clears lt_years >= {floor:.3}"),
    }
    let stats = session.stats();
    println!(
        "session totals: {} evaluations, {} simulations, {} memo hits",
        stats.evaluations, stats.simulations, stats.sim_memo_hits
    );
    Ok(())
}
