//! Design-space exploration: how cache size and bank count trade off
//! against lifetime — the paper's Table IV question, interactively.
//!
//! ```sh
//! cargo run --release --example lifetime_exploration
//! ```

use nbti_cache_repro::arch::experiment::{run_suite, ExperimentConfig};
use nbti_cache_repro::arch::report::{pct, years, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ExperimentConfig::paper_reference().build_context()?;

    let mut table = Table::new(
        "Design space: suite-average idleness and lifetime",
        vec![
            "config".into(),
            "avg idleness %".into(),
            "avg LT (years)".into(),
            "worst bench LT".into(),
            "gain vs 2.93y".into(),
        ],
    );

    for kb in [8u64, 16, 32] {
        for banks in [2u32, 4, 8, 16] {
            let cfg = ExperimentConfig::paper_reference()
                .with_cache_kb(kb)
                .with_banks(banks)
                .with_trace_cycles(160_000);
            let results = run_suite(&cfg, &ctx)?;
            let n = results.len() as f64;
            let idle = results.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / n;
            let lt = results.iter().map(|r| r.lt_years).sum::<f64>() / n;
            let worst = results
                .iter()
                .map(|r| r.lt_years)
                .fold(f64::INFINITY, f64::min);
            table.push_row(vec![
                format!("{kb} kB / M={banks}"),
                pct(idle),
                years(lt),
                years(worst),
                format!("+{} %", pct(lt / 2.93 - 1.0)),
            ]);
        }
    }
    table.push_note(
        "paper Table IV stops at M = 8; M = 16 is the paper's feasibility limit \
         (uniform banks floorplan well), and shows the diminishing return",
    );
    println!("{table}");
    Ok(())
}
