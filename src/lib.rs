//! Reproduction suite for *"Partitioned Cache Architectures for Reduced
//! NBTI-Induced Aging"* (Calimera, Loghi, Macii, Poncino — DATE 2011).
//!
//! This façade crate re-exports the workspace members so the examples and
//! integration tests can use a single dependency:
//!
//! * [`nbti`] — NBTI aging physics (ΔVth drift, SNM solver, lifetime LUT).
//! * [`power`] — analytical SRAM energy/power models.
//! * [`sim`] — trace-driven banked cache simulator.
//! * [`traces`] — synthetic MediaBench-like workload generators.
//! * [`arch`] — the paper's contribution: partitioned caches with
//!   coarse-grain dynamic indexing, plus the **Study API** — the open
//!   scenario-grid engine the whole evaluation runs on.
//!
//! # Quick start
//!
//! Declare a study over any slice of the evaluation grid; axes accept
//! one or many values, scenarios run in parallel, and the report
//! serializes to JSON:
//!
//! ```no_run
//! use nbti_cache_repro::arch::experiment::ExperimentContext;
//! use nbti_cache_repro::arch::StudySpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = ExperimentContext::new()?; // calibrated 2.93-year cell
//! let report = StudySpec::new("sweep")
//!     .cache_kb([8, 16, 32])
//!     .banks([2, 4, 8])
//!     .policies(["probing", "scrambling", "gray", "rotate-xor"])
//!     .run(&ctx)?;
//! println!("{}", report.to_json());
//! # Ok(())
//! # }
//! ```
//!
//! The paper's tables are ~10-line presets over the same engine
//! (`arch::presets` + `arch::views`), and new indexing policies
//! register by name (`arch::PolicyRegistry`) without touching this
//! workspace — see `examples/policy_comparison.rs`.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use aging_cache as arch;
pub use cache_sim as sim;
pub use nbti_model as nbti;
pub use sram_power as power;
pub use trace_synth as traces;
