//! Reproduction suite for *"Partitioned Cache Architectures for Reduced
//! NBTI-Induced Aging"* (Calimera, Loghi, Macii, Poncino — DATE 2011).
//!
//! This façade crate re-exports the workspace members so the examples and
//! integration tests can use a single dependency:
//!
//! * [`nbti`] — NBTI aging physics (ΔVth drift, SNM solver, lifetime LUT).
//! * [`power`] — analytical SRAM energy/power models.
//! * [`sim`] — trace-driven banked cache simulator.
//! * [`traces`] — synthetic MediaBench-like workload generators.
//! * [`arch`] — the paper's contribution: partitioned caches with
//!   coarse-grain dynamic indexing, plus the experiment pipeline.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use aging_cache as arch;
pub use cache_sim as sim;
pub use nbti_model as nbti;
pub use sram_power as power;
pub use trace_synth as traces;
