//! A tiny, fully deterministic property-testing harness.
//!
//! The workspace builds offline, so it cannot depend on `proptest`.
//! This crate provides the small subset the test suites actually use: a
//! seeded generator ([`Gen`]) with ranged samplers, and a case driver
//! ([`cases`]) that reruns a property over many generated inputs and
//! reports the failing case's seed.
//!
//! Determinism is a feature, not a limitation: every run explores the
//! same inputs, so CI failures always reproduce locally.
//!
//! # Examples
//!
//! ```
//! quickprop::cases(32, |g| {
//!     let a = g.u64_in(0..1000);
//!     let b = g.u64_in(0..1000);
//!     assert!(a + b >= a, "overflow impossible in range");
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A SplitMix64-backed generator handed to each property case.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
    case: u32,
}

impl Gen {
    /// Creates a generator for one case from a base seed.
    pub fn new(seed: u64, case: u32) -> Self {
        Self {
            state: seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            case,
        }
    }

    /// The case index (for labelling failures).
    pub fn case(&self) -> u32 {
        self.case
    }

    /// The next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `u64` in `range` (empty ranges yield `range.start`).
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start);
        if span == 0 {
            return range.start;
        }
        range.start + self.next_u64() % span
    }

    /// A uniform `u32` in `range`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// A uniform `usize` in `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `range`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        range.start + self.f64_unit() * (range.end - range.start)
    }

    /// A vector of `len` uniform `f64`s in `range`.
    pub fn vec_f64(&mut self, range: Range<f64>, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(range.clone())).collect()
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0..items.len())]
    }
}

/// Default base seed for [`cases`].
pub const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_0001;

/// Runs `property` over `n` deterministic cases. On panic, the harness
/// re-raises with the case index in the message so the failure can be
/// reproduced with [`one_case`].
pub fn cases(n: u32, mut property: impl FnMut(&mut Gen)) {
    for case in 0..n {
        let mut g = Gen::new(DEFAULT_SEED, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut g);
        }));
        if let Err(payload) = result {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("property failed at case {case}/{n}: {detail}");
        }
    }
}

/// Runs a single case by index — the reproduction entry point for a
/// failure reported by [`cases`].
pub fn one_case(case: u32, mut property: impl FnMut(&mut Gen)) {
    let mut g = Gen::new(DEFAULT_SEED, case);
    property(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = Gen::new(1, 0);
        let mut b = Gen::new(1, 0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(7, 3);
        for _ in 0..1000 {
            let v = g.u64_in(10..20);
            assert!((10..20).contains(&v));
            let f = g.f64_in(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0;
        cases(17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "property failed at case 0")]
    fn failures_report_the_case() {
        cases(4, |_| panic!("boom"));
    }
}
