//! Crash tolerance of the distribution layer: a worker SIGKILLed
//! mid-sweep must not change a single report byte, and a scenario that
//! panics inside a worker process must surface as
//! [`CoreError::ScenarioPanicked`] with the *global* scenario id —
//! across the process boundary.

use aging_cache::error::CoreError;
use aging_cache::exec::{ExecOptions, ProcessOptions, WorkerCommand};
use aging_cache::model::{CalibratedModel, Metrics, ModelContext, ModelEval, ModelRegistry};
use aging_cache::rescache::JsonlCache;
use aging_cache::session::StudySession;
use aging_cache::study::StudySpec;
use std::sync::Arc;

fn grid_spec(session: &StudySession) -> StudySpec {
    session
        .spec("crash tolerance")
        .cache_kb([8, 16])
        .policies(["probing", "gray"])
        .workload_names(["sha", "CRC32"])
        .unwrap()
        .trace_cycles(40_000)
}

fn process_options(dir: &std::path::Path) -> ProcessOptions {
    let mut popts = ProcessOptions::new(
        dir,
        2,
        WorkerCommand::new(env!("CARGO_BIN_EXE_study_worker"), []),
    );
    // Fast protocol timing: steals must happen within the test, not
    // after the default ten-second grace.
    popts.lease_ttl_ms = 400;
    popts.poll_ms = 50;
    // The grid is small; pin the small-grid fallback off so the crash
    // drills keep spawning (and killing) real worker processes.
    popts.fallback_threshold = 0;
    popts
}

#[test]
fn killed_worker_is_stolen_from_and_the_report_is_byte_identical() {
    let sequential = StudySession::new().exec(ExecOptions::sequential());
    let reference = sequential.run(&grid_spec(&sequential)).unwrap().to_json();

    let dir = std::env::temp_dir().join(format!("nbti-worker-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Worker 0 SIGKILLs itself after journaling its first record —
    // an honest mid-shard crash: lease held, heartbeat thread dead.
    // Worker 1 (and, for whatever nobody claims, the coordinator's
    // replay pass) must finish the sweep.
    let mut popts = process_options(&dir);
    popts.worker_extra_args = vec![vec!["--die-after".into(), "1".into()], Vec::new()];
    let session = StudySession::new()
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(popts));
    let report = session.run(&grid_spec(&session)).unwrap();
    assert_eq!(
        report.to_json(),
        reference,
        "a killed worker must not change a byte"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

struct Bomb;

impl CalibratedModel for Bomb {
    fn evaluate(&self, _eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
        panic!("the bomb model always explodes")
    }
}

#[test]
fn worker_scenario_panic_carries_the_global_id_across_the_process_boundary() {
    let dir = std::env::temp_dir().join(format!("nbti-worker-bomb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The coordinator registers the bomb too: calibration (which
    // succeeds) runs coordinator-side before distribution. The panic
    // itself only ever happens inside the worker processes, spawned
    // with `--register-bomb`.
    let mut registry = ModelRegistry::builtin();
    registry
        .register_fn("bomb", "panics on evaluate", "none", || Ok(Arc::new(Bomb)))
        .unwrap();
    let mut popts = process_options(&dir);
    popts.worker_extra_args = vec![vec!["--register-bomb".into()]; 2];
    let session = StudySession::with_context(ModelContext::with_registry(registry))
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(popts));
    let spec = grid_spec(&session).models(["bomb"]);
    let e = session.run(&spec).unwrap_err();
    let CoreError::ScenarioPanicked { scenario, message } = &e else {
        panic!("expected ScenarioPanicked, got {e:?}");
    };
    assert_eq!(
        *scenario, 0,
        "lowest global scenario id, not a shard-local slot"
    );
    assert!(message.contains("explodes"), "{message}");
    // The coordinator itself never ran a scenario: the panic came back
    // through a worker's error file, not from a local recomputation.
    assert_eq!(session.stats().scenarios, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
