//! Properties of the search layer: drivers are deterministic
//! (same space + budget ⇒ byte-identical [`SearchReport`]), bisection
//! agrees with the exhaustive reference on monotone axes while
//! issuing measurably fewer probes, no driver exceeds its budget, and
//! a repeated search over a warm journal performs **zero**
//! simulations and replays the identical report.

use aging_cache::rescache::JsonlCache;
use aging_cache::search::{Constraint, Driver, Objective, ScenarioSpace, Search, SearchReport};
use aging_cache::session::StudySession;
use aging_cache::study::StudySpec;

/// A pinned monotone space: one workload, one geometry, a
/// temperature family on the model axis. `tests/model_props.rs`
/// proves hotter models always age faster, so `lt_years` is strictly
/// decreasing along this axis — exactly the contract the bisection
/// driver exploits.
fn temp_space(n: usize) -> ScenarioSpace {
    let keys: Vec<String> = (0..n)
        .map(|i| format!("nbti:temp={}", 60 + 10 * i))
        .collect();
    ScenarioSpace::grid(
        StudySpec::new("temp family")
            .workload_names(["sha"])
            .expect("workloads")
            .trace_cycles(20_000)
            .models(keys),
    )
}

/// A cheap space on the update-period axis: a single simulation
/// serves every point (the memo dedupes by sim inputs), so property
/// loops stay fast. The policy seed is pinned so the same axis point
/// keeps the same identity in every composition — different spaces
/// number their scenarios differently, and a derived policy seed
/// would make the "same" point a different measurement.
fn update_space(days: &[f64]) -> ScenarioSpace {
    ScenarioSpace::grid(update_spec(days))
}

fn update_spec(days: &[f64]) -> StudySpec {
    StudySpec::new("update sweep")
        .workload_names(["sha"])
        .expect("workloads")
        .trace_cycles(20_000)
        .policy_seed(1)
        .update_days(days.iter().copied())
}

#[test]
fn bisect_agrees_with_exhaustive_and_probes_fewer() {
    let session = StudySession::new();
    let exhaustive = Search::new(temp_space(8), Objective::maximize("lt_years"))
        .driver(Driver::Exhaustive)
        .run(&session)
        .expect("exhaustive");
    let bisect = Search::new(temp_space(8), Objective::maximize("lt_years"))
        .driver(Driver::Bisect)
        .run(&session)
        .expect("bisect");

    let (e, b) = (
        exhaustive.incumbent().expect("exhaustive incumbent"),
        bisect.incumbent().expect("bisect incumbent"),
    );
    assert_eq!(e.scenario, b.scenario, "same winning configuration");
    assert_eq!(e.value, b.value, "same winning value, bit for bit");
    assert_eq!(exhaustive.probes_issued(), 8);
    assert!(
        bisect.probes_issued() < exhaustive.probes_issued(),
        "bisection must beat enumeration: {} vs {}",
        bisect.probes_issued(),
        exhaustive.probes_issued()
    );
    assert!(
        bisect.notes().iter().all(|n| !n.contains("falling back")),
        "the proven-monotone axis must not trip the audit: {:?}",
        bisect.notes()
    );
}

#[test]
fn bisect_finds_the_constrained_boundary() {
    let session = StudySession::new();
    // Reference pass: the exhaustive lifetimes along the temp axis.
    let reference = Search::new(temp_space(8), Objective::maximize("lt_years"))
        .run(&session)
        .expect("reference");
    let mut lifetimes: Vec<f64> = reference
        .batches()
        .iter()
        .flat_map(|b| b.probes.iter().map(|p| p.value))
        .collect();
    assert_eq!(lifetimes.len(), 8);
    lifetimes.sort_by(|a, b| a.total_cmp(b));
    // A bound strictly between two interior lifetimes, so the
    // feasibility boundary is interior to the axis.
    let bound = (lifetimes[2] + lifetimes[3]) / 2.0;

    // "Hottest operating point still meeting the lifetime bound":
    // minimize lt_years subject to lt_years >= bound.
    let constrained = Search::new(temp_space(8), Objective::minimize("lt_years"))
        .constraint(Constraint::at_least("lt_years", bound).expect("bound"))
        .driver(Driver::Bisect)
        .run(&session)
        .expect("bisect");
    let exhaustive = Search::new(temp_space(8), Objective::minimize("lt_years"))
        .constraint(Constraint::at_least("lt_years", bound).expect("bound"))
        .driver(Driver::Exhaustive)
        .run(&session)
        .expect("exhaustive");

    let (b, e) = (
        constrained.incumbent().expect("bisect incumbent"),
        exhaustive.incumbent().expect("exhaustive incumbent"),
    );
    assert_eq!(b.scenario, e.scenario, "boundary point agrees");
    assert!(b.value >= bound, "incumbent is feasible");
    assert!(
        constrained.probes_issued() < 8,
        "boundary search must not enumerate: {} probes",
        constrained.probes_issued()
    );
}

#[test]
fn drivers_are_deterministic_and_respect_budget() {
    quickprop::cases(if cfg!(debug_assertions) { 3 } else { 5 }, |g| {
        let n = g.usize_in(2..7);
        let days: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let budget = g.usize_in(1..(n + 3));
        let driver = *g.pick(&[Driver::Exhaustive, Driver::Bisect, Driver::Refine]);

        let run = || {
            Search::new(update_space(&days), Objective::maximize("lt_years"))
                .driver(driver)
                .budget(budget)
                .run(&StudySession::new())
                .expect("search")
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{driver:?} over {n} points, budget {budget}: reports must be byte-identical"
        );
        assert!(
            a.probes_issued() <= budget,
            "{driver:?} issued {} probes over budget {budget}",
            a.probes_issued()
        );
        // The trace's own arithmetic agrees with the accessors.
        let traced: usize = a.batches().iter().map(|b| b.probes.len()).sum();
        assert_eq!(traced, a.probes_issued());
        assert_eq!(a.space_len(), n);
    });
}

#[test]
fn search_report_round_trips_through_json() {
    let report = Search::new(
        update_space(&[1.0, 2.0, 4.0]),
        Objective::maximize("lt_years"),
    )
    .constraint(Constraint::at_most("miss_rate", 0.5).expect("constraint"))
    .driver(Driver::Refine)
    .ensemble(2)
    .run(&StudySession::new())
    .expect("search");
    let back = SearchReport::from_json(&report.to_json()).expect("parse");
    assert_eq!(back, report);
    assert_eq!(back.to_json(), report.to_json());
    assert_eq!(back.ensemble(), 2);
    // Every candidate carries two ensemble members in the probed
    // study, and the canonical member stays byte-compatible with a
    // plain sweep (member 0 is the untouched scenario).
    assert_eq!(report.probed().records().len(), report.probes_issued() * 2);
}

#[test]
fn ensemble_mean_brackets_are_finite_and_member_zero_is_canonical() {
    let session = StudySession::new();
    let report = Search::new(update_space(&[1.0, 2.0]), Objective::maximize("lt_years"))
        .ensemble(3)
        .run(&session)
        .expect("search");
    for batch in report.batches() {
        for p in &batch.probes {
            assert!(p.value.is_finite());
            assert!(p.ci95.is_finite() && p.ci95 >= 0.0);
        }
    }
    // Member 0 of each candidate is the canonical scenario: same
    // trace seed a plain sweep derives.
    let sweep = StudySession::new()
        .run(&update_spec(&[1.0, 2.0]))
        .expect("sweep");
    for (candidate, chunk) in sweep
        .records()
        .iter()
        .zip(report.probed().records().chunks(3))
    {
        let member0 = chunk.first().expect("ensemble member 0");
        assert_eq!(member0.scenario, candidate.scenario);
        assert_eq!(member0.lt_years(), candidate.lt_years());
    }
}

#[test]
fn warm_journal_replays_the_identical_report_with_zero_simulations() {
    let dir = std::env::temp_dir().join(format!("nbti-search-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let search = || {
        Search::new(temp_space(5), Objective::maximize("lt_years"))
            .driver(Driver::Bisect)
            .constraint(Constraint::at_least("esav", 0.0).expect("constraint"))
    };

    // Cold: every probe simulates and lands in the journal.
    let cold_session = StudySession::new().cache(JsonlCache::in_dir(&dir).expect("journal"));
    let cold = search().run(&cold_session).expect("cold search");
    let cold_stats = cold_session.stats();
    assert!(cold_stats.simulations > 0, "cold run must compute");
    assert_eq!(cold_stats.cache_hits, 0);

    // Warm: a fresh session over the same journal replays everything.
    let warm_session = StudySession::new().cache(JsonlCache::in_dir(&dir).expect("journal"));
    let warm = search().run(&warm_session).expect("warm search");
    let warm_stats = warm_session.stats();
    assert_eq!(warm_stats.simulations, 0, "warm search must not simulate");
    assert_eq!(warm_stats.evaluations, 0, "warm search must not evaluate");
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "replay must be byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn space_algebra_composes_with_caching_intact() {
    // filter keeps ids and seeds, so the filtered space's probes hit
    // the cache entries the full space wrote.
    let dir = std::env::temp_dir().join(format!("nbti-search-algebra-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let full = || update_space(&[1.0, 2.0, 4.0, 8.0]);
    let session = StudySession::new().cache(JsonlCache::in_dir(&dir).expect("journal"));
    Search::new(full(), Objective::maximize("lt_years"))
        .run(&session)
        .expect("full space");
    let sims_after_full = session.stats().simulations;
    let evals_after_full = session.stats().evaluations;

    let filtered = full().filter(|s| s.update_days <= 2.0);
    let report = Search::new(filtered, Objective::maximize("lt_years"))
        .run(&session)
        .expect("filtered");
    assert_eq!(report.space_len(), 2);
    assert_eq!(
        session.stats().simulations,
        sims_after_full,
        "filtered probes must replay, not simulate"
    );
    assert_eq!(session.stats().evaluations, evals_after_full);

    // union dedups by full identity: the overlap costs nothing new.
    let unioned = full().union(update_space(&[2.0, 16.0]));
    let report = Search::new(unioned, Objective::maximize("lt_years"))
        .run(&session)
        .expect("union");
    assert_eq!(report.space_len(), 5, "4 + 2 with one duplicate");
    assert_eq!(
        session.stats().evaluations - evals_after_full,
        1,
        "only the genuinely new point computes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_search_rejects_bad_metrics_and_categorical_bisection() {
    use aging_cache::check::check_search;
    use aging_cache::model::ModelRegistry;

    let models = ModelRegistry::global();
    let good = Search::new(update_space(&[1.0, 2.0]), Objective::maximize("lt_years"));
    assert!(check_search(&good, models).is_clean());

    let bad_metric = Search::new(
        update_space(&[1.0, 2.0]),
        Objective::maximize("warp_factor"),
    );
    let report = check_search(&bad_metric, models);
    assert!(!report.is_clean());
    assert!(
        report
            .findings()
            .iter()
            .any(|f| f.code == "search-objective" && f.message.contains("warp_factor")),
        "{report}"
    );

    let categorical = ScenarioSpace::grid(
        StudySpec::new("policies")
            .workload_names(["sha"])
            .expect("workloads")
            .trace_cycles(20_000)
            .policies(["identity", "probing", "scrambling"]),
    );
    let report = check_search(
        &Search::new(categorical, Objective::maximize("lt_years")).driver(Driver::Bisect),
        models,
    );
    assert!(
        report
            .findings()
            .iter()
            .any(|f| f.code == "search-driver" && f.message.contains("categorical")),
        "{report}"
    );

    // Zero budget is an error before anything expands.
    let report = check_search(
        &Search::new(update_space(&[1.0, 2.0]), Objective::maximize("lt_years")).budget(0),
        models,
    );
    assert!(report.findings().iter().any(|f| f.code == "search-budget"));
}
