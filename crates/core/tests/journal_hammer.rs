//! Two OS processes hammering one shared journal concurrently.
//!
//! The `cache_hammer` binary appends deterministic measurements for a
//! key range; two hammers race over *overlapping* ranges, so both
//! processes repeatedly try to journal the same fingerprints at the
//! same time. The append protocol (advisory file lock + absorb-before-
//! write) must leave exactly one line per distinct key, and the
//! reopened journal must pass `check_journal` with zero duplicate or
//! corrupt findings.

use aging_cache::check::{check_journal, CheckLevel};
use aging_cache::rescache::{JsonlCache, ResultCache};
use std::process::Command;

#[test]
fn two_process_hammer_leaves_a_duplicate_free_journal() {
    let dir = std::env::temp_dir().join(format!("nbti-journal-hammer-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let exe = env!("CARGO_BIN_EXE_cache_hammer");
    let spawn = |start: &str, count: &str| {
        Command::new(exe)
            .arg(&dir)
            .args([start, count])
            .spawn()
            .expect("spawn cache_hammer")
    };
    // 0..300 and 150..450: the middle 150 keys are contested.
    let mut a = spawn("0", "300");
    let mut b = spawn("150", "300");
    assert!(a.wait().unwrap().success(), "hammer a failed");
    assert!(b.wait().unwrap().success(), "hammer b failed");

    let cache = JsonlCache::in_dir(&dir).unwrap();
    assert_eq!(cache.len(), 450, "every key journaled at least once");
    let path = cache.path().to_path_buf();
    drop(cache);

    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        text.lines().count(),
        450,
        "every key journaled exactly once"
    );

    let checked = check_journal(&path);
    let noisy: Vec<_> = checked
        .report
        .findings()
        .iter()
        .filter(|f| f.level > CheckLevel::Info)
        .collect();
    assert!(
        noisy.is_empty(),
        "journal must have zero duplicate/corrupt findings: {noisy:?}"
    );
    assert_eq!(checked.keys.len(), 450);
    std::fs::remove_dir_all(&dir).unwrap();
}
