//! Execution-layer invariants: every executor backend — and a
//! cache-warm replay, in-process or from a reopened on-disk journal —
//! must produce byte-identical `StudyReport` JSON; corrupted journal
//! entries must be rejected loudly, naming their fingerprint.

use aging_cache::exec::{ExecOptions, ProcessOptions, WorkerCommand};
use aging_cache::experiment::ExperimentConfig;
use aging_cache::presets;
use aging_cache::rescache::{JsonlCache, MemoryCache};
use aging_cache::session::StudySession;
use aging_cache::study::StudySpec;
use aging_cache::CoreError;

fn grid_spec(session: &StudySession) -> StudySpec {
    session
        .spec("exec equivalence")
        .cache_kb([8, 16])
        .policies(["probing", "gray"])
        .workload_names(["sha", "CRC32"])
        .unwrap()
        .trace_cycles(40_000)
}

#[test]
fn sequential_threaded_and_cache_warm_reports_are_byte_identical() {
    let sequential = StudySession::new().exec(ExecOptions::sequential());
    let reference = sequential.run(&grid_spec(&sequential)).unwrap().to_json();

    let threaded = StudySession::new().exec(ExecOptions::threaded());
    assert_eq!(
        threaded.run(&grid_spec(&threaded)).unwrap().to_json(),
        reference,
        "threaded vs sequential"
    );

    let two_workers = StudySession::new().exec(ExecOptions::threaded().with_threads(2));
    assert_eq!(
        two_workers.run(&grid_spec(&two_workers)).unwrap().to_json(),
        reference,
        "capped worker pool"
    );

    let cached = StudySession::new().cache(MemoryCache::new());
    let spec = grid_spec(&cached);
    assert_eq!(cached.run(&spec).unwrap().to_json(), reference, "cold");
    assert_eq!(cached.run(&spec).unwrap().to_json(), reference, "warm");
    let stats = cached.stats();
    assert_eq!(stats.cache_hits, 8, "the warm run was all hits");
    assert_eq!(stats.evaluations, 8, "only the cold run evaluated");
}

#[test]
fn sequential_threaded_and_multi_process_reports_are_byte_identical() {
    // The Table II grid (8/16/32 kB × Probing × the full suite), at
    // test-sized trace length: the paper's headline sweep is the shape
    // the distribution layer must reproduce bit for bit.
    let spec = presets::table2(&ExperimentConfig::paper_reference()).trace_cycles(40_000);
    let n = 3 * 18; // three cache sizes × the 18-workload suite

    let sequential = StudySession::new().exec(ExecOptions::sequential());
    let reference = sequential.run(&spec).unwrap().to_json();

    let threaded = StudySession::new().exec(ExecOptions::threaded());
    assert_eq!(threaded.run(&spec).unwrap().to_json(), reference);

    let dir = std::env::temp_dir().join(format!("nbti-exec-mp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut popts = ProcessOptions::new(
        &dir,
        2,
        WorkerCommand::new(env!("CARGO_BIN_EXE_study_worker"), []),
    );
    // The grid is small; pin the small-grid fallback off so this test
    // keeps exercising real process execution.
    popts.fallback_threshold = 0;

    // Cold: the workers compute everything, the coordinator replays.
    let mp = StudySession::new()
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(popts.clone()));
    assert_eq!(
        mp.run(&spec).unwrap().to_json(),
        reference,
        "multi-process cold"
    );
    let stats = mp.stats();
    assert_eq!(stats.evaluations, 0, "the coordinator computed nothing");
    assert_eq!(stats.cache_hits, n, "the replay pass was all journal hits");

    // Warm: a fresh coordinator over the same journal — byte-identical
    // again, and no worker has anything to compute.
    let warm = StudySession::new()
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(popts));
    assert_eq!(
        warm.run(&spec).unwrap().to_json(),
        reference,
        "multi-process warm"
    );
    let stats = warm.stats();
    assert_eq!(stats.evaluations, 0);
    assert_eq!(stats.simulations, 0);
    assert_eq!(stats.cache_hits, n);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopened_journal_replays_without_simulating() {
    let dir = std::env::temp_dir().join(format!("nbti-exec-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    let reference = cold.run(&grid_spec(&cold)).unwrap().to_json();
    assert_eq!(cold.stats().cache_stores, 8);

    // A fresh session over the reopened journal — a second process, in
    // effect. Zero simulations, zero model evaluations, same bytes.
    let warm = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    assert_eq!(warm.run(&grid_spec(&warm)).unwrap().to_json(), reference);
    let stats = warm.stats();
    assert_eq!(stats.simulations, 0);
    assert_eq!(stats.evaluations, 0);
    assert_eq!(stats.cache_hits, 8);

    // A widened grid computes only the missing points (the presets pin
    // the policy seed, so shared points keep their fingerprints).
    let wider = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    let spec = grid_spec(&wider).policy_seed(1);
    wider.run(&spec).unwrap();
    let before = wider.stats();
    let widened = grid_spec(&wider).policy_seed(1).cache_kb([8, 16, 32]);
    wider.run(&widened).unwrap();
    let after = wider.stats();
    assert_eq!(
        after.evaluations - before.evaluations,
        4,
        "only the new 32 kB column computes"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poisoned_journal_is_rejected_with_fingerprint_not_deserialized() {
    let dir = std::env::temp_dir().join(format!("nbti-exec-poison-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    let spec = session
        .spec("poison")
        .workload_names(["sha"])
        .unwrap()
        .trace_cycles(40_000);
    session.run(&spec).unwrap();
    drop(session);

    // Flip one digit of a measured value inside the journal.
    let path = dir.join(JsonlCache::FILE_NAME);
    let text = std::fs::read_to_string(&path).unwrap();
    let fp = text
        .split('"')
        .nth(3)
        .expect("first line starts {\"fp\":\"…\"}")
        .to_string();
    assert!(fp.starts_with("fnv1a64:"), "{fp}");
    let poisoned = text.replacen("\"esav\":0.", "\"esav\":9.", 1);
    assert_ne!(poisoned, text, "the corruption must apply");
    std::fs::write(&path, poisoned).unwrap();

    let e = JsonlCache::in_dir(&dir).unwrap_err();
    assert!(matches!(e, CoreError::Cache { .. }), "{e:?}");
    let msg = e.to_string();
    assert!(msg.contains(&fp), "error must name the fingerprint: {msg}");
    assert!(msg.contains("mismatch"), "{msg}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_after_interruption_computes_only_missing_points() {
    // Simulate an interrupted sweep: journal only half the grid, then
    // "resume" — the replayed half must not recompute and the report
    // must match an uninterrupted run byte for byte.
    // (The policy seed is pinned: a *sub*-grid renumbers scenario ids,
    // and derived policy seeds — correctly — follow the id. A truly
    // interrupted run keeps its grid and needs no pinning.)
    let dir = std::env::temp_dir().join(format!("nbti-exec-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let full = StudySession::new();
    let reference = full.run(&grid_spec(&full).policy_seed(1)).unwrap();

    let half = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    let half_spec = grid_spec(&half).policy_seed(1).policies(["probing"]); // 4 of 8 points
    half.run(&half_spec).unwrap();
    assert_eq!(half.stats().cache_stores, 4);

    let resumed = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    let report = resumed.run(&grid_spec(&resumed).policy_seed(1)).unwrap();
    let stats = resumed.stats();
    assert_eq!(stats.cache_hits, 4, "the journaled half replays");
    assert_eq!(stats.evaluations, 4, "only the missing half computes");
    assert_eq!(report.to_json(), reference.to_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn small_grids_fall_back_from_the_process_backend() {
    use aging_cache::exec::ExecObserver;
    use std::sync::Mutex;

    // A notice collector: the fallback must *say* it happened.
    #[derive(Default)]
    struct Notices(Mutex<Vec<String>>);
    impl ExecObserver for Notices {
        fn on_notice(&self, message: &str) {
            self.0.lock().unwrap().push(message.to_string());
        }
    }

    let dir = std::env::temp_dir().join(format!("nbti-exec-fallback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The worker command is deliberately unrunnable: with the default
    // fallback threshold (128 > 8 scenarios) the run must complete on
    // the threaded backend without ever spawning a process — and the
    // report must match the sequential reference byte for byte.
    let popts = ProcessOptions::new(&dir, 2, WorkerCommand::new("/nonexistent/worker", []));
    assert_eq!(popts.fallback_threshold, 128);
    let mp = StudySession::new()
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(popts))
        .observer(Notices::default());
    let report = mp.run(&grid_spec(&mp)).unwrap();

    let sequential = StudySession::new().exec(ExecOptions::sequential());
    let reference = sequential.run(&grid_spec(&sequential)).unwrap();
    assert_eq!(report.to_json(), reference.to_json());

    // The notice names the threshold; re-running the session shows it
    // fired (observer state lives inside the session, so assert via a
    // fresh session sharing the observer).
    let notices = std::sync::Arc::new(Notices::default());
    struct Shared(std::sync::Arc<Notices>);
    impl ExecObserver for Shared {
        fn on_notice(&self, message: &str) {
            self.0.on_notice(message);
        }
    }
    let again = StudySession::new()
        .cache(JsonlCache::in_dir(&dir).unwrap())
        .exec(ExecOptions::process(ProcessOptions::new(
            &dir,
            2,
            WorkerCommand::new("/nonexistent/worker", []),
        )))
        .observer(Shared(std::sync::Arc::clone(&notices)));
    again.run(&grid_spec(&again)).unwrap();
    let seen = notices.0.lock().unwrap();
    assert_eq!(seen.len(), 1, "exactly one fallback notice");
    assert!(
        seen[0].contains("below the fallback threshold (128)"),
        "{}",
        seen[0]
    );
    drop(seen);
    std::fs::remove_dir_all(&dir).unwrap();
}
