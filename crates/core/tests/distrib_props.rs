//! Property tests for the lease protocol's decision logic.
//!
//! The protocol's *pure* half — shard assignment ([`shard_of`]), scan
//! order ([`scan_order`], [`partition_ranges`]) and the claim decision
//! ([`next_claim`] over [`ShardView`]s) — is exactly what the live
//! workers run; here it drives an in-memory model of the rest (lease
//! files, heartbeats, a dedup-on-store journal standing in for
//! `JsonlCache`) through randomized grids, fleet sizes and
//! claim/expiry/crash interleavings. Invariants, per the distribution
//! layer's contract:
//!
//! * the run terminates (no claim/poll livelock);
//! * every scenario fingerprint is computed at least once — by a
//!   worker or by the coordinator's catch-up pass;
//! * the merged journal holds every fingerprint **exactly once**,
//!   no matter how claims, expiries and steals interleave;
//! * with no crashes, the workers alone finish every shard (the
//!   catch-up pass computes nothing).

use aging_cache::distrib::{next_claim, partition_ranges, scan_order, shard_of, ShardView};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    /// Computing shard `k`, the next member index to journal.
    Computing(usize, usize),
    Exited,
    Dead,
}

struct Worker {
    order: Vec<usize>,
    attempted: BTreeSet<usize>,
    phase: Phase,
}

/// One lease: the holding worker, and — once the holder is dead — a
/// countdown of scheduler steps until its heartbeat looks stale.
struct Lease {
    holder: usize,
    stale_in: Option<usize>,
}

struct Model {
    fps: Vec<String>,
    /// Scenario indices per shard (the manifest's `shard_sets`).
    shards: Vec<Vec<usize>>,
    workers: Vec<Worker>,
    leases: BTreeMap<usize, Lease>,
    done: Vec<bool>,
    /// Append-only journal with dedup-on-store (the `JsonlCache`
    /// contract: absorb-before-write drops already-present keys).
    journal: Vec<usize>,
    journaled: BTreeSet<usize>,
    computed: Vec<usize>,
}

impl Model {
    fn new(grid: usize, fleet: usize, shards_per_worker: usize) -> Self {
        let fps: Vec<String> = (0..grid)
            .map(|i| format!("v=engine-v1;prop;k={i}"))
            .collect();
        let shard_count = (fleet * shards_per_worker).clamp(1, grid);
        let mut shards = vec![Vec::new(); shard_count];
        for (i, fp) in fps.iter().enumerate() {
            shards[shard_of(fp, shard_count)].push(i);
        }
        let ranges: Vec<Range<usize>> = partition_ranges(shard_count, fleet);
        let workers = ranges
            .into_iter()
            .map(|preferred| Worker {
                order: scan_order(preferred, shard_count),
                attempted: BTreeSet::new(),
                phase: Phase::Idle,
            })
            .collect();
        Self {
            computed: vec![0; grid],
            done: vec![false; shard_count],
            fps,
            shards,
            workers,
            leases: BTreeMap::new(),
            journal: Vec::new(),
            journaled: BTreeSet::new(),
        }
    }

    fn view(&self, k: usize) -> ShardView {
        if self.done[k] {
            return ShardView::Done;
        }
        match self.leases.get(&k) {
            None => ShardView::Free,
            Some(lease) => match lease.stale_in {
                Some(0) => ShardView::Stale,
                _ => ShardView::Claimed,
            },
        }
    }

    fn store(&mut self, i: usize) {
        self.computed[i] += 1;
        if self.journaled.insert(i) {
            self.journal.push(i);
        }
    }

    /// Advances worker `w` by one protocol step. Mirrors the live
    /// worker loop: claim (or steal) via `next_claim`, journal one
    /// member per step, mark done and release on the last one, exit
    /// when nothing claimable and nothing un-attempted remains.
    fn step(&mut self, w: usize) {
        match self.workers[w].phase {
            Phase::Exited | Phase::Dead => {}
            Phase::Idle => {
                let claim = next_claim(&self.workers[w].order, &self.workers[w].attempted, |k| {
                    self.view(k)
                });
                match claim {
                    Some(k) => {
                        self.workers[w].attempted.insert(k);
                        // Atomic create or steal-by-rename; a fresh
                        // heartbeat starts either way.
                        self.leases.insert(
                            k,
                            Lease {
                                holder: w,
                                stale_in: None,
                            },
                        );
                        self.workers[w].phase = Phase::Computing(k, 0);
                    }
                    None => {
                        let undone: Vec<usize> =
                            (0..self.done.len()).filter(|k| !self.done[*k]).collect();
                        if undone.is_empty()
                            || undone.iter().all(|k| self.workers[w].attempted.contains(k))
                        {
                            self.workers[w].phase = Phase::Exited;
                        }
                        // Otherwise: poll-sleep (a no-op step).
                    }
                }
            }
            Phase::Computing(k, next) => {
                if next < self.shards[k].len() {
                    let member = self.shards[k][next];
                    self.store(member);
                    self.workers[w].phase = Phase::Computing(k, next + 1);
                } else {
                    // Done marker first, then the lease release —
                    // matching `finish_shard`'s ordering.
                    self.done[k] = true;
                    if self.leases.get(&k).is_some_and(|l| l.holder == w) {
                        self.leases.remove(&k);
                    }
                    self.workers[w].phase = Phase::Idle;
                }
            }
        }
    }

    /// SIGKILL: the worker stops mid-whatever; a held lease keeps its
    /// last heartbeat and goes stale `ttl_steps` scheduler steps later.
    fn kill(&mut self, w: usize, ttl_steps: usize) {
        if let Phase::Computing(k, _) = self.workers[w].phase {
            if let Some(lease) = self.leases.get_mut(&k) {
                if lease.holder == w {
                    lease.stale_in = Some(ttl_steps);
                }
            }
        }
        self.workers[w].phase = Phase::Dead;
    }

    /// One tick of wall time: dead holders' heartbeats age toward
    /// staleness.
    fn age_leases(&mut self) {
        for lease in self.leases.values_mut() {
            if let Some(n) = lease.stale_in {
                lease.stale_in = Some(n.saturating_sub(1));
            }
        }
    }

    fn live(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|w| !matches!(self.workers[*w].phase, Phase::Exited | Phase::Dead))
            .collect()
    }

    /// The coordinator's replay/catch-up pass: compute (and journal)
    /// whatever no worker finished. Returns how many it computed.
    fn catch_up(&mut self) -> usize {
        let missing: Vec<usize> = (0..self.fps.len())
            .filter(|i| !self.journaled.contains(i))
            .collect();
        for &i in &missing {
            self.store(i);
        }
        missing.len()
    }
}

#[test]
fn every_fingerprint_is_computed_and_journaled_exactly_once() {
    quickprop::cases(200, |g| {
        let grid = g.usize_in(1..40);
        let fleet = g.usize_in(1..6);
        let shards_per_worker = g.usize_in(1..5);
        let crashes = g.usize_in(0..fleet); // at least one worker survives
        let mut model = Model::new(grid, fleet, shards_per_worker);
        let mut remaining_crashes = crashes;
        let mut steps = 0usize;
        loop {
            let live = model.live();
            if live.is_empty() {
                break;
            }
            steps += 1;
            assert!(
                steps < 100_000,
                "protocol livelocked: grid={grid} fleet={fleet} spw={shards_per_worker} crashes={crashes}"
            );
            model.age_leases();
            // Randomly SIGKILL a live worker mid-run, while more than
            // one remains.
            if remaining_crashes > 0 && live.len() > 1 && g.u32_in(0..8) == 0 {
                let victim = *g.pick(&live);
                model.kill(victim, g.usize_in(0..6));
                remaining_crashes -= 1;
                continue;
            }
            let w = *g.pick(&live);
            model.step(w);
        }

        assert!(
            model.workers.iter().any(|w| w.phase == Phase::Exited),
            "at least one worker must survive to a clean exit"
        );
        let caught_up = model.catch_up();
        if crashes == 0 {
            assert_eq!(
                caught_up, 0,
                "with no crashes the workers alone finish every shard"
            );
        }
        assert_eq!(
            model.journal.len(),
            grid,
            "merged journal holds every fingerprint exactly once"
        );
        let mut seen: Vec<usize> = model.journal.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..grid).collect::<Vec<_>>());
        assert!(
            model.computed.iter().all(|&c| c >= 1),
            "every fingerprint computed at least once"
        );
    });
}
