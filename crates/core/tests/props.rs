//! Property-based tests for the architectural layer (quickprop-driven).

use aging_cache::aging::AgingAnalysis;
use aging_cache::decoder::Decoder;
use aging_cache::policy::{PolicyKind, Probing, Scrambling};
use aging_cache::registry::PolicyRegistry;
use cache_sim::mapping::is_bijective;
use cache_sim::{BankMapping, CacheGeometry};
use nbti_model::{CellDesign, LifetimeSolver};
use std::sync::OnceLock;

const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 48 };

fn aging() -> &'static AgingAnalysis {
    static A: OnceLock<AgingAnalysis> = OnceLock::new();
    A.get_or_init(|| {
        AgingAnalysis::new(
            LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration"),
        )
    })
}

/// Probing and Scrambling stay bijections through arbitrary update
/// sequences on any power-of-two bank count.
#[test]
fn policies_stay_bijective() {
    quickprop::cases(CASES, |g| {
        let banks = 1u32 << g.u32_in(1..5);
        let updates = g.usize_in(0..64);
        let mut p = Probing::new(banks).unwrap();
        let mut s = Scrambling::new(banks, 0xace1).unwrap();
        for _ in 0..updates {
            p.update();
            s.update();
        }
        assert!(is_bijective(&p, banks));
        assert!(is_bijective(&s, banks));
    });
}

/// Probing is perfectly fair: over any window of M consecutive update
/// periods each logical bank occupies each physical bank exactly once
/// (the ref. \[7\] optimality the paper builds on).
#[test]
fn probing_window_fairness() {
    quickprop::cases(CASES, |g| {
        let banks = 1u32 << g.u32_in(1..5);
        let phase = g.usize_in(0..16);
        let mut p = Probing::new(banks).unwrap();
        for _ in 0..phase {
            p.update(); // start mid-stream
        }
        let mut counts = vec![vec![0u32; banks as usize]; banks as usize];
        for _ in 0..banks {
            for l in 0..banks {
                counts[l as usize][p.map_bank(l, banks) as usize] += 1;
            }
            p.update();
        }
        for row in &counts {
            assert!(row.iter().all(|&c| c == 1), "unfair window: {row:?}");
        }
    });
}

/// The decoder preserves the slot bits and emits a valid one-hot word
/// for every address and policy.
#[test]
fn decoder_structure() {
    quickprop::cases(CASES, |g| {
        let addr = g.u64_in(0..(1u64 << 28));
        let kind = *g.pick(&PolicyKind::ALL);
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 8).unwrap();
        let mapping = PolicyRegistry::global().build(kind.key(), 8, 3).unwrap();
        let mut dec = Decoder::new(geom, mapping).unwrap();
        let before = dec.route(addr).unwrap();
        assert_eq!(before.activation.count_ones(), 1);
        assert_eq!(before.activation.trailing_zeros(), before.physical_bank);
        dec.update();
        let after = dec.route(addr).unwrap();
        assert_eq!(before.slot, after.slot, "slot bits must pass through f()");
        assert_eq!(before.logical_bank, after.logical_bank);
    });
}

/// Cache lifetime under any policy is bracketed by the worst and the
/// mean bank lifetime.
#[test]
fn lifetime_brackets() {
    quickprop::cases(CASES, |g| {
        let sleep = g.vec_f64(0.0..0.98, 4);
        let kind = *g.pick(&PolicyKind::ALL);
        let a = aging();
        let lt = a.cache_lifetime(&sleep, 0.5, kind).unwrap();
        let worst = sleep
            .iter()
            .map(|&s| a.bank_lifetime(s, 0.5).unwrap())
            .fold(f64::INFINITY, f64::min);
        // Rates are linear in sleep under voltage scaling, so the mean
        // rate bound gives the rotation optimum.
        let mean_s = sleep.iter().sum::<f64>() / sleep.len() as f64;
        let optimum = a.bank_lifetime(mean_s, 0.5).unwrap();
        assert!(
            lt >= worst * 0.995,
            "{}: lifetime {lt} below the worst bank {worst}",
            kind.name()
        );
        assert!(
            lt <= optimum * 1.01,
            "{}: lifetime {lt} beats the rotation optimum {optimum}",
            kind.name()
        );
    });
}

/// Re-indexed lifetime is invariant under permutations of the sleep
/// vector (only the multiset of idleness matters once rotation mixes
/// it).
#[test]
fn probing_permutation_invariance() {
    quickprop::cases(CASES, |g| {
        let mut sleep = g.vec_f64(0.0..0.98, 4);
        let a = aging();
        let lt1 = a.cache_lifetime(&sleep, 0.5, PolicyKind::Probing).unwrap();
        sleep.rotate_left(1);
        sleep.swap(0, 2);
        let lt2 = a.cache_lifetime(&sleep, 0.5, PolicyKind::Probing).unwrap();
        assert!((lt1 - lt2).abs() / lt1 < 0.01, "{lt1} vs {lt2}");
    });
}
