//! The serving layer over real TCP: concurrent identical requests
//! must cost exactly one simulation per cell, served bytes must match
//! the CLI renderers for every format, cold cells must 409 instead of
//! computing on a GET, and a token-gated shutdown must drain and
//! flush the journal.

use aging_cache::analysis::{self, Axis};
use aging_cache::render::{self, Format};
use aging_cache::rescache::{JsonlCache, MemoryCache};
use aging_cache::serve::{ServeOptions, StudyServer, REPORT_NAME};
use aging_cache::session::StudySession;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;

/// The spec every test serves, as CLI-mirroring query params.
const SPEC_QUERY: &str = "cache-kb=8,16&policies=probing,gray&workloads=sha&trace-cycles=40000";

/// The same spec through the library front door — the byte-parity
/// reference the server must reproduce.
fn reference_report(session: &StudySession) -> aging_cache::study::StudyReport {
    let spec = session
        .spec(REPORT_NAME)
        .cache_kb([8, 16])
        .policies(["probing", "gray"])
        .workload_names(["sha"])
        .unwrap()
        .trace_cycles(40_000);
    session.run(&spec).unwrap()
}

/// One dependency-free HTTP exchange: returns status, Content-Type,
/// and the exact body bytes.
fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8(response[..split].to_vec()).unwrap();
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Type: "))
        .unwrap_or_default()
        .to_string();
    (status, content_type, response[split + 4..].to_vec())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, Vec<u8>) {
    http(addr, "GET", target, b"")
}

fn post(addr: SocketAddr, target: &str) -> (u16, String, Vec<u8>) {
    http(addr, "POST", target, b"")
}

/// Runs `body` against a serving `server`, then drains it via the
/// shutdown handle so the scope joins. The drain happens even when
/// `body` panics — otherwise a failed assertion would leave the serve
/// thread running and hang the scope join instead of failing the test.
fn with_server<T>(server: &StudyServer, body: impl FnOnce(SocketAddr) -> T) -> T {
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(server.addr())));
        handle.store(true, Ordering::SeqCst);
        serving.join().unwrap().unwrap();
        match out {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

#[test]
fn concurrent_identical_runs_cost_one_simulation_per_cell() {
    // What a cold run of this grid legitimately costs, front-door.
    let reference = StudySession::new();
    reference_report(&reference);
    let expected = reference.stats();
    assert!(expected.simulations > 0);

    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        // Eight simultaneous identical POST /run: coalescing must
        // collapse them onto one computation of each cell — however
        // the arrivals interleave, a cell simulates exactly once.
        std::thread::scope(|scope| {
            let posts: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || post(addr, &format!("/run?{SPEC_QUERY}"))))
                .collect();
            for p in posts {
                let (status, _, body) = p.join().unwrap();
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
            }
        });
        let stats = server.session().stats();
        assert_eq!(
            stats.simulations, expected.simulations,
            "eight identical requests must simulate like one"
        );
        assert_eq!(stats.evaluations, expected.evaluations);

        // The follow-up GET the /run response points at is warm.
        let (_, _, run_body) = post(addr, &format!("/run?{SPEC_QUERY}"));
        let run_text = String::from_utf8(run_body).unwrap();
        assert!(
            run_text.contains(&format!("\"location\":\"/render?{SPEC_QUERY}\"")),
            "{run_text}"
        );
        let (status, _, _) = get(addr, &format!("/render?{SPEC_QUERY}"));
        assert_eq!(status, 200);
        let after = server.session().stats();
        assert_eq!(
            after.simulations, expected.simulations,
            "GETs never simulate"
        );
    });
}

#[test]
fn served_bytes_match_the_cli_renderers_for_every_format() {
    let reference = StudySession::new();
    let report = reference_report(&reference);

    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        let (status, _, _) = post(addr, &format!("/run?{SPEC_QUERY}"));
        assert_eq!(status, 200);

        // Tabular formats render through the same summary_table the
        // CLI calls, newline included.
        for (format, param, content_type) in [
            (Format::Text, "text", "text/plain; charset=utf-8"),
            (Format::Markdown, "md", "text/markdown; charset=utf-8"),
            (Format::Csv, "csv", "text/csv; charset=utf-8"),
        ] {
            let expected = format!(
                "{}\n",
                render::table(
                    &analysis::summary_table(&report, &[], None).unwrap(),
                    format
                )
            );
            let (status, ct, body) = get(addr, &format!("/render?{SPEC_QUERY}&format={param}"));
            assert_eq!(status, 200);
            assert_eq!(ct, content_type);
            assert_eq!(String::from_utf8(body).unwrap(), expected, "{param}");
        }

        // Grouped + baseline-joined rendering too.
        let grouped = format!(
            "{}\n",
            render::table(
                &analysis::summary_table(&report, &[Axis::Policy], None).unwrap(),
                Format::Markdown
            )
        );
        let (status, _, body) = get(
            addr,
            &format!("/render?{SPEC_QUERY}&format=md&group-by=policy"),
        );
        assert_eq!(status, 200);
        assert_eq!(String::from_utf8(body).unwrap(), grouped);

        // JSON is the canonical report — byte-identical to `--json`.
        let (status, ct, body) = get(addr, &format!("/render?{SPEC_QUERY}&format=json"));
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        assert_eq!(
            String::from_utf8(body).unwrap(),
            format!("{}\n", report.to_json())
        );

        // /query reduces the same warm cells.
        let (status, ct, body) = get(
            addr,
            &format!("/query?{SPEC_QUERY}&metric=esav&reduce=mean&group-by=policy&format=json"),
        );
        assert_eq!(status, 200);
        assert_eq!(ct, "application/json");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"metric\":\"esav\""), "{text}");
        assert!(text.contains("\"probing\""), "{text}");
    });
}

#[test]
fn cold_cells_answer_409_with_coverage_not_computation() {
    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        for endpoint in ["/render", "/query"] {
            let (status, ct, body) = get(addr, &format!("{endpoint}?{SPEC_QUERY}"));
            assert_eq!(status, 409, "{endpoint}");
            assert_eq!(ct, "application/json");
            let text = String::from_utf8(body).unwrap();
            assert!(text.contains("\"missing\":4"), "{text}");
            assert!(text.contains("POST /run"), "{text}");
        }
        assert_eq!(
            server.session().stats().simulations,
            0,
            "a GET never computes"
        );
    });
}

#[test]
fn unknown_paths_params_and_methods_are_client_errors() {
    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        let (status, _, body) = get(addr, "/");
        assert_eq!(status, 200);
        let help = String::from_utf8(body).unwrap();
        assert!(help.contains("/render"), "{help}");
        assert!(help.contains("/shutdown"), "{help}");

        let (status, _, body) = get(addr, "/nope");
        assert_eq!(status, 404);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("no such endpoint"), "{text}");
        assert!(
            text.contains("/render"),
            "the 404 teaches the routes: {text}"
        );

        let (status, _, _) = post(addr, "/render");
        assert_eq!(status, 405);

        let (status, _, body) = get(addr, "/render?cach-kb=8");
        assert_eq!(status, 400);
        assert!(String::from_utf8(body).unwrap().contains("cach-kb"));

        let (status, _, _) = get(addr, "/stats");
        assert_eq!(status, 200);
        let stats = server.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.errors, 3);
    });
}

#[test]
fn compare_agrees_with_the_journal_and_flags_divergence() {
    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        post(addr, &format!("/run?{SPEC_QUERY}"));
        let warmed = server.session().stats().simulations;
        let (_, _, report_json) = get(addr, &format!("/render?{SPEC_QUERY}&format=json"));

        let (status, _, _) = http(addr, "POST", "/compare", b"");
        assert_eq!(status, 400, "a body is required");

        let (status, _, body) = http(addr, "POST", "/compare", &report_json);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("4 scenarios matched"), "{text}");

        // A report the journal has never seen: its fingerprints miss,
        // and a missing cell is a divergence, not a silent pass.
        let other = StudySession::new();
        let spec = other
            .spec(REPORT_NAME)
            .cache_kb([8, 16])
            .policies(["probing", "gray"])
            .workload_names(["sha"])
            .unwrap()
            .trace_cycles(30_000);
        let foreign = other.run(&spec).unwrap().to_json();
        let (status, _, _) = http(addr, "POST", "/compare", foreign.as_bytes());
        assert_eq!(status, 409);

        assert_eq!(
            server.session().stats().simulations,
            warmed,
            "comparing replays nothing"
        );
    });
}

#[test]
fn shutdown_is_token_gated_drains_and_flushes_the_journal() {
    let dir = std::env::temp_dir().join(format!("nbti-serve-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let options = ServeOptions {
        shutdown_token: Some("letmein".to_string()),
        ..ServeOptions::default()
    };
    let server = StudyServer::bind(JsonlCache::in_dir(&dir).unwrap(), options).unwrap();
    with_server(&server, |addr| {
        let (status, _, _) = post(addr, &format!("/run?{SPEC_QUERY}"));
        assert_eq!(status, 200);

        // Wrong and missing tokens bounce; the server keeps serving.
        let (status, _, _) = post(addr, "/shutdown?token=wrong");
        assert_eq!(status, 403);
        let (status, _, _) = post(addr, "/shutdown");
        assert_eq!(status, 403);
        let (status, _, _) = get(addr, "/stats");
        assert_eq!(status, 200);

        let (status, _, body) = post(addr, "/shutdown?token=letmein");
        assert_eq!(status, 200);
        assert_eq!(String::from_utf8(body).unwrap(), "draining\n");
    });
    assert!(
        server.shutdown_handle().load(Ordering::SeqCst),
        "the endpoint itself flipped the drain flag"
    );

    // The journal survived the drain: a fresh process replays the
    // whole study without a single simulation.
    let warm = StudySession::new().cache(JsonlCache::in_dir(&dir).unwrap());
    reference_report(&warm);
    let stats = warm.stats();
    assert_eq!(stats.simulations, 0);
    assert_eq!(stats.cache_hits, 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_unconfigured_shutdown_endpoint_is_always_403() {
    let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
    with_server(&server, |addr| {
        let (status, _, body) = post(addr, "/shutdown?token=anything");
        assert_eq!(status, 403);
        assert!(String::from_utf8(body).unwrap().contains("disabled"));
    });
}
