//! Properties of the device-model axis: operating-point physics moves
//! the right way, the reference model reproduces the pre-model-axis
//! numbers bit-for-bit, and calibration runs exactly once per distinct
//! model key across a grid.

use aging_cache::model::{ModelContext, ModelEval, METRIC_LT, METRIC_LT0};
use aging_cache::registry::PolicyRegistry;
use aging_cache::study::StudySpec;
use aging_cache::CoreError;
use cache_sim::{BankMapping, IdentityMapping};

fn probing4() -> impl Fn() -> Result<Box<dyn BankMapping>, CoreError> {
    || PolicyRegistry::global().build("probing", 4, 1)
}

/// Evaluates one model key on a fixed profile and returns `(lt0, lt)`.
fn lifetimes(ctx: &ModelContext, key: &str, sleep: &[f64]) -> (f64, f64) {
    let policy = probing4();
    let metrics = ctx
        .calibrated(key)
        .unwrap_or_else(|e| panic!("{key}: {e}"))
        .evaluate(&ModelEval {
            sleep_fractions: sleep,
            p0: 0.5,
            update_days: 1.0,
            policy: &policy,
        })
        .unwrap_or_else(|e| panic!("{key}: {e}"));
    (
        metrics.get(METRIC_LT0).expect("lt0_years"),
        metrics.get(METRIC_LT).expect("lt_years"),
    )
}

/// Higher operating temperature → shorter lifetime (Arrhenius), for
/// random temperature pairs and sleep profiles.
#[test]
fn hotter_models_always_age_faster() {
    let ctx = ModelContext::new();
    quickprop::cases(if cfg!(debug_assertions) { 4 } else { 8 }, |g| {
        let t_cool = 30.0 + g.f64_in(0.0..60.0);
        let t_hot = t_cool + 5.0 + g.f64_in(0.0..60.0);
        let busy = g.f64_in(0.0..0.4);
        let sleep = [busy, 0.9, 0.7, 0.3];
        let (lt0_cool, lt_cool) = lifetimes(&ctx, &format!("nbti:temp={t_cool}"), &sleep);
        let (lt0_hot, lt_hot) = lifetimes(&ctx, &format!("nbti:temp={t_hot}"), &sleep);
        assert!(
            lt0_hot < lt0_cool && lt_hot < lt_cool,
            "hotter must be shorter-lived: {t_cool}C ({lt0_cool}/{lt_cool}) vs \
             {t_hot}C ({lt0_hot}/{lt_hot})"
        );
    });
}

/// Uniformly larger sleep fractions → longer lifetime, on the
/// reference model.
#[test]
fn more_sleep_always_extends_lifetime() {
    let ctx = ModelContext::new();
    quickprop::cases(if cfg!(debug_assertions) { 4 } else { 8 }, |g| {
        let base: Vec<f64> = (0..4).map(|_| g.f64_in(0.0..0.5)).collect();
        let extra = 0.05 + g.f64_in(0.0..0.3);
        let more: Vec<f64> = base.iter().map(|s| s + extra).collect();
        let (lt0_a, lt_a) = lifetimes(&ctx, "nbti-45nm", &base);
        let (lt0_b, lt_b) = lifetimes(&ctx, "nbti-45nm", &more);
        assert!(
            lt0_b > lt0_a && lt_b > lt_a,
            "sleeping more must extend life: {base:?} ({lt0_a}/{lt_a}) vs \
             {more:?} ({lt0_b}/{lt_b})"
        );
    });
}

/// A laxer failure criterion (larger tolerated SNM degradation) →
/// longer lifetime, monotonically across the axis.
#[test]
fn failure_criterion_is_monotone() {
    let ctx = ModelContext::new();
    let sleep = [0.1, 0.8, 0.6, 0.3];
    let mut last = 0.0f64;
    for fail_pct in [5.0, 10.0, 20.0, 30.0, 40.0] {
        let (lt0, lt) = lifetimes(&ctx, &format!("nbti:fail={fail_pct}"), &sleep);
        assert!(
            lt0 > last,
            "tolerating more degradation must extend life: fail={fail_pct}% \
             gives LT0 {lt0} after {last}"
        );
        // Under the strictest criteria the cell can die within the
        // first update period, where rotation cannot help yet — but it
        // must never hurt.
        assert!(lt >= lt0, "re-indexing must never hurt at fail={fail_pct}%");
        last = lt0;
    }
}

/// Golden: the `nbti-45nm` reference model reproduces the
/// pre-model-axis engine — `ExperimentContext.aging` driving
/// `cache_lifetime_with` directly — **bit for bit**, through a real
/// simulated workload.
#[test]
fn reference_model_matches_the_pr2_engine_bit_for_bit() {
    let ctx = aging_cache::experiment::ExperimentContext::new().expect("calibration");
    let report = StudySpec::new("golden")
        .workload_names(["sha", "CRC32"])
        .unwrap()
        .trace_cycles(40_000)
        .policy_seed(1)
        .run(&ctx)
        .expect("study");
    for r in report.records() {
        // The PR-2 engine path: identity baseline + policy rotation
        // from the measured sleep fractions, on the shim's public
        // calibrated analysis.
        let mut identity = IdentityMapping;
        let lt0 = ctx
            .aging
            .cache_lifetime_with(&r.sleep_fractions, 0.5, &mut identity)
            .expect("lt0");
        let mut probing = PolicyRegistry::global()
            .build("probing", r.scenario.banks, 1)
            .expect("probing");
        let lt = ctx
            .aging
            .cache_lifetime_with(&r.sleep_fractions, 0.5, probing.as_mut())
            .expect("lt");
        assert_eq!(
            r.lt0_years().to_bits(),
            lt0.to_bits(),
            "{}: LT0 drifted from the historic engine",
            r.scenario.workload
        );
        assert_eq!(
            r.lt_years().to_bits(),
            lt.to_bits(),
            "{}: LT drifted from the historic engine",
            r.scenario.workload
        );
        assert_eq!(
            r.metrics.names().collect::<Vec<_>>(),
            ["lt0_years", "lt_years"]
        );
    }
}

/// Calibration runs exactly once per distinct canonical model key
/// across a whole grid — aliases included.
#[test]
fn grid_calibrates_once_per_distinct_model() {
    let ctx = ModelContext::new();
    let report = StudySpec::new("calibration count")
        .models(["nbti-45nm", "nbti:vlow=0.75", "nbti:temp=105"])
        .policies(["probing", "gray"])
        .workload_names(["profile:0.1,0.8,0.6,0.3"])
        .unwrap()
        .run(&ctx)
        .expect("study");
    // 3 listed models × 2 policies = 6 scenarios, but `nbti:vlow=0.75`
    // canonicalizes to `nbti-45nm`: only 2 distinct models calibrate.
    assert_eq!(report.records().len(), 6);
    assert_eq!(
        ctx.calibration_count(),
        2,
        "one calibration per distinct model"
    );
    // Re-running on the same context calibrates nothing new.
    StudySpec::new("again")
        .models(["nbti:temp=105"])
        .workload_names(["profile:0.1,0.8,0.6,0.3"])
        .unwrap()
        .run(&ctx)
        .expect("study");
    assert_eq!(ctx.calibration_count(), 2, "contexts cache across runs");
}

/// The model axis round-trips through report JSON: non-default keys
/// are recorded, the default stays invisible.
#[test]
fn model_axis_round_trips_through_reports() {
    let ctx = ModelContext::new();
    let report = StudySpec::new("model json")
        .models(["nbti-45nm", "variation:30"])
        .workload_names(["profile:0.1,0.8,0.6,0.3"])
        .unwrap()
        .run(&ctx)
        .expect("study");
    let text = report.to_json();
    let back = aging_cache::study::StudyReport::from_json(&text).expect("parse");
    assert_eq!(back.to_json(), text);
    assert_eq!(back.records()[0].scenario.model, "nbti-45nm");
    assert_eq!(back.records()[1].scenario.model, "variation:30");
    assert_eq!(
        back.records()[1].metric("lt0_q10_years"),
        report.records()[1].metric("lt0_q10_years")
    );
}
