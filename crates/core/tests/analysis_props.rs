//! Property tests for the analysis layer: render→parse round-trips,
//! self-diff emptiness, and group/reduce invariants, over randomized
//! reports (deterministic via `quickprop`).

use aging_cache::analysis::{Axis, Query, Reduce, ReportDiff};
use aging_cache::model::Metrics;
use aging_cache::study::{Scenario, ScenarioRecord, StudyReport};
use quickprop::Gen;

const POLICIES: [&str; 4] = ["identity", "probing", "scrambling", "gray"];
const WORKLOADS: [&str; 4] = ["sha", "CRC32", "dijkstra", "fft"];
const MODELS: [&str; 3] = ["nbti-45nm", "nbti:temp=105", "variation:30"];

/// A random record: every axis drawn from a small pool, full-range
/// seeds (exercising the u64-as-string JSON path), occasional NaN
/// simulation metrics (the pinned-profile marker).
fn random_record(g: &mut Gen, id: usize) -> ScenarioRecord {
    let banks = *g.pick(&[2u32, 4, 8]);
    let nan_sim = g.f64_unit() < 0.1;
    // l2_ways is only serialized alongside an L2, so pin it to 1 when
    // there is none (exactly what `expand` produces).
    let l2_bytes = *g.pick(&[0u64, 64, 128]) * 1024;
    let l2_ways = if l2_bytes == 0 {
        1
    } else {
        *g.pick(&[1u32, 4])
    };
    ScenarioRecord {
        scenario: Scenario {
            id,
            cache_bytes: *g.pick(&[8u64, 16, 32]) * 1024,
            line_bytes: *g.pick(&[16u32, 32]),
            banks,
            ways: *g.pick(&[1u32, 2, 4]),
            replacement: g.pick(&["lru", "mru"]).to_string(),
            l2_cache_bytes: l2_bytes,
            l2_ways,
            update_days: *g.pick(&[0.5f64, 1.0, 7.0]),
            policy: g.pick(&POLICIES).to_string(),
            workload: g.pick(&WORKLOADS).to_string(),
            workload_index: g.usize_in(0..4),
            workload_source: None,
            model: g.pick(&MODELS).to_string(),
            trace_cycles: g.u64_in(1..1_000_000),
            trace_seed: g.next_u64(),
            policy_seed: g.next_u64(),
        },
        sim_cycles: g.u64_in(0..1_000_000),
        esav: if nan_sim { f64::NAN } else { g.f64_unit() },
        miss_rate: if nan_sim { f64::NAN } else { g.f64_unit() },
        useful_idleness: g.vec_f64(0.0..1.0, banks as usize),
        sleep_fractions: g.vec_f64(0.0..1.0, banks as usize),
        metrics: Metrics::from_pairs([
            ("lt0_years", g.f64_in(0.5..10.0)),
            ("lt_years", g.f64_in(0.5..10.0)),
        ]),
    }
}

fn random_report(g: &mut Gen) -> StudyReport {
    let n = g.usize_in(1..24);
    StudyReport::from_records(
        format!("prop-{}", g.case()),
        (0..n).map(|id| random_record(g, id)).collect(),
    )
}

#[test]
fn render_parse_roundtrips_json() {
    quickprop::cases(64, |g| {
        let report = random_report(g);
        let text = report.to_json();
        let back = StudyReport::from_json(&text).expect("emitted JSON must parse");
        assert_eq!(back.to_json(), text, "re-emission must be byte-identical");
        assert_eq!(back.name(), report.name());
        // `assert_eq!(back, report)` would be wrong here: records with
        // NaN simulation metrics (the pinned-profile marker) are never
        // `PartialEq` to themselves. ReportDiff treats NaN == NaN, so
        // it is the correct round-trip oracle.
        assert!(
            ReportDiff::between(&report, &back, 0.0).is_empty(),
            "parse must recover every cell"
        );
    });
}

#[test]
fn self_diff_is_always_empty() {
    quickprop::cases(64, |g| {
        let report = random_report(g);
        let diff = ReportDiff::between(&report, &report, 0.0);
        assert!(diff.is_empty(), "self-diff must be empty: {diff}");
        assert_eq!(diff.matched(), report.records().len());
        // …and so must the diff against the JSON round-trip.
        let back = StudyReport::from_json(&report.to_json()).unwrap();
        assert!(ReportDiff::between(&report, &back, 0.0).is_empty());
    });
}

#[test]
fn a_perturbed_cell_is_always_caught() {
    quickprop::cases(32, |g| {
        let report = random_report(g);
        let victim = g.usize_in(0..report.records().len());
        let mut records = report.records().to_vec();
        let old = records[victim].metrics.get("lt_years").unwrap();
        records[victim].metrics = Metrics::from_pairs([
            (
                "lt0_years",
                records[victim].metrics.get("lt0_years").unwrap(),
            ),
            ("lt_years", old + 0.125),
        ]);
        let tweaked = StudyReport::from_records(report.name(), records);
        let diff = ReportDiff::between(&report, &tweaked, 1e-6);
        // The victim may collide with an identical twin record (same
        // random axes), in which case key-matching pairs them either
        // way — but a divergence must never go unreported.
        assert!(!diff.is_empty(), "a 0.125-year drift must be caught");
        assert!(
            diff.divergent().iter().any(|d| d.field == "lt_years"),
            "the diverging field must be named: {diff}"
        );
    });
}

#[test]
fn groups_partition_the_selection() {
    quickprop::cases(64, |g| {
        let report = random_report(g);
        let axes = [Axis::Policy, Axis::Workload, Axis::Banks];
        let k = g.usize_in(1..axes.len() + 1);
        let query = Query::new(&report).group_by(axes[..k].iter().copied());
        let groups = query.groups();
        let total: usize = groups.iter().map(|gr| gr.records.len()).sum();
        assert_eq!(total, report.records().len(), "groups must partition");
        for gr in &groups {
            assert!(!gr.records.is_empty(), "no empty groups");
            assert_eq!(gr.key.len(), k);
        }
        // Count-reduction agrees with the partition sizes.
        let counts = query.reduce("lt_years", Reduce::Count).unwrap();
        for (row, gr) in counts.iter().zip(&groups) {
            assert_eq!(row.value, gr.records.len() as f64);
            assert_eq!(row.key, gr.key);
        }
    });
}

#[test]
fn reductions_are_bounded_by_min_and_max() {
    quickprop::cases(64, |g| {
        let report = random_report(g);
        let q = Query::new(&report).group_by([Axis::Policy]);
        let mins = q.reduce("lt_years", Reduce::Min).unwrap();
        let means = q.reduce("lt_years", Reduce::Mean).unwrap();
        let geos = q.reduce("lt_years", Reduce::Geomean).unwrap();
        let maxs = q.reduce("lt_years", Reduce::Max).unwrap();
        for i in 0..mins.len() {
            assert!(mins[i].value <= means[i].value + 1e-12);
            assert!(means[i].value <= maxs[i].value + 1e-12);
            assert!(
                mins[i].value <= geos[i].value + 1e-12 && geos[i].value <= maxs[i].value + 1e-12,
                "geomean within [min, max]"
            );
            assert!(geos[i].value <= means[i].value + 1e-12, "AM-GM");
        }
    });
}
