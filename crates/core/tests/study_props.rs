//! Properties of the Study API: registry-wide bijectivity, grid
//! determinism, and JSON round-trips.

use aging_cache::experiment::ExperimentContext;
use aging_cache::registry::{derive_policy_seed, PolicyRegistry};
use aging_cache::study::{StudyReport, StudySpec};
use cache_sim::mapping::is_bijective;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::new().expect("calibration"))
}

/// Every registered policy — including a custom one — is a bijection
/// over the banks at every update step, for every power-of-two bank
/// count and many seeds.
#[test]
fn every_registered_policy_is_always_bijective() {
    let mut registry = PolicyRegistry::builtin();
    registry
        .register_fn("user-swap", "swaps even/odd banks", |banks, _seed| {
            Ok(Box::new(cache_sim::FnMapping::new(move |logical, _| {
                (logical ^ 1) & (banks - 1)
            })))
        })
        .unwrap();
    quickprop::cases(if cfg!(debug_assertions) { 12 } else { 48 }, |g| {
        let banks = 1u32 << g.u32_in(1..5);
        let seed = g.next_u64();
        for (name, _) in registry.iter() {
            let mut mapping = registry
                .build(name, banks, seed)
                .unwrap_or_else(|e| panic!("{name} failed to build at M={banks}: {e}"));
            for step in 0..2 * banks + 5 {
                assert!(
                    is_bijective(mapping.as_ref(), banks),
                    "{name} is not bijective at M={banks}, step {step}, seed {seed:#x}"
                );
                mapping.update();
            }
        }
    });
}

/// Seed derivation is deterministic and pins the documented chain:
/// `base + workload_index` for traces, `derive_policy_seed` for
/// policies.
#[test]
fn grid_seed_derivation_is_documented_chain() {
    let spec = StudySpec::new("seeds")
        .workload_names(["sha", "CRC32", "dijkstra"])
        .unwrap()
        .policies(["scrambling", "rotate-xor"])
        .base_seed(4242);
    let grid = spec.expand().unwrap();
    for s in grid.scenarios() {
        assert_eq!(s.trace_seed, 4242 + s.workload_index as u64);
        assert_eq!(
            s.policy_seed,
            derive_policy_seed(4242, s.id as u64, &s.policy)
        );
    }
}

/// The acceptance grid: a 2×2×3 study runs in parallel and yields
/// byte-identical JSON to the sequential run, and the report
/// round-trips through JSON.
#[test]
fn parallel_grid_is_deterministic_and_roundtrips() {
    let spec = StudySpec::new("2x2x3 determinism")
        .cache_kb([8, 16])
        .banks([2, 4])
        .policies(["probing", "scrambling", "gray"])
        .workload_names(["sha", "CRC32"])
        .unwrap()
        .trace_cycles(40_000);

    let sequential = spec.clone().threads(1).run(ctx()).expect("sequential run");
    let parallel = spec.clone().threads(8).run(ctx()).expect("parallel run");
    assert_eq!(sequential.records().len(), 2 * 2 * 3 * 2);
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "parallel execution must be byte-identical to sequential"
    );

    let text = parallel.to_json();
    let back = StudyReport::from_json(&text).expect("parse back");
    assert_eq!(back, parallel);
    assert_eq!(back.to_json(), text, "JSON round-trip must be stable");
}

/// Running the same spec twice gives identical reports (no hidden
/// global state).
#[test]
fn reruns_are_reproducible() {
    let spec = StudySpec::new("rerun")
        .policies(["rotate-xor"])
        .workload_names(["gsme"])
        .unwrap()
        .trace_cycles(40_000);
    let a = spec.clone().run(ctx()).unwrap();
    let b = spec.run(ctx()).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}

/// A registry without any "identity" entry still runs: the LT0
/// baseline is computed from the literal identity mapping, not a
/// registry lookup.
#[test]
fn registry_without_identity_still_runs() {
    let mut registry = PolicyRegistry::empty();
    registry
        .register_fn("only-probing", "probing under a custom name", |banks, _| {
            Ok(Box::new(aging_cache::Probing::new(banks)?))
        })
        .unwrap();
    let report = StudySpec::new("no identity entry")
        .registry(registry)
        .policies(["only-probing"])
        .workload_names(["sha"])
        .unwrap()
        .trace_cycles(40_000)
        .run(ctx())
        .unwrap();
    let r = &report.records()[0];
    assert!(
        r.lt_years() > r.lt0_years(),
        "probing must beat the baseline"
    );
}

/// Scenarios differing only in policy share one simulation, so their
/// measured sim metrics are bitwise identical.
#[test]
fn policy_axis_shares_the_simulation() {
    let report = StudySpec::new("shared sim")
        .policies(["probing", "scrambling", "gray", "rotate-xor"])
        .workload_names(["dijkstra"])
        .unwrap()
        .trace_cycles(40_000)
        .run(ctx())
        .unwrap();
    let first = &report.records()[0];
    for r in report.records() {
        assert_eq!(r.esav.to_bits(), first.esav.to_bits());
        assert_eq!(r.sleep_fractions, first.sleep_fractions);
    }
}

/// A custom registered policy runs through the full grid pipeline.
#[test]
fn custom_policy_runs_in_a_study() {
    let mut registry = PolicyRegistry::builtin();
    registry
        .register_fn("reverse", "reverses the bank-select bits", |banks, _| {
            let p = banks.trailing_zeros();
            Ok(Box::new(cache_sim::FnMapping::new(move |logical, _| {
                if p == 0 {
                    logical
                } else {
                    logical.reverse_bits() >> (32 - p)
                }
            })))
        })
        .unwrap();
    let report = StudySpec::new("custom policy")
        .registry(registry)
        .policies(["reverse", "probing"])
        .workload_names(["sha"])
        .unwrap()
        .trace_cycles(40_000)
        .run(ctx())
        .unwrap();
    assert_eq!(report.records().len(), 2);
    // A static bijection cannot beat rotation, but it must produce a
    // valid positive lifetime.
    assert!(report.records().iter().all(|r| r.lt_years() > 0.0));
}
