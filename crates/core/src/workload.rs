//! The open, string-keyed workload registry — the workload axis'
//! counterpart of [`crate::registry`].
//!
//! The paper's evaluation fixes the workload axis to the 18 synthetic
//! MediaBench-like profiles, yet everything downstream — bank idleness,
//! sleep fractions, NBTI lifetimes — is a pure function of the access
//! stream, so *any* trace is admissible. A [`Workload`] is a named
//! factory of [`TraceSource`]s; the [`WorkloadRegistry`] resolves:
//!
//! * **suite names** (`"sha"`, `"CRC32"`, …) to [`SyntheticWorkload`]s
//!   over the calibrated profiles, plus anything registered by user
//!   code;
//! * **file-backed keys** (`csv:path`, `din:path`, `lackey:path`, or
//!   `file:path` with the format inferred from the extension) to
//!   [`FileWorkload`]s that stream the trace file chunk-by-chunk, so
//!   multi-gigabyte traces run in constant memory;
//! * **pinned profiles** (`profile:0.1,0.8,0.6,0.3`) to
//!   [`ProfileWorkload`]s that skip simulation and feed per-bank sleep
//!   fractions straight into the device models.
//!
//! File workloads carry provenance: the trace format plus a streaming
//! FNV-1a 64 hash of the file bytes, recorded in every
//! [`StudyReport`](crate::study::StudyReport) scenario so a published
//! result names exactly which trace produced it.
//!
//! # Examples
//!
//! Resolving built-ins and registering a custom profile:
//!
//! ```
//! use aging_cache::workload::WorkloadRegistry;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let mut registry = WorkloadRegistry::builtin();
//! assert_eq!(registry.len(), 18);
//! let sha = registry.resolve("sha")?;
//! assert_eq!(sha.name(), "sha");
//! assert!(sha.source_info().is_none(), "synthetic: no file provenance");
//!
//! let custom = trace_synth::suite::by_name("sha").unwrap().with_p0(0.9);
//! registry.register_profile("sha-skewed", custom)?;
//! assert!(registry.resolve("sha-skewed").is_ok());
//! # Ok(())
//! # }
//! ```
//!
//! Resolving a trace file by key (any `TraceSource` consumer works the
//! same way from there):
//!
//! ```no_run
//! use aging_cache::workload::WorkloadRegistry;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let workload = WorkloadRegistry::builtin().resolve("csv:/tmp/trace.csv")?;
//! let info = workload.source_info().expect("file-backed");
//! println!("simulating {} ({} hash {})", workload.name(), info.format, info.hash);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use trace_synth::formats::{self, TraceFormat};
use trace_synth::source::Fnv64;
use trace_synth::{IterSource, TraceSource, WorkloadProfile};

/// Provenance of a file-backed workload, embedded in study reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSourceInfo {
    /// The trace format key (`"din"`, `"lackey"`, `"csv"`).
    pub format: String,
    /// FNV-1a 64 hash of the raw file bytes, as `fnv1a64:<16 hex>`.
    pub hash: String,
    /// The path the trace was read from (informational; the hash is
    /// the reproducibility anchor).
    pub path: String,
}

/// A named factory of access streams — one point on the workload axis.
///
/// Implementations must be deterministic: the same `seed` must always
/// produce the same stream (file-backed workloads ignore the seed — the
/// file *is* the stream).
pub trait Workload: Send + Sync {
    /// The registry key (a suite name, or a `format:path` spec).
    fn name(&self) -> &str;

    /// One-line human-readable description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// Probability that a stored bit is a logic '0' (consumed by the
    /// aging model). `0.5` unless the workload knows better.
    fn p0(&self) -> f64 {
        0.5
    }

    /// File provenance, for file-backed workloads.
    fn source_info(&self) -> Option<WorkloadSourceInfo> {
        None
    }

    /// A pinned per-bank sleep/idleness profile that bypasses trace
    /// simulation entirely — the direct drive into the physics layer
    /// that the device-model ablation presets use. `None` (the
    /// default) for real workloads.
    fn pinned_profile(&self) -> Option<&[f64]> {
        None
    }

    /// Starts a fresh access stream.
    ///
    /// # Errors
    ///
    /// Propagates trace-open failures (file-backed workloads).
    fn open(&self, seed: u64) -> Result<Box<dyn TraceSource>, CoreError>;
}

/// A synthetic-suite workload: wraps a [`WorkloadProfile`] so the
/// calibrated generators plug into the same streaming pipeline as
/// trace files.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    profile: WorkloadProfile,
}

impl SyntheticWorkload {
    /// Wraps a profile under its own name.
    pub fn new(profile: WorkloadProfile) -> Self {
        Self {
            name: profile.name().to_string(),
            profile,
        }
    }

    /// Wraps a profile under an explicit registry key.
    pub fn named(name: impl Into<String>, profile: WorkloadProfile) -> Self {
        Self {
            name: name.into(),
            profile,
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl Workload for SyntheticWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        "synthetic MediaBench-like profile"
    }

    fn p0(&self) -> f64 {
        self.profile.p0()
    }

    fn open(&self, seed: u64) -> Result<Box<dyn TraceSource>, CoreError> {
        Ok(Box::new(IterSource::new(self.profile.trace(seed))))
    }
}

/// A file-backed workload: streams a Dinero/Lackey/CSV trace file.
///
/// Construction reads the file once to compute the provenance hash, so
/// a missing or unreadable file fails at registration time rather than
/// mid-study.
#[derive(Debug, Clone)]
pub struct FileWorkload {
    name: String,
    path: PathBuf,
    format: TraceFormat,
    hash: u64,
}

impl FileWorkload {
    /// Opens `path` as a trace in `format`, hashing its bytes for
    /// provenance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] when the file cannot be read.
    pub fn new(format: TraceFormat, path: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let path = path.into();
        let hash = hash_file(&path)?;
        Ok(Self {
            name: format!("{format}:{}", path.display()),
            path,
            format,
            hash,
        })
    }

    /// Opens a `format:path` spec (`csv:…`, `din:…`, `lackey:…`, or
    /// `file:…` with the format inferred from the extension).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] for an unknown format key or an
    /// unreadable file.
    pub fn from_spec(spec: &str) -> Result<Self, CoreError> {
        let (format, path) = formats::parse_spec(spec)?;
        Self::new(format, path)
    }

    /// The trace format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The trace file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The FNV-1a 64 provenance hash of the file bytes.
    pub fn content_hash(&self) -> u64 {
        self.hash
    }
}

/// A pinned per-bank idleness profile — no trace and no simulation;
/// the per-bank sleep fractions feed the aging models directly.
///
/// This is the `(p0, Psleep)` interface of the paper's characterization
/// LUT made first-class: the device-model ablations historically drove
/// the physics with hand-picked profiles, and the `profile:` workload
/// key lets a [`StudySpec`](crate::study::StudySpec) do the same
/// through the ordinary grid. Simulation-derived record fields (`esav`,
/// `miss_rate`) are `NaN` and `sim_cycles` is 0 — there is no trace to
/// measure them on.
///
/// # Examples
///
/// ```
/// use aging_cache::workload::{ProfileWorkload, Workload, WorkloadRegistry};
///
/// # fn main() -> Result<(), aging_cache::CoreError> {
/// let w = WorkloadRegistry::builtin().resolve("profile:0.1,0.8,0.6,0.3")?;
/// assert_eq!(w.pinned_profile(), Some(&[0.1, 0.8, 0.6, 0.3][..]));
/// // Or construct directly, with a content skew:
/// let skewed = ProfileWorkload::new(vec![0.5, 0.5])?.with_p0(0.9)?;
/// assert_eq!(skewed.p0(), 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProfileWorkload {
    name: String,
    sleep: Vec<f64>,
    p0: f64,
}

impl ProfileWorkload {
    /// Creates a profile over per-bank sleep fractions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty profile or
    /// fractions outside `[0, 1]`.
    pub fn new(sleep: Vec<f64>) -> Result<Self, CoreError> {
        if sleep.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "sleep",
                value: 0.0,
                expected: "at least one bank",
            });
        }
        for &s in &sleep {
            if !(0.0..=1.0).contains(&s) || !s.is_finite() {
                return Err(CoreError::InvalidParameter {
                    name: "sleep",
                    value: s,
                    expected: "sleep fractions in [0, 1]",
                });
            }
        }
        let name = format!(
            "profile:{}",
            sleep
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        Ok(Self {
            name,
            sleep,
            p0: 0.5,
        })
    }

    /// Parses a `profile:s0,s1,…` spec.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a malformed spec.
    pub fn from_spec(spec: &str) -> Result<Self, CoreError> {
        let rest = spec.strip_prefix("profile:").unwrap_or(spec);
        let sleep = rest
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| CoreError::Report {
                message: format!("malformed profile key `{spec}`: expected `profile:s0,s1,…`"),
            })?;
        Self::new(sleep)
    }

    /// Overrides the stored-'0' probability (default 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `p0` is outside
    /// `[0, 1]`.
    pub fn with_p0(mut self, p0: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&p0) || !p0.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "p0",
                value: p0,
                expected: "p0 in [0, 1]",
            });
        }
        self.p0 = p0;
        Ok(self)
    }
}

impl Workload for ProfileWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        "pinned per-bank idleness profile (no simulation)"
    }

    fn p0(&self) -> f64 {
        self.p0
    }

    fn pinned_profile(&self) -> Option<&[f64]> {
        Some(&self.sleep)
    }

    fn open(&self, _seed: u64) -> Result<Box<dyn TraceSource>, CoreError> {
        Ok(Box::new(IterSource::new(std::iter::empty::<
            cache_sim::Access,
        >())))
    }
}

fn hash_file(path: &Path) -> Result<u64, CoreError> {
    let mut file = File::open(path)
        .map_err(|e| trace_synth::TraceError::io(&format!("open {}", path.display()), e))?;
    let mut hasher = Fnv64::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = file
            .read(&mut chunk)
            .map_err(|e| trace_synth::TraceError::io(&format!("read {}", path.display()), e))?;
        if n == 0 {
            return Ok(hasher.finish());
        }
        hasher.update(&chunk[..n]);
    }
}

impl Workload for FileWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        "file-backed trace"
    }

    fn source_info(&self) -> Option<WorkloadSourceInfo> {
        Some(WorkloadSourceInfo {
            format: self.format.key().to_string(),
            hash: format!("fnv1a64:{:016x}", self.hash),
            path: self.path.display().to_string(),
        })
    }

    fn open(&self, _seed: u64) -> Result<Box<dyn TraceSource>, CoreError> {
        Ok(formats::open_path(self.format, &self.path)?)
    }
}

/// The string-keyed workload registry.
///
/// Keys are ordered (a `BTreeMap`), so listings and expanded grids are
/// deterministic regardless of registration order. File-backed keys
/// (`format:path`) resolve dynamically without registration.
#[derive(Clone, Default)]
pub struct WorkloadRegistry {
    entries: BTreeMap<String, Arc<dyn Workload>>,
}

impl std::fmt::Debug for WorkloadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadRegistry")
            .field("workloads", &self.names())
            .finish()
    }
}

impl WorkloadRegistry {
    /// An empty registry (no workloads at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The registry with the full 18-benchmark MediaBench-like suite.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for profile in trace_synth::suite::mediabench() {
            r.register(Arc::new(SyntheticWorkload::new(profile)))
                .expect("fresh registry");
        }
        r
    }

    /// A shared, immutable instance of [`WorkloadRegistry::builtin`]
    /// for hot paths that would otherwise rebuild the suite per call.
    pub fn global() -> &'static WorkloadRegistry {
        static GLOBAL: std::sync::OnceLock<WorkloadRegistry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(WorkloadRegistry::builtin)
    }

    /// Registers a workload object. Fails if the name is already taken.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateWorkload`] on a name collision.
    pub fn register(&mut self, workload: Arc<dyn Workload>) -> Result<(), CoreError> {
        let name = workload.name().to_string();
        if self.entries.contains_key(&name) {
            return Err(CoreError::DuplicateWorkload { name });
        }
        self.entries.insert(name, workload);
        Ok(())
    }

    /// Registers a synthetic profile under `name` — the one-liner path
    /// for user code and examples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateWorkload`] on a name collision.
    pub fn register_profile(
        &mut self,
        name: &str,
        profile: WorkloadProfile,
    ) -> Result<(), CoreError> {
        self.register(Arc::new(SyntheticWorkload::named(name, profile)))
    }

    /// Looks up a registered workload by exact name (no dynamic
    /// file-key resolution; see [`WorkloadRegistry::resolve`]).
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Workload>> {
        self.entries.get(name)
    }

    /// Resolves a workload key: registered names first, then dynamic
    /// `profile:s0,s1,…` pinned-profile keys and `format:path` file
    /// keys.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownWorkload`] for an unresolvable key,
    /// or [`CoreError::Trace`] when a file key names an unreadable
    /// file.
    pub fn resolve(&self, key: &str) -> Result<Arc<dyn Workload>, CoreError> {
        if let Some(w) = self.entries.get(key) {
            return Ok(Arc::clone(w));
        }
        if key.starts_with("profile:") {
            return Ok(Arc::new(ProfileWorkload::from_spec(key)?));
        }
        if formats::parse_spec(key).is_ok() {
            return Ok(Arc::new(FileWorkload::from_spec(key)?));
        }
        Err(CoreError::UnknownWorkload {
            name: key.to_string(),
            known: self.names().join(", "),
        })
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, workload)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<dyn Workload>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::formats::write_csv;

    #[test]
    fn builtin_mirrors_the_suite() {
        let r = WorkloadRegistry::builtin();
        assert_eq!(r.len(), 18);
        assert!(r.get("sha").is_some());
        assert!(r.get("adpcm.dec").is_some());
        let mut names = r.names();
        names.sort();
        assert_eq!(names, r.names(), "names are pre-sorted");
    }

    #[test]
    fn synthetic_streams_match_the_profile() {
        let w = WorkloadRegistry::builtin().resolve("CRC32").unwrap();
        let mut src = w.open(7).unwrap();
        let mut got = Vec::new();
        src.next_batch(&mut got, 500).unwrap();
        let want: Vec<_> = trace_synth::suite::by_name("CRC32")
            .unwrap()
            .trace(7)
            .take(500)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn unknown_key_lists_known_names() {
        let Err(e) = WorkloadRegistry::builtin().resolve("quake3") else {
            panic!("unknown key must not resolve");
        };
        let text = e.to_string();
        assert!(text.contains("quake3"), "{text}");
        assert!(text.contains("sha"), "{text}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = WorkloadRegistry::builtin();
        let e = r
            .register_profile("sha", trace_synth::suite::by_name("sha").unwrap())
            .unwrap_err();
        assert!(matches!(e, CoreError::DuplicateWorkload { .. }));
    }

    #[test]
    fn file_key_resolves_with_provenance() {
        let trace: Vec<_> = trace_synth::suite::by_name("sha")
            .unwrap()
            .trace(1)
            .take(200)
            .collect();
        let mut text = String::new();
        write_csv(&mut text, &trace);
        let dir = std::env::temp_dir().join("nbti-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, &text).unwrap();

        let key = format!("csv:{}", path.display());
        let w = WorkloadRegistry::builtin().resolve(&key).unwrap();
        assert_eq!(w.name(), key);
        let info = w.source_info().expect("file provenance");
        assert_eq!(info.format, "csv");
        assert_eq!(
            info.hash,
            format!("fnv1a64:{:016x}", Fnv64::hash(text.as_bytes()))
        );

        let mut src = w.open(0).unwrap();
        let mut got = Vec::new();
        while src.next_batch(&mut got, 64).unwrap() > 0 {}
        assert_eq!(got, trace);
    }

    #[test]
    fn missing_file_fails_at_resolve_time() {
        let Err(e) = WorkloadRegistry::builtin().resolve("csv:/nonexistent/missing.csv") else {
            panic!("a missing trace file must not resolve");
        };
        assert!(matches!(e, CoreError::Trace(_)), "{e}");
    }

    #[test]
    fn profile_keys_resolve_and_validate() {
        let w = WorkloadRegistry::builtin()
            .resolve("profile:0.1, 0.8,0.6,0.3")
            .unwrap();
        assert_eq!(w.pinned_profile(), Some(&[0.1, 0.8, 0.6, 0.3][..]));
        assert_eq!(w.name(), "profile:0.1,0.8,0.6,0.3", "canonical name");
        assert_eq!(w.p0(), 0.5);
        // An opened stream is empty — there is nothing to simulate.
        let mut src = w.open(1).unwrap();
        let mut buf = Vec::new();
        assert_eq!(src.next_batch(&mut buf, 16).unwrap(), 0);

        assert!(ProfileWorkload::from_spec("profile:").is_err());
        assert!(ProfileWorkload::from_spec("profile:0.5,nope").is_err());
        assert!(ProfileWorkload::new(vec![1.5]).is_err());
        assert!(ProfileWorkload::new(vec![]).is_err());
        assert!(ProfileWorkload::new(vec![0.5])
            .unwrap()
            .with_p0(2.0)
            .is_err());
    }

    #[test]
    fn p0_defaults_and_overrides() {
        let r = WorkloadRegistry::builtin();
        assert_eq!(r.resolve("sha").unwrap().p0(), 0.5);
        let skewed = trace_synth::suite::by_name("sha").unwrap().with_p0(0.9);
        let w = SyntheticWorkload::named("skewed", skewed);
        assert_eq!(w.p0(), 0.9);
    }
}
