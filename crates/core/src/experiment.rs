//! Experiment configuration and the paper-table entry points.
//!
//! Since the Study API redesign this module is a thin compatibility
//! layer: the measurement engine is [`crate::study`] (declarative
//! [`crate::study::StudySpec`] grids run in parallel), the
//! paper's tables are presets over it ([`crate::presets`]) and the
//! rendering is a set of pure views ([`crate::views`]). The `tableN`
//! functions here wire those three together so historic callers — and
//! the published measured values — are unchanged.

use crate::aging::AgingAnalysis;
use crate::error::CoreError;
use crate::lfsr::Lfsr;
use crate::model::ModelContext;
use crate::paper;
use crate::presets;
use crate::report::Table;
use crate::study::{ScenarioRecord, StudySpec};
use crate::views;
use cache_sim::CacheGeometry;
use nbti_model::{calibration, CellDesign, LifetimeSolver};
use trace_synth::rng::SplitMix64;
use trace_synth::WorkloadProfile;

/// A cache configuration plus simulation horizon for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Number of uniform banks `M`.
    pub banks: u32,
    /// Trace length in cycles.
    pub trace_cycles: u64,
    /// Base seed; benchmark `i` uses `seed + i`.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's reference configuration: 16 kB, 16 B lines, M = 4.
    pub fn paper_reference() -> Self {
        Self {
            cache_bytes: 16 * 1024,
            line_bytes: 16,
            banks: 4,
            trace_cycles: 320_000,
            seed: 1000,
        }
    }

    /// Overrides the cache size (kB).
    #[must_use]
    pub fn with_cache_kb(mut self, kb: u64) -> Self {
        self.cache_bytes = kb * 1024;
        self
    }

    /// Overrides the line size (bytes).
    #[must_use]
    pub fn with_line_bytes(mut self, bytes: u32) -> Self {
        self.line_bytes = bytes;
        self
    }

    /// Overrides the bank count.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Overrides the simulated trace length.
    #[must_use]
    pub fn with_trace_cycles(mut self, cycles: u64) -> Self {
        self.trace_cycles = cycles;
        self
    }

    /// The geometry this configuration describes.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn geometry(&self) -> Result<CacheGeometry, CoreError> {
        Ok(CacheGeometry::direct_mapped(
            self.cache_bytes,
            self.line_bytes,
            self.banks,
        )?)
    }

    /// Builds the shared experiment context (calibrated aging model).
    ///
    /// # Errors
    ///
    /// Propagates NBTI-model calibration errors.
    pub fn build_context(&self) -> Result<ExperimentContext, CoreError> {
        ExperimentContext::new()
    }

    /// A [`StudySpec`] at exactly this configuration: single point on
    /// every geometry axis, the full suite on the workload axis, the
    /// historic seeds. The starting point of every preset.
    pub fn study(&self, name: impl Into<String>) -> StudySpec {
        StudySpec::new(name)
            .cache_bytes([self.cache_bytes])
            .line_bytes([self.line_bytes])
            .banks([self.banks])
            .trace_cycles(self.trace_cycles)
            .base_seed(self.seed)
            .policy_seed(1)
    }
}

/// **Deprecated shim** over [`ModelContext`]: the historic "calibrated
/// context" of the pre-model-axis API.
///
/// Since the device axis opened, the run context of the Study API is a
/// [`ModelContext`] — a model registry plus the per-model calibration
/// cache. This type survives so historic callers (and the `tableN`
/// entry points below) keep compiling: it carries a `ModelContext` and
/// passes anywhere one is accepted (`StudySpec::run`,
/// `ScenarioGrid::run` take `impl AsRef<ModelContext>`). New code
/// should construct [`ModelContext::new`] directly.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The rotation-aware aging analysis, calibrated to the paper's
    /// 2.93-year cell — the historic public field, still served for
    /// *direct* physics queries.
    ///
    /// Since the model axis opened, studies no longer read this field:
    /// `StudySpec::run` evaluates through the wrapped [`ModelContext`]
    /// and each scenario's model key. Mutating `aging` therefore only
    /// affects callers that query it directly; to change what a study
    /// computes, put the operating point on the model axis
    /// (`StudySpec::models`, `nbti:temp=…` keys) or register a custom
    /// [`AgingModel`](crate::model::AgingModel).
    pub aging: AgingAnalysis,
    models: ModelContext,
}

impl ExperimentContext {
    /// Calibrates the aging model to the paper's anchor.
    ///
    /// # Errors
    ///
    /// Propagates NBTI-model calibration errors.
    pub fn new() -> Result<Self, CoreError> {
        // The process-wide calibration cache holds exactly this solve
        // (field-for-field identical); only re-solve if the two anchor
        // constants ever diverge.
        let solver = if paper::CELL_LIFETIME_YEARS == calibration::REFERENCE_LIFETIME_YEARS {
            calibration::reference_45nm().clone()
        } else {
            LifetimeSolver::calibrated(CellDesign::default_45nm(), paper::CELL_LIFETIME_YEARS)?
        };
        Ok(Self {
            aging: AgingAnalysis::new(solver),
            models: ModelContext::new(),
        })
    }

    /// The model context this shim wraps.
    pub fn models(&self) -> &ModelContext {
        &self.models
    }
}

impl AsRef<ModelContext> for ExperimentContext {
    fn as_ref(&self) -> &ModelContext {
        &self.models
    }
}

/// Per-benchmark results at one configuration (legacy record shape; the
/// Study API's [`ScenarioRecord`] carries the same metrics plus the full
/// scenario coordinates).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Energy saving vs the monolithic always-on cache.
    pub esav: f64,
    /// Lifetime without re-indexing (identity policy), years.
    pub lt0_years: f64,
    /// Lifetime with Probing re-indexing, years.
    pub lt_years: f64,
    /// Per-bank useful idleness (Table I's metric).
    pub useful_idleness: Vec<f64>,
    /// Per-bank sleep fractions (what the aging model consumes).
    pub sleep_fractions: Vec<f64>,
    /// Cache miss rate on the trace.
    pub miss_rate: f64,
}

impl BenchResult {
    /// Average useful idleness over the banks.
    pub fn avg_useful_idleness(&self) -> f64 {
        self.useful_idleness.iter().sum::<f64>() / self.useful_idleness.len() as f64
    }
}

impl From<&ScenarioRecord> for BenchResult {
    fn from(r: &ScenarioRecord) -> Self {
        Self {
            name: r.scenario.workload.clone(),
            esav: r.esav,
            lt0_years: r.lt0_years(),
            lt_years: r.lt_years(),
            useful_idleness: r.useful_idleness.clone(),
            sleep_fractions: r.sleep_fractions.clone(),
            miss_rate: r.miss_rate,
        }
    }
}

/// Runs one benchmark at one configuration: simulate (identity mapping,
/// no mid-trace updates), then evaluate LT0 and LT from the measured
/// sleep fractions.
///
/// # Errors
///
/// Propagates simulator and aging-model errors.
pub fn run_benchmark(
    profile: &WorkloadProfile,
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<BenchResult, CoreError> {
    let report = cfg
        .study(format!("bench:{}", profile.name()))
        .workloads([profile.clone()])
        .policies(["probing"])
        .threads(1)
        .run(ctx)?;
    Ok(BenchResult::from(&report.records()[0]))
}

/// Runs the whole 18-benchmark suite at one configuration (in parallel
/// across scenarios).
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn run_suite(
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<BenchResult>, CoreError> {
    let report = cfg.study("suite").policies(["probing"]).run(ctx)?;
    Ok(report.records().iter().map(BenchResult::from).collect())
}

fn mean<'a>(values: impl Iterator<Item = &'a f64>) -> f64 {
    let v: Vec<f64> = values.copied().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// **Table I**: distribution of useful idleness in a 4-bank 16 kB cache,
/// measured next to the paper's published row.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table1(cfg: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    views::table1(&presets::table1(cfg).run(ctx)?)
}

/// Raw data for Table II: suite results at 8, 16 and 32 kB.
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table2_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u64, Vec<BenchResult>)>, CoreError> {
    views::table2_dataset(&presets::table2(base).run(ctx)?)
}

/// **Table II**: energy savings and lifetime when varying cache size
/// (16 B lines, M = 4).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table2(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    views::table2(&presets::table2(base).run(ctx)?)
}

/// Raw data for Table III: suite results at 16 B and 32 B lines (16 kB).
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table3_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u32, Vec<BenchResult>)>, CoreError> {
    let report = presets::table3(base).run(ctx)?;
    Ok([16u32, 32]
        .iter()
        .map(|&ls| {
            (
                ls,
                report
                    .select(|r| r.scenario.line_bytes == ls)
                    .map(BenchResult::from)
                    .collect(),
            )
        })
        .collect())
}

/// **Table III**: energy savings and lifetime when varying line size
/// (16 kB cache, M = 4).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table3(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    views::table3(&presets::table3(base).run(ctx)?)
}

/// Raw data for Table IV: `(size_kb, banks, avg idleness, avg LT)`.
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table4_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u64, u32, f64, f64)>, CoreError> {
    let report = presets::table4(base).run(ctx)?;
    let mut rows = Vec::new();
    for kb in [8u64, 16, 32] {
        for banks in [2u32, 4, 8] {
            let cell: Vec<&ScenarioRecord> = report
                .select(|r| r.scenario.cache_bytes == kb * 1024 && r.scenario.banks == banks)
                .collect();
            let idle =
                cell.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / cell.len() as f64;
            let lt = cell.iter().map(|r| r.lt_years()).sum::<f64>() / cell.len() as f64;
            rows.push((kb, banks, idle, lt));
        }
    }
    Ok(rows)
}

/// **Table IV**: average idleness and lifetime when varying cache size
/// and number of blocks.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table4(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    views::table4(&presets::table4(base).run(ctx)?)
}

/// The headline quantities of §IV-B1, computed from measured data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimsSummary {
    /// Mean LT0 / 2.93 − 1 at 8 kB (paper: ≈ 9 %).
    pub lt0_gain_8k: f64,
    /// Mean (LT − LT0)/LT0 at 8 kB (paper: ≈ 38 %).
    pub reindex_further_gain_8k: f64,
    /// Mean LT / 2.93 − 1 per size (paper: 48 / 47.1 / 57.6 %).
    pub extension_per_size: [f64; 3],
    /// The largest single LT / 2.93 across suite and sizes with its
    /// benchmark (paper: sha, ≈ 2x).
    pub best_case: (String, f64),
    /// The smallest single LT / 2.93 across suite and sizes (paper: ≥ 22 %
    /// gain for the worst configuration).
    pub worst_case: (String, f64),
}

/// Computes the headline claims from a Table II dataset.
pub fn claims_from(data: &[(u64, Vec<BenchResult>)]) -> ClaimsSummary {
    let base = paper::CELL_LIFETIME_YEARS;
    let eight = &data[0].1;
    let lt0_gain_8k = mean(eight.iter().map(|r| &r.lt0_years)) / base - 1.0;
    let reindex_further_gain_8k = eight
        .iter()
        .map(|r| (r.lt_years - r.lt0_years) / r.lt0_years)
        .sum::<f64>()
        / eight.len() as f64;
    let mut extension = [0.0; 3];
    for (i, (_, results)) in data.iter().enumerate() {
        extension[i] = mean(results.iter().map(|r| &r.lt_years)) / base - 1.0;
    }
    let mut best = (String::new(), 0.0f64);
    let mut worst = (String::new(), f64::INFINITY);
    for (_, results) in data {
        for r in results {
            let f = r.lt_years / base;
            if f > best.1 {
                best = (r.name.clone(), f);
            }
            if f < worst.1 {
                worst = (r.name.clone(), f);
            }
        }
    }
    ClaimsSummary {
        lt0_gain_8k,
        reindex_further_gain_8k,
        extension_per_size: extension,
        best_case: best,
        worst_case: worst,
    }
}

/// Renders the headline-claims comparison (§I and §IV-B1 prose).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn claims(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    views::claims(&presets::claims(base).run(ctx)?)
}

/// §IV-B2: RNG repetition error vs number of updates, for the Scrambling
/// LFSR against an ideal uniform generator. The paper argues the error of
/// a uniform RNG shrinks as `1/√N` and is therefore negligible over a
/// lifetime of updates; a maximal-length LFSR is even better (its counts
/// are exactly balanced every period).
///
/// # Errors
///
/// Propagates LFSR construction errors.
pub fn rng_error(bank_bits: u32, draws: &[u64]) -> Result<Table, CoreError> {
    let m = 1u32 << bank_bits;
    let mut t = Table::new(
        format!("RNG repetition error vs updates (M = {m})"),
        vec![
            "N updates".into(),
            "LFSR err".into(),
            "uniform err".into(),
            "1/sqrt(N)".into(),
        ],
    );
    for &n in draws {
        // LFSR mask stream.
        let mut lfsr = Lfsr::new(bank_bits, 1)?;
        let mut counts = vec![0u64; m as usize];
        for _ in 0..n {
            counts[(lfsr.next_value() as u32 & (m - 1)) as usize] += 1;
        }
        let lfsr_err = rel_error(&counts[1..], n); // 0 never drawn
                                                   // Ideal uniform generator over all M values.
        let mut rng = SplitMix64::new(0x5eed ^ n);
        let mut counts = vec![0u64; m as usize];
        for _ in 0..n {
            counts[rng.next_below(m as u64) as usize] += 1;
        }
        let uni_err = rel_error(&counts, n);
        t.push_row(vec![
            n.to_string(),
            format!("{lfsr_err:.4}"),
            format!("{uni_err:.4}"),
            format!("{:.4}", 1.0 / (n as f64).sqrt()),
        ]);
    }
    t.push_note("uniform error tracks 1/sqrt(N); the LFSR is exactly balanced each period");
    Ok(t)
}

/// Root-mean-square relative deviation of `counts` from a uniform share
/// of `n` draws.
fn rel_error(counts: &[u64], n: u64) -> f64 {
    let ideal = n as f64 / counts.len() as f64;
    if ideal == 0.0 {
        return 0.0;
    }
    let ss: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - ideal;
            d * d
        })
        .sum();
    (ss / counts.len() as f64).sqrt() / ideal
}

/// §IV-B2's conclusion: Probing and Scrambling are "de facto identical".
/// Per-benchmark LT under both policies.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn policy_equivalence(
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Table, CoreError> {
    views::policy_equivalence(&presets::policy_equivalence(cfg).run(ctx)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::suite;

    fn quick_cfg() -> ExperimentConfig {
        // Shorter traces keep debug-mode tests fast; two full macro
        // periods are enough for stable idleness statistics.
        ExperimentConfig::paper_reference().with_trace_cycles(160_000)
    }

    #[test]
    fn reference_benchmark_run_reproduces_sha_shape() {
        let cfg = quick_cfg();
        let ctx = cfg.build_context().unwrap();
        let sha = suite::by_name("sha").unwrap();
        let r = run_benchmark(&sha, &cfg, &ctx).unwrap();
        // sha: banks 1-2 nearly always idle, banks 0,3 busy.
        assert!(r.useful_idleness[1] > 0.9);
        assert!(r.useful_idleness[2] > 0.9);
        assert!(r.useful_idleness[0] < 0.15);
        assert!(r.lt_years > r.lt0_years);
        assert!((r.esav - 0.443).abs() < 0.05, "esav {}", r.esav);
    }

    #[test]
    fn table1_structure() {
        let cfg = quick_cfg();
        let ctx = cfg.build_context().unwrap();
        let t = table1(&cfg, &ctx).unwrap();
        assert_eq!(t.rows().len(), 18);
        assert!(t.to_string().contains("adpcm.dec"));
        assert!(t.to_markdown().contains("| bench |"));
    }

    #[test]
    fn rng_error_decays_with_n() {
        let t = rng_error(2, &[64, 4096]).unwrap();
        let rows = t.rows();
        let err_small: f64 = rows[0][2].parse().unwrap();
        let err_large: f64 = rows[1][2].parse().unwrap();
        assert!(
            err_large < err_small,
            "uniform error must decay: {err_small} -> {err_large}"
        );
        let lfsr_large: f64 = rows[1][1].parse().unwrap();
        assert!(lfsr_large <= err_large, "LFSR is at least as balanced");
    }

    #[test]
    fn claims_math_is_consistent() {
        // Synthetic dataset exercising the aggregation.
        let mk = |name: &str, lt0: f64, lt: f64| BenchResult {
            name: name.into(),
            esav: 0.4,
            lt0_years: lt0,
            lt_years: lt,
            useful_idleness: vec![0.5; 4],
            sleep_fractions: vec![0.5; 4],
            miss_rate: 0.1,
        };
        let data = vec![
            (8u64, vec![mk("a", 3.0, 4.0), mk("b", 3.2, 6.0)]),
            (16u64, vec![mk("a", 3.0, 4.4), mk("b", 3.1, 4.5)]),
            (32u64, vec![mk("a", 3.0, 4.6), mk("b", 3.2, 4.9)]),
        ];
        let s = claims_from(&data);
        assert!((s.lt0_gain_8k - (3.1 / 2.93 - 1.0)).abs() < 1e-9);
        assert_eq!(s.best_case.0, "b");
        assert!((s.best_case.1 - 6.0 / 2.93).abs() < 1e-9);
        assert_eq!(s.worst_case.0, "a");
    }
}
