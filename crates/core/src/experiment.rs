//! Experiment runners: every table of the paper's evaluation section.
//!
//! Each `tableN` function simulates the full benchmark suite at the
//! paper's configurations and renders a [`Table`] with measured values
//! next to the published ones ([`crate::paper`]). The raw data variants
//! (`tableN_data`) feed the test suite and the benchmark harness.

use crate::aging::AgingAnalysis;
use crate::arch::{PartitionedCache, UpdateSchedule};
use crate::error::CoreError;
use crate::lfsr::Lfsr;
use crate::paper;
use crate::policy::PolicyKind;
use crate::report::{factor, pct, years, Table};
use cache_sim::CacheGeometry;
use nbti_model::{CellDesign, LifetimeSolver};
use trace_synth::rng::SplitMix64;
use trace_synth::suite;
use trace_synth::WorkloadProfile;

/// A cache configuration plus simulation horizon for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Number of uniform banks `M`.
    pub banks: u32,
    /// Trace length in cycles.
    pub trace_cycles: u64,
    /// Base seed; benchmark `i` uses `seed + i`.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's reference configuration: 16 kB, 16 B lines, M = 4.
    pub fn paper_reference() -> Self {
        Self {
            cache_bytes: 16 * 1024,
            line_bytes: 16,
            banks: 4,
            trace_cycles: 320_000,
            seed: 1000,
        }
    }

    /// Overrides the cache size (kB).
    #[must_use]
    pub fn with_cache_kb(mut self, kb: u64) -> Self {
        self.cache_bytes = kb * 1024;
        self
    }

    /// Overrides the line size (bytes).
    #[must_use]
    pub fn with_line_bytes(mut self, bytes: u32) -> Self {
        self.line_bytes = bytes;
        self
    }

    /// Overrides the bank count.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = banks;
        self
    }

    /// Overrides the simulated trace length.
    #[must_use]
    pub fn with_trace_cycles(mut self, cycles: u64) -> Self {
        self.trace_cycles = cycles;
        self
    }

    /// The geometry this configuration describes.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation errors.
    pub fn geometry(&self) -> Result<CacheGeometry, CoreError> {
        Ok(CacheGeometry::direct_mapped(
            self.cache_bytes,
            self.line_bytes,
            self.banks,
        )?)
    }

    /// Builds the shared experiment context (calibrated aging model).
    ///
    /// # Errors
    ///
    /// Propagates NBTI-model calibration errors.
    pub fn build_context(&self) -> Result<ExperimentContext, CoreError> {
        ExperimentContext::new()
    }
}

/// Heavy shared state: the calibrated SNM/lifetime solver. Build once and
/// reuse across tables.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The rotation-aware aging analysis, calibrated to the paper's
    /// 2.93-year cell.
    pub aging: AgingAnalysis,
}

impl ExperimentContext {
    /// Calibrates the aging model to the paper's anchor.
    ///
    /// # Errors
    ///
    /// Propagates NBTI-model calibration errors.
    pub fn new() -> Result<Self, CoreError> {
        let solver =
            LifetimeSolver::calibrated(CellDesign::default_45nm(), paper::CELL_LIFETIME_YEARS)?;
        Ok(Self {
            aging: AgingAnalysis::new(solver),
        })
    }
}

/// Per-benchmark results at one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Energy saving vs the monolithic always-on cache.
    pub esav: f64,
    /// Lifetime without re-indexing (identity policy), years.
    pub lt0_years: f64,
    /// Lifetime with Probing re-indexing, years.
    pub lt_years: f64,
    /// Per-bank useful idleness (Table I's metric).
    pub useful_idleness: Vec<f64>,
    /// Per-bank sleep fractions (what the aging model consumes).
    pub sleep_fractions: Vec<f64>,
    /// Cache miss rate on the trace.
    pub miss_rate: f64,
}

impl BenchResult {
    /// Average useful idleness over the banks.
    pub fn avg_useful_idleness(&self) -> f64 {
        self.useful_idleness.iter().sum::<f64>() / self.useful_idleness.len() as f64
    }
}

/// Runs one benchmark at one configuration: simulate (identity mapping,
/// no mid-trace updates), then evaluate LT0 and LT from the measured
/// sleep fractions.
///
/// # Errors
///
/// Propagates simulator and aging-model errors.
pub fn run_benchmark(
    profile: &WorkloadProfile,
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<BenchResult, CoreError> {
    let geom = cfg.geometry()?;
    let arch = PartitionedCache::new(geom, PolicyKind::Identity)?;
    let out = arch.simulate(
        profile.trace(cfg.seed).take(cfg.trace_cycles as usize),
        UpdateSchedule::Never,
    )?;
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    let sleep = out.sleep_fraction_all();
    let lt0 = ctx
        .aging
        .cache_lifetime(&sleep, profile.p0(), PolicyKind::Identity)?;
    let lt = ctx
        .aging
        .cache_lifetime(&sleep, profile.p0(), PolicyKind::Probing)?;
    Ok(BenchResult {
        name: profile.name().to_string(),
        esav: out.energy_saving(),
        lt0_years: lt0,
        lt_years: lt,
        useful_idleness: out.useful_idleness_all(),
        sleep_fractions: sleep,
        miss_rate: out.miss_rate(),
    })
}

/// Runs the whole 18-benchmark suite at one configuration.
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn run_suite(
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<BenchResult>, CoreError> {
    suite::mediabench()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut c = *cfg;
            c.seed = cfg.seed + i as u64;
            run_benchmark(p, &c, ctx)
        })
        .collect()
}

fn mean<'a>(values: impl Iterator<Item = &'a f64>) -> f64 {
    let v: Vec<f64> = values.copied().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// **Table I**: distribution of useful idleness in a 4-bank 16 kB cache,
/// measured next to the paper's published row.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table1(cfg: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    let results = run_suite(cfg, ctx)?;
    let mut t = Table::new(
        "Table I - distribution of idleness in a 4-bank cache (measured | paper)",
        vec![
            "bench".into(),
            "I0".into(),
            "I1".into(),
            "I2".into(),
            "I3".into(),
            "Average".into(),
            "paper avg".into(),
        ],
    );
    for (i, r) in results.iter().enumerate() {
        let (_, paper_row) = suite::table1_reference()[i];
        let paper_avg = paper_row.iter().sum::<f64>() / 4.0;
        t.push_row(vec![
            r.name.clone(),
            pct(r.useful_idleness[0]),
            pct(r.useful_idleness[1]),
            pct(r.useful_idleness[2]),
            pct(r.useful_idleness[3]),
            pct(r.avg_useful_idleness()),
            pct(paper_avg),
        ]);
    }
    let overall_esav = mean(results.iter().map(|r| &r.esav));
    let avg_idle =
        results.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / results.len() as f64;
    t.push_note(format!(
        "suite average idleness {} % (paper: 41.71 %); Esav at this configuration {} %",
        pct(avg_idle),
        pct(overall_esav)
    ));
    Ok(t)
}

/// Raw data for Table II: suite results at 8, 16 and 32 kB.
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table2_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u64, Vec<BenchResult>)>, CoreError> {
    [8u64, 16, 32]
        .iter()
        .map(|&kb| Ok((kb, run_suite(&base.with_cache_kb(kb), ctx)?)))
        .collect()
}

/// **Table II**: energy savings and lifetime when varying cache size
/// (16 B lines, M = 4).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table2(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    let data = table2_data(base, ctx)?;
    let mut headers = vec!["bench".into()];
    for kb in [8, 16, 32] {
        headers.push(format!("{kb}k Esav%"));
        headers.push(format!("{kb}k LT0"));
        headers.push(format!("{kb}k LT"));
    }
    let mut t = Table::new(
        "Table II - energy savings and lifetime vs cache size (measured)",
        headers,
    );
    for i in 0..18 {
        let mut row = vec![data[0].1[i].name.clone()];
        for (_, results) in &data {
            let r = &results[i];
            row.push(pct(r.esav));
            row.push(years(r.lt0_years));
            row.push(years(r.lt_years));
        }
        t.push_row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    let mut paper_row = vec!["(paper avg)".to_string()];
    for (s, (_, results)) in data.iter().enumerate() {
        avg_row.push(pct(mean(results.iter().map(|r| &r.esav))));
        avg_row.push(years(mean(results.iter().map(|r| &r.lt0_years))));
        avg_row.push(years(mean(results.iter().map(|r| &r.lt_years))));
        paper_row.push(pct(paper::TABLE2_AVG.0[s]));
        paper_row.push(years(paper::TABLE2_AVG.1[s]));
        paper_row.push(years(paper::TABLE2_AVG.2[s]));
    }
    t.push_row(avg_row);
    t.push_row(paper_row);
    t.push_note("paper averages: Esav 32.2/44.3/55.5 %, LT0 3.22/3.19/3.20 y, LT 4.34/4.31/4.62 y");
    Ok(t)
}

/// Raw data for Table III: suite results at 16 B and 32 B lines (16 kB).
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table3_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u32, Vec<BenchResult>)>, CoreError> {
    [16u32, 32]
        .iter()
        .map(|&ls| {
            Ok((
                ls,
                run_suite(&base.with_cache_kb(16).with_line_bytes(ls), ctx)?,
            ))
        })
        .collect()
}

/// **Table III**: energy savings and lifetime when varying line size
/// (16 kB cache, M = 4).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table3(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    let data = table3_data(base, ctx)?;
    let mut t = Table::new(
        "Table III - energy savings and lifetime vs line size (measured)",
        vec![
            "bench".into(),
            "LS16 Esav%".into(),
            "LS16 LT".into(),
            "LS32 Esav%".into(),
            "LS32 LT".into(),
        ],
    );
    for i in 0..18 {
        t.push_row(vec![
            data[0].1[i].name.clone(),
            pct(data[0].1[i].esav),
            years(data[0].1[i].lt_years),
            pct(data[1].1[i].esav),
            years(data[1].1[i].lt_years),
        ]);
    }
    t.push_row(vec![
        "Average".into(),
        pct(mean(data[0].1.iter().map(|r| &r.esav))),
        years(mean(data[0].1.iter().map(|r| &r.lt_years))),
        pct(mean(data[1].1.iter().map(|r| &r.esav))),
        years(mean(data[1].1.iter().map(|r| &r.lt_years))),
    ]);
    t.push_note(format!(
        "paper averages: Esav {} / {} %, LT {} / {} y",
        pct(paper::TABLE3_AVG[0]),
        pct(paper::TABLE3_AVG[2]),
        years(paper::TABLE3_AVG[1]),
        years(paper::TABLE3_AVG[3]),
    ));
    Ok(t)
}

/// Raw data for Table IV: `(size_kb, banks, avg idleness, avg LT)`.
///
/// # Errors
///
/// Propagates per-benchmark errors.
pub fn table4_data(
    base: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Vec<(u64, u32, f64, f64)>, CoreError> {
    let mut rows = Vec::new();
    for kb in [8u64, 16, 32] {
        for banks in [2u32, 4, 8] {
            let results = run_suite(&base.with_cache_kb(kb).with_banks(banks), ctx)?;
            let idle = results
                .iter()
                .map(|r| r.avg_useful_idleness())
                .sum::<f64>()
                / results.len() as f64;
            let lt = mean(results.iter().map(|r| &r.lt_years));
            rows.push((kb, banks, idle, lt));
        }
    }
    Ok(rows)
}

/// **Table IV**: average idleness and lifetime when varying cache size
/// and number of blocks.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table4(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    let data = table4_data(base, ctx)?;
    let mut t = Table::new(
        "Table IV - average idleness and lifetime vs cache size and banks (measured | paper)",
        vec![
            "size".into(),
            "M=2 idl%".into(),
            "M=2 LT".into(),
            "M=4 idl%".into(),
            "M=4 LT".into(),
            "M=8 idl%".into(),
            "M=8 LT".into(),
        ],
    );
    for (row_idx, kb) in [8u64, 16, 32].iter().enumerate() {
        let cells: Vec<&(u64, u32, f64, f64)> =
            data.iter().filter(|(k, _, _, _)| k == kb).collect();
        let mut row = vec![format!("{kb}kB")];
        for c in &cells {
            row.push(pct(c.2));
            row.push(years(c.3));
        }
        t.push_row(row);
        let p = paper::TABLE4[row_idx];
        t.push_row(vec![
            format!("(paper {}kB)", p.size_kb),
            pct(p.per_banks[0].0),
            years(p.per_banks[0].1),
            pct(p.per_banks[1].0),
            years(p.per_banks[1].1),
            pct(p.per_banks[2].0),
            years(p.per_banks[2].1),
        ]);
    }
    Ok(t)
}

/// The headline quantities of §IV-B1, computed from measured data.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimsSummary {
    /// Mean LT0 / 2.93 − 1 at 8 kB (paper: ≈ 9 %).
    pub lt0_gain_8k: f64,
    /// Mean (LT − LT0)/LT0 at 8 kB (paper: ≈ 38 %).
    pub reindex_further_gain_8k: f64,
    /// Mean LT / 2.93 − 1 per size (paper: 48 / 47.1 / 57.6 %).
    pub extension_per_size: [f64; 3],
    /// The largest single LT / 2.93 across suite and sizes with its
    /// benchmark (paper: sha, ≈ 2x).
    pub best_case: (String, f64),
    /// The smallest single LT / 2.93 across suite and sizes (paper: ≥ 22 %
    /// gain for the worst configuration).
    pub worst_case: (String, f64),
}

/// Computes the headline claims from a Table II dataset.
pub fn claims_from(data: &[(u64, Vec<BenchResult>)]) -> ClaimsSummary {
    let base = paper::CELL_LIFETIME_YEARS;
    let eight = &data[0].1;
    let lt0_gain_8k = mean(eight.iter().map(|r| &r.lt0_years)) / base - 1.0;
    let reindex_further_gain_8k = eight
        .iter()
        .map(|r| (r.lt_years - r.lt0_years) / r.lt0_years)
        .sum::<f64>()
        / eight.len() as f64;
    let mut extension = [0.0; 3];
    for (i, (_, results)) in data.iter().enumerate() {
        extension[i] = mean(results.iter().map(|r| &r.lt_years)) / base - 1.0;
    }
    let mut best = (String::new(), 0.0f64);
    let mut worst = (String::new(), f64::INFINITY);
    for (_, results) in data {
        for r in results {
            let f = r.lt_years / base;
            if f > best.1 {
                best = (r.name.clone(), f);
            }
            if f < worst.1 {
                worst = (r.name.clone(), f);
            }
        }
    }
    ClaimsSummary {
        lt0_gain_8k,
        reindex_further_gain_8k,
        extension_per_size: extension,
        best_case: best,
        worst_case: worst,
    }
}

/// Renders the headline-claims comparison (§I and §IV-B1 prose).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn claims(base: &ExperimentConfig, ctx: &ExperimentContext) -> Result<Table, CoreError> {
    let data = table2_data(base, ctx)?;
    let s = claims_from(&data);
    let mut t = Table::new(
        "Headline claims (measured vs paper)",
        vec!["claim".into(), "measured".into(), "paper".into()],
    );
    t.push_row(vec![
        "LT0 gain from power mgmt alone (8kB)".into(),
        format!("{} %", pct(s.lt0_gain_8k)),
        format!("{} %", pct(paper::claims::LT0_IMPROVEMENT)),
    ]);
    t.push_row(vec![
        "further gain from re-indexing (8kB)".into(),
        format!("{} %", pct(s.reindex_further_gain_8k)),
        format!("{} %", pct(paper::claims::REINDEX_FURTHER_IMPROVEMENT)),
    ]);
    for (i, kb) in [8, 16, 32].iter().enumerate() {
        t.push_row(vec![
            format!("lifetime extension at {kb} kB"),
            format!("{} %", pct(s.extension_per_size[i])),
            format!("{} %", pct(paper::claims::EXTENSION_PER_SIZE[i])),
        ]);
    }
    t.push_row(vec![
        format!("best case ({})", s.best_case.0),
        factor(s.best_case.1),
        format!("{} (sha)", factor(paper::claims::BEST_CASE_FACTOR)),
    ]);
    t.push_row(vec![
        format!("worst case ({})", s.worst_case.0),
        factor(s.worst_case.1),
        format!(">= {}", factor(1.0 + paper::claims::WORST_CASE_GAIN)),
    ]);
    Ok(t)
}

/// §IV-B2: RNG repetition error vs number of updates, for the Scrambling
/// LFSR against an ideal uniform generator. The paper argues the error of
/// a uniform RNG shrinks as `1/√N` and is therefore negligible over a
/// lifetime of updates; a maximal-length LFSR is even better (its counts
/// are exactly balanced every period).
pub fn rng_error(bank_bits: u32, draws: &[u64]) -> Result<Table, CoreError> {
    let m = 1u32 << bank_bits;
    let mut t = Table::new(
        format!("RNG repetition error vs updates (M = {m})"),
        vec![
            "N updates".into(),
            "LFSR err".into(),
            "uniform err".into(),
            "1/sqrt(N)".into(),
        ],
    );
    for &n in draws {
        // LFSR mask stream.
        let mut lfsr = Lfsr::new(bank_bits, 1)?;
        let mut counts = vec![0u64; m as usize];
        for _ in 0..n {
            counts[(lfsr.next_value() as u32 & (m - 1)) as usize] += 1;
        }
        let lfsr_err = rel_error(&counts[1..], n); // 0 never drawn
        // Ideal uniform generator over all M values.
        let mut rng = SplitMix64::new(0x5eed ^ n);
        let mut counts = vec![0u64; m as usize];
        for _ in 0..n {
            counts[rng.next_below(m as u64) as usize] += 1;
        }
        let uni_err = rel_error(&counts, n);
        t.push_row(vec![
            n.to_string(),
            format!("{lfsr_err:.4}"),
            format!("{uni_err:.4}"),
            format!("{:.4}", 1.0 / (n as f64).sqrt()),
        ]);
    }
    t.push_note("uniform error tracks 1/sqrt(N); the LFSR is exactly balanced each period");
    Ok(t)
}

/// Root-mean-square relative deviation of `counts` from a uniform share
/// of `n` draws.
fn rel_error(counts: &[u64], n: u64) -> f64 {
    let ideal = n as f64 / counts.len() as f64;
    if ideal == 0.0 {
        return 0.0;
    }
    let ss: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - ideal;
            d * d
        })
        .sum();
    (ss / counts.len() as f64).sqrt() / ideal
}

/// §IV-B2's conclusion: Probing and Scrambling are "de facto identical".
/// Per-benchmark LT under both policies.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn policy_equivalence(
    cfg: &ExperimentConfig,
    ctx: &ExperimentContext,
) -> Result<Table, CoreError> {
    let mut t = Table::new(
        "Probing vs Scrambling lifetimes",
        vec![
            "bench".into(),
            "LT probing".into(),
            "LT scrambling".into(),
            "delta %".into(),
        ],
    );
    for (i, p) in suite::mediabench().iter().enumerate() {
        let mut c = *cfg;
        c.seed = cfg.seed + i as u64;
        let geom = c.geometry()?;
        let arch = PartitionedCache::new(geom, PolicyKind::Identity)?;
        let out = arch.simulate(
            p.trace(c.seed).take(c.trace_cycles as usize),
            UpdateSchedule::Never,
        )?;
        let sleep = out.sleep_fraction_all();
        let probing = ctx
            .aging
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Probing)?;
        let scrambling = ctx
            .aging
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Scrambling)?;
        t.push_row(vec![
            p.name().to_string(),
            years(probing),
            years(scrambling),
            format!("{:+.2}", 100.0 * (scrambling - probing) / probing),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        // Shorter traces keep debug-mode tests fast; two full macro
        // periods are enough for stable idleness statistics.
        ExperimentConfig::paper_reference().with_trace_cycles(160_000)
    }

    #[test]
    fn reference_benchmark_run_reproduces_sha_shape() {
        let cfg = quick_cfg();
        let ctx = cfg.build_context().unwrap();
        let sha = suite::by_name("sha").unwrap();
        let r = run_benchmark(&sha, &cfg, &ctx).unwrap();
        // sha: banks 1-2 nearly always idle, banks 0,3 busy.
        assert!(r.useful_idleness[1] > 0.9);
        assert!(r.useful_idleness[2] > 0.9);
        assert!(r.useful_idleness[0] < 0.15);
        assert!(r.lt_years > r.lt0_years);
        assert!((r.esav - 0.443).abs() < 0.05, "esav {}", r.esav);
    }

    #[test]
    fn table1_structure() {
        let cfg = quick_cfg();
        let ctx = cfg.build_context().unwrap();
        let t = table1(&cfg, &ctx).unwrap();
        assert_eq!(t.rows().len(), 18);
        assert!(t.to_string().contains("adpcm.dec"));
        assert!(t.to_markdown().contains("| bench |"));
    }

    #[test]
    fn rng_error_decays_with_n() {
        let t = rng_error(2, &[64, 4096]).unwrap();
        let rows = t.rows();
        let err_small: f64 = rows[0][2].parse().unwrap();
        let err_large: f64 = rows[1][2].parse().unwrap();
        assert!(
            err_large < err_small,
            "uniform error must decay: {err_small} -> {err_large}"
        );
        let lfsr_large: f64 = rows[1][1].parse().unwrap();
        assert!(lfsr_large <= err_large, "LFSR is at least as balanced");
    }

    #[test]
    fn claims_math_is_consistent() {
        // Synthetic dataset exercising the aggregation.
        let mk = |name: &str, lt0: f64, lt: f64| BenchResult {
            name: name.into(),
            esav: 0.4,
            lt0_years: lt0,
            lt_years: lt,
            useful_idleness: vec![0.5; 4],
            sleep_fractions: vec![0.5; 4],
            miss_rate: 0.1,
        };
        let data = vec![
            (8u64, vec![mk("a", 3.0, 4.0), mk("b", 3.2, 6.0)]),
            (16u64, vec![mk("a", 3.0, 4.4), mk("b", 3.1, 4.5)]),
            (32u64, vec![mk("a", 3.0, 4.6), mk("b", 3.2, 4.9)]),
        ];
        let s = claims_from(&data);
        assert!((s.lt0_gain_8k - (3.1 / 2.93 - 1.0)).abs() < 1e-9);
        assert_eq!(s.best_case.0, "b");
        assert!((s.best_case.1 - 6.0 / 2.93).abs() < 1e-9);
        assert_eq!(s.worst_case.0, "a");
    }
}
