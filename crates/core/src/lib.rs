//! Partitioned cache architectures for reduced NBTI-induced aging.
//!
//! This crate is the primary contribution of the DATE 2011 paper by
//! Calimera, Loghi, Macii and Poncino: a direct-mapped cache partitioned
//! into `M = 2^p` **uniform banks** (standard memory-compiler blocks),
//! power-managed per bank, whose bank-select index bits pass through a
//! **time-varying indexing function** `f()` so that idleness — and with it
//! the NBTI recovery opportunity — is spread uniformly over the banks:
//!
//! * [`onehot`] — the 1-hot encoder of decoder `D` (paper Fig. 1b);
//! * [`lfsr`] — Galois LFSRs backing the Scrambling policy;
//! * [`policy`] — the indexing functions: `Identity` (a conventional
//!   power-managed partitioned cache), `Probing` (modular increment,
//!   Fig. 3a) and `Scrambling` (LFSR XOR, Fig. 3b);
//! * [`decoder`] — decoder `D` with the dynamic-indexing stage (Fig. 2);
//! * [`control`] / [`selector`] — Block Control counter sizing and the
//!   per-bank supply-rail selector (Fig. 1);
//! * [`arch`] — [`arch::PartitionedCache`], tying the
//!   pieces to the trace-driven simulator;
//! * [`aging`] — the lifetime pipeline: per-bank sleep fractions → policy
//!   rotation over update periods → SNM-based cache lifetime;
//! * [`experiment`] / [`report`] — runners that regenerate every table of
//!   the paper's evaluation, with the published values embedded for
//!   side-by-side comparison ([`paper`]);
//! * [`flip`] / [`graceful`] — ablations: word-level cell flipping
//!   (ref. \[15\]) and the "progressively disable aged banks" alternative
//!   the paper argues against (§III-A2).
//!
//! # Quick start
//!
//! ```no_run
//! use aging_cache::experiment::{ExperimentConfig, run_benchmark};
//! use aging_cache::policy::PolicyKind;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let cfg = ExperimentConfig::paper_reference(); // 16 kB, 16 B lines, M=4
//! let ctx = cfg.build_context()?;
//! let sha = trace_synth::suite::by_name("sha").expect("in suite");
//! let r = run_benchmark(&sha, &cfg, &ctx)?;
//! println!(
//!     "sha: Esav {:.1}%  LT0 {:.2}y  LT {:.2}y",
//!     100.0 * r.esav,
//!     r.lt0_years,
//!     r.lt_years
//! );
//! assert!(r.lt_years > r.lt0_years);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod arch;
pub mod control;
pub mod decoder;
pub mod error;
pub mod experiment;
pub mod fine_grain;
pub mod flip;
pub mod graceful;
pub mod lfsr;
pub mod onehot;
pub mod paper;
pub mod policy;
pub mod report;
pub mod selector;

pub use aging::AgingAnalysis;
pub use arch::PartitionedCache;
pub use decoder::Decoder;
pub use error::CoreError;
pub use lfsr::Lfsr;
pub use onehot::OneHotEncoder;
pub use policy::{PolicyKind, Probing, Scrambling};
pub use selector::{BlockSelector, Rail};
