//! Partitioned cache architectures for reduced NBTI-induced aging.
//!
//! This crate is the primary contribution of the DATE 2011 paper by
//! Calimera, Loghi, Macii and Poncino: a direct-mapped cache partitioned
//! into `M = 2^p` **uniform banks** (standard memory-compiler blocks),
//! power-managed per bank, whose bank-select index bits pass through a
//! **time-varying indexing function** `f()` so that idleness — and with it
//! the NBTI recovery opportunity — is spread uniformly over the banks:
//!
//! * [`onehot`] — the 1-hot encoder of decoder `D` (paper Fig. 1b);
//! * [`lfsr`] — Galois LFSRs backing the Scrambling policy;
//! * [`policy`] — the indexing functions: `Identity` (a conventional
//!   power-managed partitioned cache), `Probing` (modular increment,
//!   Fig. 3a) and `Scrambling` (LFSR XOR, Fig. 3b);
//! * [`decoder`] — decoder `D` with the dynamic-indexing stage (Fig. 2);
//! * [`control`] / [`selector`] — Block Control counter sizing and the
//!   per-bank supply-rail selector (Fig. 1);
//! * [`arch`] — [`arch::PartitionedCache`], tying the
//!   pieces to the trace-driven simulator;
//! * [`aging`] — the lifetime pipeline: per-bank sleep fractions → policy
//!   rotation over update periods → SNM-based cache lifetime;
//! * [`registry`] — the open, string-keyed [`registry::PolicyRegistry`]:
//!   five built-in policies (`identity`, `probing`, `scrambling`,
//!   `gray`, `rotate-xor`) plus user-registered ones;
//! * [`workload`] — the open workload axis: the
//!   [`workload::WorkloadRegistry`] resolves suite names and
//!   file-backed trace keys (`csv:path`, `din:path`, `lackey:path`) to
//!   streaming access sources with content-hash provenance;
//! * [`model`] — the open device/aging-model axis: the [`AgingModel`]
//!   trait maps measured sleep fractions to named metrics, the
//!   [`model::ModelRegistry`] resolves `nbti-45nm`, parameterized
//!   `nbti:temp=…,vlow=…,sleep=…,fail=…` keys, `variation:<sigma>`
//!   process-variation wrappers and the `drv` retention-margin model,
//!   and the [`model::ModelContext`] memoizes calibration once per
//!   distinct model;
//! * [`study`] — the Study API: declarative [`study::StudySpec`] grids
//!   expanded into [`study::ScenarioGrid`]s, run across threads into
//!   serializable [`study::StudyReport`]s;
//! * [`exec`] / [`session`] / [`rescache`] — the open execution layer:
//!   pluggable [`Executor`] backends and streaming [`ExecObserver`]
//!   progress, driven through the [`session::StudySession`] front door
//!   that owns a cross-run simulation memo and a content-addressed
//!   [`rescache::ResultCache`] (in-memory or on-disk JSONL), making
//!   repeated and interrupted studies incremental and resumable;
//! * [`analysis`] / [`render`] — the open analysis layer over the
//!   output side: typed [`analysis::Query`] filter/group-by/reduce
//!   over any scenario axis and metric, baseline-relative derived
//!   metrics via [`analysis::Query::gain_vs`] joins, cell-by-cell
//!   [`analysis::ReportDiff`] between reports (or a report and a
//!   result-cache journal), and the [`render::Format`] renderer
//!   family (text / Markdown / CSV / canonical JSON);
//! * [`search`] — the search layer over the input side: declarative
//!   [`search::ScenarioSpace`] compositions (grid / filter / union /
//!   stepped and log-spaced ranges) searched by adaptive drivers
//!   (exhaustive, monotone-axis bisection, coarse-to-fine
//!   refinement) under a [`search::Objective`] with feasibility
//!   [`search::Constraint`]s, every probe journaled through the
//!   session so `study optimize` re-runs replay warm with zero
//!   simulations;
//! * [`presets`] / [`views`] / [`experiment`] / [`report`] — the
//!   paper's tables as ~10-line presets over the grid runner, rendered
//!   by pure views with the published values embedded for side-by-side
//!   comparison ([`paper`]);
//! * [`json`] — the dependency-free JSON codec behind report
//!   serialization;
//! * [`flip`] / [`graceful`] — ablations: word-level cell flipping
//!   (ref. \[15\]) and the "progressively disable aged banks" alternative
//!   the paper argues against (§III-A2).
//!
//! # Quick start
//!
//! Declare a study over any slice of the grid — axes accept one or many
//! values, scenarios run in parallel, and the report serializes:
//!
//! ```no_run
//! use aging_cache::model::ModelContext;
//! use aging_cache::study::StudySpec;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let ctx = ModelContext::new(); // models calibrate lazily, once each
//! let report = StudySpec::new("my sweep")
//!     .cache_kb([8, 16])
//!     .banks([2, 4])
//!     .policies(["probing", "scrambling", "gray"])
//!     .workload_names(["sha", "CRC32", "dijkstra"])?
//!     .models(["nbti-45nm", "nbti:temp=105", "variation:30"])
//!     .run(&ctx)?;
//! for r in report.records() {
//!     println!(
//!         "{:>10} {:>10} {:>14} {:2} banks: Esav {:5.1}%  LT {:.2}y",
//!         r.scenario.workload,
//!         r.scenario.policy,
//!         r.scenario.model,
//!         r.scenario.banks,
//!         100.0 * r.esav,
//!         r.lt_years()
//!     );
//! }
//! std::fs::write("report.json", report.to_json()).expect("write");
//! # Ok(())
//! # }
//! ```
//!
//! The paper's tables are presets over the same engine:
//!
//! ```no_run
//! use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
//! use aging_cache::{presets, views};
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let cfg = ExperimentConfig::paper_reference(); // 16 kB, 16 B, M=4
//! let ctx = ExperimentContext::new()?;
//! let report = presets::table2(&cfg).run(&ctx)?;
//! println!("{}", views::table2(&report)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aging;
pub mod analysis;
pub mod arch;
pub mod check;
pub mod control;
pub mod decoder;
pub mod distrib;
pub mod error;
pub mod exec;
pub mod experiment;
pub mod fine_grain;
pub mod flip;
pub mod graceful;
pub mod json;
pub mod lfsr;
pub mod model;
pub mod onehot;
pub mod paper;
pub mod policy;
pub mod presets;
pub mod registry;
pub mod render;
pub mod report;
pub mod rescache;
pub mod search;
pub mod selector;
pub mod serve;
pub mod session;
pub mod study;
pub mod views;
pub mod workload;

pub use aging::AgingAnalysis;
pub use analysis::{Axis, AxisValue, Query, Reduce, ReportDiff};
pub use arch::PartitionedCache;
pub use check::{CheckFinding, CheckLevel, CheckReport};
pub use decoder::Decoder;
pub use error::CoreError;
pub use exec::{
    ExecBackend, ExecObserver, ExecOptions, Executor, RecordOrigin, SequentialExecutor,
    ThreadedExecutor,
};
pub use lfsr::Lfsr;
pub use model::{
    AgingModel, CalibratedModel, Metrics, ModelContext, ModelEval, ModelKey, ModelParams,
    ModelRegistry,
};
pub use onehot::OneHotEncoder;
pub use policy::{GrayRotation, PolicyKind, Probing, RotateXor, Scrambling};
pub use registry::{IndexingPolicy, PolicyRegistry};
pub use render::Format;
pub use rescache::{
    CachedMeasurement, Fingerprint, JsonlCache, MemoryCache, ResultCache, ENGINE_VERSION,
};
pub use search::{
    Constraint, Direction, Driver, Objective, ProbeBatch, ProbeOutcome, ScenarioSpace, Search,
    SearchReport,
};
pub use selector::{BlockSelector, Rail};
pub use serve::{ServeOptions, ServeStats, StudyServer};
pub use session::{SessionStats, StudySession};
pub use study::{Scenario, ScenarioGrid, ScenarioRecord, StudyReport, StudySpec};
pub use workload::{
    FileWorkload, ProfileWorkload, SyntheticWorkload, Workload, WorkloadRegistry,
    WorkloadSourceInfo,
};
