//! Decoder `D` with the dynamic-indexing stage (paper Figs. 1b and 2).
//!
//! The decoder splits the `n`-bit cache index into `n − p` LSBs (routed
//! unchanged to every bank) and `p` MSBs, passes the MSBs through the
//! time-varying function `f()`, and one-hot encodes the result into the
//! per-bank activation signals consumed by Block Control and the Block
//! Selector.

use crate::error::CoreError;
use crate::onehot::OneHotEncoder;
use cache_sim::{BankMapping, CacheGeometry};

/// The result of routing one address through the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoutedAccess {
    /// The logical bank (the raw `p` MSBs of the index).
    pub logical_bank: u32,
    /// The physical bank after `f()`.
    pub physical_bank: u32,
    /// One-hot activation word (bit `physical_bank` set).
    pub activation: u32,
    /// The `n − p` LSBs, identical for every bank.
    pub slot: u64,
    /// The physical set index (`physical_bank · sets_per_bank + slot`).
    pub physical_set: u64,
}

/// Decoder `D`: address split + dynamic indexing + one-hot activation.
///
/// # Examples
///
/// ```
/// use aging_cache::{Decoder, PolicyRegistry};
/// use cache_sim::CacheGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4)?;
/// let mut dec = Decoder::new(geom, PolicyRegistry::global().build("probing", 4, 0)?)?;
/// let r = dec.route(0x1230)?;
/// assert_eq!(r.logical_bank, r.physical_bank, "identity at time zero");
/// dec.update();
/// let r2 = dec.route(0x1230)?;
/// assert_eq!(r2.physical_bank, (r.physical_bank + 1) % 4);
/// # Ok(())
/// # }
/// ```
pub struct Decoder {
    geometry: CacheGeometry,
    policy: Box<dyn BankMapping>,
    onehot: OneHotEncoder,
    updates: u64,
}

impl std::fmt::Debug for Decoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Decoder")
            .field("geometry", &self.geometry)
            .field("policy", &self.policy.name())
            .field("updates", &self.updates)
            .finish()
    }
}

impl Decoder {
    /// Builds the decoder for a geometry and indexing policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the geometry has fewer
    /// than 2 banks (no decoder needed for a monolithic cache).
    pub fn new(geometry: CacheGeometry, policy: Box<dyn BankMapping>) -> Result<Self, CoreError> {
        let onehot = OneHotEncoder::new(geometry.banks())?;
        Ok(Self {
            geometry,
            policy,
            onehot,
            updates: 0,
        })
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of `update` pulses applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Routes a byte address through split → `f()` → one-hot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the policy emits a bank
    /// outside the geometry (a buggy custom policy).
    pub fn route(&self, addr: u64) -> Result<RoutedAccess, CoreError> {
        let set = self.geometry.set_of(addr);
        let logical_bank = self.geometry.bank_of_set(set);
        let slot = self.geometry.slot_in_bank(set);
        let physical_bank = self.policy.map_bank(logical_bank, self.geometry.banks());
        let activation = self.onehot.encode(physical_bank)?;
        Ok(RoutedAccess {
            logical_bank,
            physical_bank,
            activation,
            slot,
            physical_set: self.geometry.set_from_bank_slot(physical_bank, slot),
        })
    }

    /// Applies the `update` signal to `f()`.
    pub fn update(&mut self) {
        self.policy.update();
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn decoder(kind: PolicyKind) -> Decoder {
        let geom = CacheGeometry::direct_mapped(256 * 16, 16, 4).unwrap();
        let mapping = crate::registry::PolicyRegistry::global()
            .build(kind.key(), 4, 1)
            .unwrap();
        Decoder::new(geom, mapping).unwrap()
    }

    #[test]
    fn slot_bits_pass_through_unchanged() {
        let mut dec = decoder(PolicyKind::Probing);
        let addr = 70 * 16; // paper Example 1: line 70
        let before = dec.route(addr).unwrap();
        dec.update();
        let after = dec.route(addr).unwrap();
        assert_eq!(before.slot, after.slot, "the n-p LSBs never change");
        assert_ne!(before.physical_bank, after.physical_bank);
    }

    #[test]
    fn paper_example_1_full_walk() {
        // Address 70 (line index), M = 4, 64 lines/bank: bank walk
        // 1 -> 2 -> 3 -> 0 on successive updates, always slot 6.
        let mut dec = decoder(PolicyKind::Probing);
        let addr = 70 * 16;
        let mut banks = Vec::new();
        for _ in 0..4 {
            let r = dec.route(addr).unwrap();
            assert_eq!(r.slot, 6);
            banks.push(r.physical_bank);
            dec.update();
        }
        assert_eq!(banks, vec![1, 2, 3, 0]);
    }

    #[test]
    fn activation_is_one_hot_of_physical_bank() {
        let dec = decoder(PolicyKind::Identity);
        for line in 0..256u64 {
            let r = dec.route(line * 16).unwrap();
            assert_eq!(r.activation, 1 << r.physical_bank);
            assert_eq!(r.activation.count_ones(), 1);
        }
    }

    #[test]
    fn physical_set_recombines_bank_and_slot() {
        let dec = decoder(PolicyKind::Scrambling);
        let geom = *dec.geometry();
        for line in (0..256u64).step_by(7) {
            let r = dec.route(line * 16).unwrap();
            assert_eq!(
                r.physical_set,
                geom.set_from_bank_slot(r.physical_bank, r.slot)
            );
        }
    }

    #[test]
    fn scrambling_decoder_stays_bijective_over_updates() {
        let mut dec = decoder(PolicyKind::Scrambling);
        for _ in 0..10 {
            let mut seen = [false; 4];
            for l in 0..4u64 {
                let r = dec.route(l * 64 * 16).unwrap(); // one address per bank
                assert!(!seen[r.physical_bank as usize], "collision");
                seen[r.physical_bank as usize] = true;
            }
            dec.update();
        }
    }

    #[test]
    fn update_counter_increments() {
        let mut dec = decoder(PolicyKind::Probing);
        assert_eq!(dec.updates(), 0);
        dec.update();
        dec.update();
        assert_eq!(dec.updates(), 2);
    }
}
