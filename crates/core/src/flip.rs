//! Cell-flipping ablation (ref. \[15\] of the paper: Kunitake et al.,
//! "Short Term Cell-Flipping", ISQED 2010).
//!
//! Periodically inverting the stored word balances the probability of
//! storing a '0' toward 0.5, which equalizes the stress duty of the two
//! cell pMOS devices — the *value-based* mitigation the paper contrasts
//! with its idleness-based one. Both compose: flipping fixes `p0`,
//! partitioning + re-indexing fixes the idleness distribution.

use crate::aging::AgingAnalysis;
use crate::error::CoreError;
use crate::policy::PolicyKind;

/// A word-level cell-flipping scheme.
///
/// `balance` is the fraction of time the flip mechanism manages to hold
/// the inverted polarity: 1.0 models an ideal scheme (perfect 50/50
/// duty), 0.0 disables flipping. A flip bit per `word_bits`-bit word
/// costs `1 / word_bits` extra storage.
///
/// # Examples
///
/// ```
/// use aging_cache::flip::CellFlip;
///
/// let flip = CellFlip::new(0.8, 32)?;
/// // A heavily skewed workload is pulled most of the way to balance.
/// let p0 = flip.effective_p0(0.9);
/// assert!((p0 - 0.58).abs() < 1e-12);
/// assert!((flip.storage_overhead() - 1.0 / 32.0).abs() < 1e-12);
/// # Ok::<(), aging_cache::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFlip {
    balance: f64,
    word_bits: u32,
}

impl CellFlip {
    /// Creates a scheme with the given balancing effectiveness and word
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `balance` is outside
    /// `[0, 1]` or `word_bits` is zero.
    pub fn new(balance: f64, word_bits: u32) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&balance) || !balance.is_finite() {
            return Err(CoreError::InvalidParameter {
                name: "balance",
                value: balance,
                expected: "0 <= balance <= 1",
            });
        }
        if word_bits == 0 {
            return Err(CoreError::InvalidParameter {
                name: "word_bits",
                value: 0.0,
                expected: "a positive word width",
            });
        }
        Ok(Self { balance, word_bits })
    }

    /// An ideal flipper (perfect balance, 32-bit words).
    pub fn ideal() -> Self {
        Self {
            balance: 1.0,
            word_bits: 32,
        }
    }

    /// The effective stored-zero probability after flipping: a convex
    /// blend between the raw workload `p0` and the balanced 0.5.
    pub fn effective_p0(&self, raw_p0: f64) -> f64 {
        0.5 * self.balance + raw_p0 * (1.0 - self.balance)
    }

    /// Extra storage for the flip bits, as a fraction of the data array.
    pub fn storage_overhead(&self) -> f64 {
        1.0 / self.word_bits as f64
    }

    /// Cache lifetime with flipping composed onto a partitioned cache:
    /// the sleep distribution is handled by `policy`, the value balance
    /// by this scheme.
    ///
    /// # Errors
    ///
    /// Propagates aging-model errors.
    pub fn cache_lifetime(
        &self,
        aging: &AgingAnalysis,
        sleep_fractions: &[f64],
        raw_p0: f64,
        policy: PolicyKind,
    ) -> Result<f64, CoreError> {
        aging.cache_lifetime(sleep_fractions, self.effective_p0(raw_p0), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbti_model::{CellDesign, LifetimeSolver};

    fn aging() -> AgingAnalysis {
        AgingAnalysis::new(LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap())
    }

    #[test]
    fn ideal_flip_centers_any_skew() {
        let f = CellFlip::ideal();
        for raw in [0.0, 0.3, 0.9, 1.0] {
            assert!((f.effective_p0(raw) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn no_flip_is_identity() {
        let f = CellFlip::new(0.0, 32).unwrap();
        assert_eq!(f.effective_p0(0.87), 0.87);
    }

    #[test]
    fn flipping_helps_skewed_workloads() {
        let a = aging();
        let sleep = [0.4, 0.4, 0.4, 0.4];
        let skewed = a.cache_lifetime(&sleep, 0.95, PolicyKind::Probing).unwrap();
        let flipped = CellFlip::ideal()
            .cache_lifetime(&a, &sleep, 0.95, PolicyKind::Probing)
            .unwrap();
        assert!(
            flipped > skewed,
            "balancing must extend life: {flipped} vs {skewed}"
        );
    }

    #[test]
    fn flipping_is_neutral_for_balanced_workloads() {
        let a = aging();
        let sleep = [0.4, 0.4, 0.4, 0.4];
        let plain = a.cache_lifetime(&sleep, 0.5, PolicyKind::Probing).unwrap();
        let flipped = CellFlip::ideal()
            .cache_lifetime(&a, &sleep, 0.5, PolicyKind::Probing)
            .unwrap();
        assert!((plain - flipped).abs() / plain < 1e-6);
    }

    #[test]
    fn validation() {
        assert!(CellFlip::new(1.5, 32).is_err());
        assert!(CellFlip::new(-0.1, 32).is_err());
        assert!(CellFlip::new(0.5, 0).is_err());
    }

    #[test]
    fn composition_beats_either_alone_on_skewed_uneven_workloads() {
        // The headline of the ablation: value balancing and idleness
        // balancing attack independent factors.
        let a = aging();
        let sleep = [0.9, 0.6, 0.3, 0.0];
        let raw_p0 = 0.9;
        let neither = a
            .cache_lifetime(&sleep, raw_p0, PolicyKind::Identity)
            .unwrap();
        let only_flip = CellFlip::ideal()
            .cache_lifetime(&a, &sleep, raw_p0, PolicyKind::Identity)
            .unwrap();
        let only_reindex = a
            .cache_lifetime(&sleep, raw_p0, PolicyKind::Probing)
            .unwrap();
        let both = CellFlip::ideal()
            .cache_lifetime(&a, &sleep, raw_p0, PolicyKind::Probing)
            .unwrap();
        assert!(only_flip > neither);
        assert!(only_reindex > neither);
        assert!(both > only_flip);
        assert!(both > only_reindex);
    }
}
