//! Pure table views over [`StudyReport`]s.
//!
//! The old `tableN` runners measured *and* rendered. After the Study
//! API redesign, measurement lives in [`crate::study`] and these
//! functions are pure: `StudyReport` in, [`Table`] out, with the paper's
//! published values ([`crate::paper`]) laid alongside. They accept any
//! report with the right shape — presets produce that shape, but so can
//! custom specs, and a report parsed back from JSON renders the same
//! table a live run would.
//!
//! Views sit on the analysis layer: grouping order comes from
//! [`crate::analysis`], and the [`Table`]s they return render in any
//! [`crate::render::Format`] (the historic stdout is
//! [`Format::Text`](crate::render::Format::Text), byte for byte). For
//! ad-hoc slices that no fixed view covers, query the report directly
//! with [`crate::analysis::Query`].
//!
//! # Examples
//!
//! Views compose with serialized reports — render first, persist, and
//! re-render later without re-measuring:
//!
//! ```no_run
//! use aging_cache::study::StudyReport;
//! use aging_cache::views;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let json = std::fs::read_to_string("table2.json").expect("saved report");
//! let report = StudyReport::from_json(&json)?;
//! println!("{}", views::table2(&report)?);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::experiment::{claims_from, BenchResult};
use crate::model::{ModelKey, METRIC_LT, METRIC_LT0, REFERENCE_TEMP_C, REFERENCE_VLOW};
use crate::paper;
use crate::report::{factor, pct, years, Table};
use crate::study::{ScenarioRecord, StudyReport};
use nbti_model::RdModel;
use trace_synth::suite;

fn shape_err<T>(view: &str, detail: String) -> Result<T, CoreError> {
    Err(CoreError::Report {
        message: format!("{view} view: {detail}"),
    })
}

/// Mean of a metric over a record subset, or a shape error naming the
/// view and the axis value whose subset came up empty (an empty subset
/// used to silently render `NaN`).
fn mean_of(
    view: &str,
    what: &str,
    values: impl IntoIterator<Item = Result<f64, CoreError>>,
) -> Result<f64, CoreError> {
    let values = values.into_iter().collect::<Result<Vec<f64>, _>>()?;
    if values.is_empty() {
        return shape_err(view, format!("no records for {what}"));
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// A named metric of one record, or a shape error saying which record
/// lacks it (a model that does not emit the metric).
fn metric_of(view: &str, r: &ScenarioRecord, name: &str) -> Result<f64, CoreError> {
    match r.metric(name) {
        Some(v) => Ok(v),
        None => shape_err(
            view,
            format!(
                "record for `{}` (model `{}`) lacks metric `{name}`",
                r.scenario.workload, r.scenario.model
            ),
        ),
    }
}

/// Distinct values of a scenario key, in order of first appearance —
/// the analysis layer's ordering ([`crate::analysis::distinct_by`]),
/// so views and [`crate::analysis::Query::groups`] always agree on
/// group order.
fn distinct<'a, K: PartialEq + Copy>(
    report: &'a StudyReport,
    key: impl Fn(&'a ScenarioRecord) -> K,
) -> Vec<K> {
    crate::analysis::distinct_by(report.records(), key)
}

/// Records for one value of a key, preserving order.
fn group<'a, K: PartialEq + Copy>(
    report: &'a StudyReport,
    key: impl Fn(&'a ScenarioRecord) -> K + 'a,
    value: K,
) -> Vec<&'a ScenarioRecord> {
    report
        .records()
        .iter()
        .filter(|r| key(r) == value)
        .collect()
}

/// **Table I** — distribution of useful idleness, measured next to the
/// paper's published row. Expects one record per suite benchmark at a
/// single 4-bank configuration.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table1(report: &StudyReport) -> Result<Table, CoreError> {
    let records = report.records();
    let reference = suite::table1_reference();
    if records.len() != reference.len() {
        return shape_err(
            "table1",
            format!(
                "expected {} records, got {}",
                reference.len(),
                records.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table I - distribution of idleness in a 4-bank cache (measured | paper)",
        vec![
            "bench".into(),
            "I0".into(),
            "I1".into(),
            "I2".into(),
            "I3".into(),
            "Average".into(),
            "paper avg".into(),
        ],
    );
    for r in records {
        if r.useful_idleness.len() != 4 {
            return shape_err(
                "table1",
                format!(
                    "{} has {} banks, need 4",
                    r.scenario.workload,
                    r.useful_idleness.len()
                ),
            );
        }
        // Pair by name, not position: custom specs may order the
        // workload axis differently from the suite.
        let Some((_, paper_row)) = reference
            .iter()
            .find(|(name, _)| *name == r.scenario.workload)
        else {
            return shape_err(
                "table1",
                format!(
                    "workload `{}` has no Table I reference row",
                    r.scenario.workload
                ),
            );
        };
        let paper_avg = paper_row.iter().sum::<f64>() / 4.0;
        t.push_row(vec![
            r.scenario.workload.clone(),
            pct(r.useful_idleness[0]),
            pct(r.useful_idleness[1]),
            pct(r.useful_idleness[2]),
            pct(r.useful_idleness[3]),
            pct(r.avg_useful_idleness()),
            pct(paper_avg),
        ]);
    }
    let overall_esav = mean_of("table1", "the suite", records.iter().map(|r| Ok(r.esav)))?;
    let avg_idle =
        records.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / records.len() as f64;
    t.push_note(format!(
        "suite average idleness {} % (paper: 41.71 %); Esav at this configuration {} %",
        pct(avg_idle),
        pct(overall_esav)
    ));
    Ok(t)
}

/// **Table II** — energy savings and lifetime vs cache size. Expects the
/// suite at each of the paper's three sizes (8/16/32 kB).
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table2(report: &StudyReport) -> Result<Table, CoreError> {
    let sizes = distinct(report, |r| r.scenario.cache_bytes);
    if sizes.len() != 3 {
        return shape_err(
            "table2",
            format!("expected 3 cache sizes, got {}", sizes.len()),
        );
    }
    let data: Vec<(u64, Vec<&ScenarioRecord>)> = sizes
        .iter()
        .map(|&s| (s / 1024, group(report, |r| r.scenario.cache_bytes, s)))
        .collect();
    let benches = data[0].1.len();
    if data.iter().any(|(_, records)| records.len() != benches) {
        return shape_err(
            "table2",
            format!(
                "unbalanced size groups: {:?}",
                data.iter()
                    .map(|(kb, r)| (*kb, r.len()))
                    .collect::<Vec<_>>()
            ),
        );
    }
    let mut headers = vec!["bench".into()];
    for (kb, _) in &data {
        headers.push(format!("{kb}k Esav%"));
        headers.push(format!("{kb}k LT0"));
        headers.push(format!("{kb}k LT"));
    }
    let mut t = Table::new(
        "Table II - energy savings and lifetime vs cache size (measured)",
        headers,
    );
    for i in 0..benches {
        let mut row = vec![data[0].1[i].scenario.workload.clone()];
        for (_, records) in &data {
            let r = records[i];
            row.push(pct(r.esav));
            row.push(years(metric_of("table2", r, METRIC_LT0)?));
            row.push(years(metric_of("table2", r, METRIC_LT)?));
        }
        t.push_row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    let mut paper_row = vec!["(paper avg)".to_string()];
    for (s, (kb, records)) in data.iter().enumerate() {
        let what = format!("{kb} kB");
        avg_row.push(pct(mean_of(
            "table2",
            &what,
            records.iter().map(|r| Ok(r.esav)),
        )?));
        avg_row.push(years(mean_of(
            "table2",
            &what,
            records.iter().map(|r| metric_of("table2", r, METRIC_LT0)),
        )?));
        avg_row.push(years(mean_of(
            "table2",
            &what,
            records.iter().map(|r| metric_of("table2", r, METRIC_LT)),
        )?));
        paper_row.push(pct(paper::TABLE2_AVG.0[s]));
        paper_row.push(years(paper::TABLE2_AVG.1[s]));
        paper_row.push(years(paper::TABLE2_AVG.2[s]));
    }
    t.push_row(avg_row);
    t.push_row(paper_row);
    t.push_note("paper averages: Esav 32.2/44.3/55.5 %, LT0 3.22/3.19/3.20 y, LT 4.34/4.31/4.62 y");
    Ok(t)
}

/// **Table III** — energy savings and lifetime vs line size. Expects the
/// suite at two line sizes.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table3(report: &StudyReport) -> Result<Table, CoreError> {
    let lines = distinct(report, |r| r.scenario.line_bytes);
    if lines.len() != 2 {
        return shape_err(
            "table3",
            format!("expected 2 line sizes, got {}", lines.len()),
        );
    }
    let ls16 = group(report, |r| r.scenario.line_bytes, lines[0]);
    let ls32 = group(report, |r| r.scenario.line_bytes, lines[1]);
    if ls16.len() != ls32.len() {
        return shape_err(
            "table3",
            format!(
                "unbalanced line-size groups: {} vs {}",
                ls16.len(),
                ls32.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table III - energy savings and lifetime vs line size (measured)",
        vec![
            "bench".into(),
            "LS16 Esav%".into(),
            "LS16 LT".into(),
            "LS32 Esav%".into(),
            "LS32 LT".into(),
        ],
    );
    for i in 0..ls16.len() {
        t.push_row(vec![
            ls16[i].scenario.workload.clone(),
            pct(ls16[i].esav),
            years(metric_of("table3", ls16[i], METRIC_LT)?),
            pct(ls32[i].esav),
            years(metric_of("table3", ls32[i], METRIC_LT)?),
        ]);
    }
    t.push_row(vec![
        "Average".into(),
        pct(mean_of("table3", "LS16", ls16.iter().map(|r| Ok(r.esav)))?),
        years(mean_of(
            "table3",
            "LS16",
            ls16.iter().map(|r| metric_of("table3", r, METRIC_LT)),
        )?),
        pct(mean_of("table3", "LS32", ls32.iter().map(|r| Ok(r.esav)))?),
        years(mean_of(
            "table3",
            "LS32",
            ls32.iter().map(|r| metric_of("table3", r, METRIC_LT)),
        )?),
    ]);
    t.push_note(format!(
        "paper averages: Esav {} / {} %, LT {} / {} y",
        pct(paper::TABLE3_AVG[0]),
        pct(paper::TABLE3_AVG[2]),
        years(paper::TABLE3_AVG[1]),
        years(paper::TABLE3_AVG[3]),
    ));
    Ok(t)
}

/// **Table IV** — average idleness and lifetime over the (size × banks)
/// grid, measured next to the paper's rows.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table4(report: &StudyReport) -> Result<Table, CoreError> {
    let sizes = distinct(report, |r| r.scenario.cache_bytes);
    let bank_counts = {
        let mut b = distinct(report, |r| r.scenario.banks);
        b.sort_unstable();
        b
    };
    if sizes.len() != 3 || bank_counts.len() != 3 {
        return shape_err(
            "table4",
            format!(
                "expected a 3x3 (size x banks) grid, got {}x{}",
                sizes.len(),
                bank_counts.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table IV - average idleness and lifetime vs cache size and banks (measured | paper)",
        vec![
            "size".into(),
            "M=2 idl%".into(),
            "M=2 LT".into(),
            "M=4 idl%".into(),
            "M=4 LT".into(),
            "M=8 idl%".into(),
            "M=8 LT".into(),
        ],
    );
    for (row_idx, &bytes) in sizes.iter().enumerate() {
        let mut row = vec![format!("{}kB", bytes / 1024)];
        for &banks in &bank_counts {
            let cell: Vec<&ScenarioRecord> = report
                .records()
                .iter()
                .filter(|r| r.scenario.cache_bytes == bytes && r.scenario.banks == banks)
                .collect();
            // A sparse grid can leave a (size, banks) cell empty even
            // when both axes pass the 3×3 check; an empty mean used to
            // render NaN here.
            let what = format!("{}kB / M={banks}", bytes / 1024);
            let idle = mean_of(
                "table4",
                &what,
                cell.iter().map(|r| Ok(r.avg_useful_idleness())),
            )?;
            let lt = mean_of(
                "table4",
                &what,
                cell.iter().map(|r| metric_of("table4", r, METRIC_LT)),
            )?;
            row.push(pct(idle));
            row.push(years(lt));
        }
        t.push_row(row);
        let p = paper::TABLE4[row_idx];
        t.push_row(vec![
            format!("(paper {}kB)", p.size_kb),
            pct(p.per_banks[0].0),
            years(p.per_banks[0].1),
            pct(p.per_banks[1].0),
            years(p.per_banks[1].1),
            pct(p.per_banks[2].0),
            years(p.per_banks[2].1),
        ]);
    }
    Ok(t)
}

/// Regroups a Table II-shaped report into the historic
/// `(size_kb, Vec<BenchResult>)` dataset consumed by
/// [`claims_from`] and the test suite.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report has no records.
pub fn table2_dataset(report: &StudyReport) -> Result<Vec<(u64, Vec<BenchResult>)>, CoreError> {
    if report.records().is_empty() {
        return shape_err("table2_dataset", "report is empty".into());
    }
    for r in report.records() {
        metric_of("table2_dataset", r, METRIC_LT0)?;
        metric_of("table2_dataset", r, METRIC_LT)?;
    }
    Ok(distinct(report, |r| r.scenario.cache_bytes)
        .into_iter()
        .map(|bytes| {
            (
                bytes / 1024,
                group(report, |r| r.scenario.cache_bytes, bytes)
                    .into_iter()
                    .map(BenchResult::from)
                    .collect(),
            )
        })
        .collect())
}

/// §IV-B1 headline-claims comparison, from a Table II-shaped report.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn claims(report: &StudyReport) -> Result<Table, CoreError> {
    let data = table2_dataset(report)?;
    if data.len() != 3 {
        return shape_err(
            "claims",
            format!("expected 3 cache sizes, got {}", data.len()),
        );
    }
    let s = claims_from(&data);
    let mut t = Table::new(
        "Headline claims (measured vs paper)",
        vec!["claim".into(), "measured".into(), "paper".into()],
    );
    t.push_row(vec![
        "LT0 gain from power mgmt alone (8kB)".into(),
        format!("{} %", pct(s.lt0_gain_8k)),
        format!("{} %", pct(paper::claims::LT0_IMPROVEMENT)),
    ]);
    t.push_row(vec![
        "further gain from re-indexing (8kB)".into(),
        format!("{} %", pct(s.reindex_further_gain_8k)),
        format!("{} %", pct(paper::claims::REINDEX_FURTHER_IMPROVEMENT)),
    ]);
    for (i, (kb, _)) in data.iter().enumerate() {
        t.push_row(vec![
            format!("lifetime extension at {kb} kB"),
            format!("{} %", pct(s.extension_per_size[i])),
            format!("{} %", pct(paper::claims::EXTENSION_PER_SIZE[i])),
        ]);
    }
    t.push_row(vec![
        format!("best case ({})", s.best_case.0),
        factor(s.best_case.1),
        format!("{} (sha)", factor(paper::claims::BEST_CASE_FACTOR)),
    ]);
    t.push_row(vec![
        format!("worst case ({})", s.worst_case.0),
        factor(s.worst_case.1),
        format!(">= {}", factor(1.0 + paper::claims::WORST_CASE_GAIN)),
    ]);
    Ok(t)
}

/// §IV-B2 — per-benchmark lifetimes under two policies, side by side.
/// Expects a report over exactly two policies (by default Probing and
/// Scrambling) at one geometry.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn policy_equivalence(report: &StudyReport) -> Result<Table, CoreError> {
    let policies = distinct(report, |r| r.scenario.policy.as_str());
    if policies.len() != 2 {
        return shape_err(
            "policy_equivalence",
            format!("expected 2 policies, got {:?}", policies),
        );
    }
    let a = group(report, |r| r.scenario.policy.as_str(), policies[0]);
    let b = group(report, |r| r.scenario.policy.as_str(), policies[1]);
    if a.len() != b.len() {
        return shape_err(
            "policy_equivalence",
            format!("unbalanced policy groups: {} vs {}", a.len(), b.len()),
        );
    }
    let mut t = Table::new(
        format!(
            "{} vs {} lifetimes",
            capitalize(policies[0]),
            capitalize(policies[1])
        ),
        vec![
            "bench".into(),
            format!("LT {}", policies[0]),
            format!("LT {}", policies[1]),
            "delta %".into(),
        ],
    );
    for (ra, rb) in a.iter().zip(&b) {
        let lta = metric_of("policy_equivalence", ra, METRIC_LT)?;
        let ltb = metric_of("policy_equivalence", rb, METRIC_LT)?;
        t.push_row(vec![
            ra.scenario.workload.clone(),
            years(lta),
            years(ltb),
            format!("{:+.2}", 100.0 * (ltb - lta) / lta),
        ]);
    }
    Ok(t)
}

/// The drowsy rail a record's model operates at (the reference 0.75 V
/// unless its key overrides `vlow`).
fn vlow_of(model: &str) -> Result<f64, CoreError> {
    Ok(ModelKey::parse(model)?
        .and_then(|k| k.params.vdd_low)
        .unwrap_or(REFERENCE_VLOW))
}

/// Ablation view: operating temperature vs LT0/LT, one row per model
/// on the temperature axis (see
/// [`presets::ablation_temperature`](crate::presets::ablation_temperature)).
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn ablation_temperature(report: &StudyReport) -> Result<Table, CoreError> {
    let models = distinct(report, |r| r.scenario.model.as_str());
    if models.is_empty() {
        return shape_err("ablation_temperature", "report is empty".into());
    }
    let mut t = Table::new(
        "Ablation: operating temperature (calibration fixed at 85 degC)",
        vec![
            "temperature".into(),
            "LT0".into(),
            "LT (probing)".into(),
            "reindex gain %".into(),
        ],
    );
    for key in models {
        let records = group(report, |r| r.scenario.model.as_str(), key);
        let celsius = ModelKey::parse(key)?
            .and_then(|k| k.params.temp_c)
            .unwrap_or(REFERENCE_TEMP_C);
        let lt0 = mean_of(
            "ablation_temperature",
            key,
            records
                .iter()
                .map(|r| metric_of("ablation_temperature", r, METRIC_LT0)),
        )?;
        let lt = mean_of(
            "ablation_temperature",
            key,
            records
                .iter()
                .map(|r| metric_of("ablation_temperature", r, METRIC_LT)),
        )?;
        t.push_row(vec![
            format!("{celsius:.0} degC"),
            years(lt0),
            years(lt),
            format!("{:+.1}", 100.0 * (lt - lt0) / lt0),
        ]);
    }
    t.push_note("the re-indexing gain is a pure ratio and survives any uniform rate scaling");
    Ok(t)
}

/// Ablation view: the drowsy-voltage design knob — aging deceleration
/// and lifetime (from the `nbti` records) next to the fresh/aged DRV
/// safety margins (from the `drv` records), one row per rail value
/// (see [`presets::ablation_vlow`](crate::presets::ablation_vlow)).
///
/// # Errors
///
/// Returns [`CoreError::Report`] if a rail value lacks either its
/// lifetime or its retention-margin records.
pub fn ablation_vlow(report: &StudyReport) -> Result<Table, CoreError> {
    let mut vlows: Vec<f64> = Vec::new();
    for r in report.records() {
        let v = vlow_of(&r.scenario.model)?;
        if !vlows.contains(&v) {
            vlows.push(v);
        }
    }
    if vlows.is_empty() {
        return shape_err("ablation_vlow", "report is empty".into());
    }
    vlows.sort_by(f64::total_cmp);
    // Calibration only re-fits the drift coefficient; the voltage
    // acceleration exponent and voltage anchors are design constants,
    // so the published R–D model reproduces the solver's ratio exactly.
    let rd = RdModel::default_45nm();
    let mut t = Table::new(
        "Ablation: drowsy rail voltage (sha-like idleness, Probing)",
        vec![
            "Vdd,low".into(),
            "aging accel in sleep".into(),
            "LT (years)".into(),
            "fresh DRV margin".into(),
            "aged DRV margin".into(),
        ],
    );
    for &vlow in &vlows {
        let at_rail: Vec<&ScenarioRecord> = report
            .records()
            .iter()
            .filter(|r| vlow_of(&r.scenario.model).is_ok_and(|v| v == vlow))
            .collect();
        let pick = |metric: &str| -> Result<f64, CoreError> {
            mean_of(
                "ablation_vlow",
                &format!("vlow={vlow} metric {metric}"),
                at_rail
                    .iter()
                    .filter_map(|r| r.metric(metric))
                    .map(Ok)
                    .collect::<Vec<_>>(),
            )
        };
        t.push_row(vec![
            format!("{vlow:.2} V"),
            format!("{:.2}x", rd.voltage_acceleration(vlow)),
            years(pick(METRIC_LT)?),
            format!("{:+.0} mV", 1000.0 * pick("drv_margin_fresh_v")?),
            format!("{:+.0} mV", 1000.0 * pick("drv_margin_aged_v")?),
        ]);
    }
    t.push_note(
        "lower rails slow aging but aging costs ~80 mV of retention margin over life; \
         the paper's 0.75 V keeps a comfortable aged margin while tripling sleep relief",
    );
    Ok(t)
}

/// Extension view: process variation × NBTI — bank-lifetime quantiles
/// per mismatch sigma, one row per `variation:<sigma>` model (see
/// [`presets::variation_study`](crate::presets::variation_study)).
///
/// # Errors
///
/// Returns [`CoreError::Report`] if a record's model is not a
/// variation model or lacks the quantile metrics.
pub fn variation_study(report: &StudyReport) -> Result<Table, CoreError> {
    let models = distinct(report, |r| r.scenario.model.as_str());
    if models.is_empty() {
        return shape_err("variation_study", "report is empty".into());
    }
    let mut t = Table::new(
        "Bank lifetime quantiles vs Vth mismatch sigma (years)",
        vec![
            "sigma".into(),
            "q10 busy".into(),
            "q50 busy".into(),
            "q50 drowsy+reindex".into(),
            "reindex gain %".into(),
        ],
    );
    for key in models {
        let Some(sigma) = ModelKey::parse(key)?.and_then(|k| k.sigma_mv) else {
            return shape_err(
                "variation_study",
                format!("model `{key}` is not a variation model"),
            );
        };
        let records = group(report, |r| r.scenario.model.as_str(), key);
        let pick = |metric: &str| -> Result<f64, CoreError> {
            mean_of(
                "variation_study",
                key,
                records
                    .iter()
                    .map(|r| metric_of("variation_study", r, metric)),
            )
        };
        let q10 = pick("lt0_q10_years")?;
        let q50 = pick(METRIC_LT0)?;
        let q50_re = pick(METRIC_LT)?;
        t.push_row(vec![
            format!("{sigma:.0} mV"),
            years(q10),
            years(q50),
            years(q50_re),
            format!("{:+.1}", 100.0 * (q50_re - q50) / q50),
        ]);
    }
    t.push_note(
        "variation shortens absolute lifetimes (worst cell of 37k), but the \
         re-indexing gain is rate-relative and survives unchanged",
    );
    Ok(t)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Scenario;

    use crate::model::Metrics;

    fn record(workload: &str, wi: usize, kb: u64, banks: u32, policy: &str) -> ScenarioRecord {
        ScenarioRecord {
            scenario: Scenario {
                id: 0,
                cache_bytes: kb * 1024,
                line_bytes: 16,
                banks,
                ways: 1,
                replacement: "lru".into(),
                l2_cache_bytes: 0,
                l2_ways: 1,
                update_days: 1.0,
                policy: policy.into(),
                workload: workload.into(),
                workload_index: wi,
                workload_source: None,
                model: "nbti-45nm".into(),
                trace_cycles: 1000,
                trace_seed: 1000 + wi as u64,
                policy_seed: 1,
            },
            sim_cycles: 1000,
            esav: 0.4,
            miss_rate: 0.05,
            useful_idleness: vec![0.4; banks as usize],
            sleep_fractions: vec![0.35; banks as usize],
            metrics: Metrics::from_pairs([("lt0_years", 3.0), ("lt_years", 4.2)]),
        }
    }

    #[test]
    fn table1_rejects_wrong_shapes() {
        let report = StudyReport::from_records("bad", vec![record("sha", 12, 16, 4, "probing")]);
        assert!(table1(&report).is_err());
    }

    #[test]
    fn policy_equivalence_renders_two_groups() {
        let report = StudyReport::from_records(
            "eq",
            vec![
                record("sha", 12, 16, 4, "probing"),
                record("sha", 12, 16, 4, "scrambling"),
            ],
        );
        let t = policy_equivalence(&report).unwrap();
        assert_eq!(t.rows().len(), 1);
        assert!(t.to_string().contains("Probing vs Scrambling"));
    }

    #[test]
    fn table2_dataset_groups_by_size() {
        let mut records = Vec::new();
        for kb in [8u64, 16, 32] {
            for (wi, w) in ["a", "b"].iter().enumerate() {
                records.push(record(w, wi, kb, 4, "probing"));
            }
        }
        let data = table2_dataset(&StudyReport::from_records("t2", records)).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].0, 8);
        assert_eq!(data[2].1.len(), 2);
    }

    #[test]
    fn missing_metrics_are_a_shape_error_not_nan() {
        let mut r = record("sha", 0, 16, 4, "probing");
        r.metrics = Metrics::from_pairs([("drv_margin_fresh_v", 0.2)]);
        let report = StudyReport::from_records("wrong model", vec![r]);
        let e = table2_dataset(&report).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("lacks metric `lt0_years`"), "{text}");
        assert!(text.contains("sha"), "{text}");
    }

    #[test]
    fn empty_table4_cell_is_a_shape_error_not_nan() {
        // Sizes {8,16,32} and banks {2,4,8} both appear, but the
        // (32 kB, M=8) cell is empty: this used to render NaN.
        let mut records = Vec::new();
        for (kb, banks) in [
            (8u64, 2u32),
            (8, 4),
            (8, 8),
            (16, 2),
            (16, 4),
            (16, 8),
            (32, 2),
            (32, 4),
        ] {
            records.push(record("a", 0, kb, banks, "probing"));
        }
        let e = table4(&StudyReport::from_records("sparse", records)).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("table4"), "{text}");
        assert!(text.contains("32kB / M=8"), "{text}");
    }

    fn model_record(model: &str, metrics: Metrics) -> ScenarioRecord {
        let mut r = record("profile:0.1,0.8,0.6,0.3", 0, 16, 4, "probing");
        r.scenario.model = model.into();
        r.metrics = metrics;
        r
    }

    #[test]
    fn ablation_temperature_renders_one_row_per_model() {
        let report = StudyReport::from_records(
            "temps",
            vec![
                model_record(
                    "nbti:temp=45",
                    Metrics::from_pairs([("lt0_years", 20.0), ("lt_years", 30.0)]),
                ),
                model_record(
                    "nbti:temp=125",
                    Metrics::from_pairs([("lt0_years", 0.5), ("lt_years", 0.75)]),
                ),
            ],
        );
        let t = ablation_temperature(&report).unwrap();
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0][0], "45 degC");
        assert_eq!(t.rows()[1][0], "125 degC");
        assert_eq!(t.rows()[0][3], "+50.0");
    }

    #[test]
    fn ablation_vlow_pairs_lifetime_and_margin_records() {
        let report = StudyReport::from_records(
            "vlow",
            vec![
                model_record(
                    "nbti:vlow=0.55",
                    Metrics::from_pairs([("lt0_years", 3.0), ("lt_years", 6.0)]),
                ),
                model_record(
                    "drv:vlow=0.55",
                    Metrics::from_pairs([("drv_margin_fresh_v", 0.1), ("drv_margin_aged_v", 0.02)]),
                ),
            ],
        );
        let t = ablation_vlow(&report).unwrap();
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0][0], "0.55 V");
        assert_eq!(t.rows()[0][3], "+100 mV");
        assert_eq!(t.rows()[0][4], "+20 mV");

        // A rail with lifetimes but no margins is a shape error.
        let broken = StudyReport::from_records(
            "vlow",
            vec![model_record(
                "nbti:vlow=0.55",
                Metrics::from_pairs([("lt0_years", 3.0), ("lt_years", 6.0)]),
            )],
        );
        let e = ablation_vlow(&broken).unwrap_err();
        assert!(e.to_string().contains("drv_margin_fresh_v"), "{e}");
    }

    #[test]
    fn variation_study_requires_variation_models() {
        let report = StudyReport::from_records(
            "var",
            vec![model_record(
                "variation:30",
                Metrics::from_pairs([
                    ("lt0_years", 2.0),
                    ("lt_years", 3.0),
                    ("lt0_q10_years", 1.5),
                ]),
            )],
        );
        let t = variation_study(&report).unwrap();
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.rows()[0][0], "30 mV");
        assert_eq!(t.rows()[0][4], "+50.0");

        let wrong = StudyReport::from_records(
            "var",
            vec![model_record(
                "nbti-45nm",
                Metrics::from_pairs([("lt0_years", 2.0), ("lt_years", 3.0)]),
            )],
        );
        assert!(variation_study(&wrong).is_err());
    }
}
