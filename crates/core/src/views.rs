//! Pure table views over [`StudyReport`]s.
//!
//! The old `tableN` runners measured *and* rendered. After the Study
//! API redesign, measurement lives in [`crate::study`] and these
//! functions are pure: `StudyReport` in, [`Table`] out, with the paper's
//! published values ([`crate::paper`]) laid alongside. They accept any
//! report with the right shape — presets produce that shape, but so can
//! custom specs, and a report parsed back from JSON renders the same
//! table a live run would.
//!
//! # Examples
//!
//! Views compose with serialized reports — render first, persist, and
//! re-render later without re-measuring:
//!
//! ```no_run
//! use aging_cache::study::StudyReport;
//! use aging_cache::views;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let json = std::fs::read_to_string("table2.json").expect("saved report");
//! let report = StudyReport::from_json(&json)?;
//! println!("{}", views::table2(&report)?);
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::experiment::{claims_from, BenchResult};
use crate::paper;
use crate::report::{factor, pct, years, Table};
use crate::study::{ScenarioRecord, StudyReport};
use trace_synth::suite;

fn mean<'a>(values: impl Iterator<Item = &'a f64>) -> f64 {
    let v: Vec<f64> = values.copied().collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn shape_err<T>(view: &str, detail: String) -> Result<T, CoreError> {
    Err(CoreError::Report {
        message: format!("{view} view: {detail}"),
    })
}

/// Distinct values of a scenario key, in order of first appearance.
fn distinct<'a, K: PartialEq + Copy>(
    report: &'a StudyReport,
    key: impl Fn(&'a ScenarioRecord) -> K,
) -> Vec<K> {
    let mut out: Vec<K> = Vec::new();
    for r in report.records() {
        let k = key(r);
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

/// Records for one value of a key, preserving order.
fn group<'a, K: PartialEq + Copy>(
    report: &'a StudyReport,
    key: impl Fn(&'a ScenarioRecord) -> K + 'a,
    value: K,
) -> Vec<&'a ScenarioRecord> {
    report
        .records()
        .iter()
        .filter(|r| key(r) == value)
        .collect()
}

/// **Table I** — distribution of useful idleness, measured next to the
/// paper's published row. Expects one record per suite benchmark at a
/// single 4-bank configuration.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table1(report: &StudyReport) -> Result<Table, CoreError> {
    let records = report.records();
    let reference = suite::table1_reference();
    if records.len() != reference.len() {
        return shape_err(
            "table1",
            format!(
                "expected {} records, got {}",
                reference.len(),
                records.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table I - distribution of idleness in a 4-bank cache (measured | paper)",
        vec![
            "bench".into(),
            "I0".into(),
            "I1".into(),
            "I2".into(),
            "I3".into(),
            "Average".into(),
            "paper avg".into(),
        ],
    );
    for r in records {
        if r.useful_idleness.len() != 4 {
            return shape_err(
                "table1",
                format!(
                    "{} has {} banks, need 4",
                    r.scenario.workload,
                    r.useful_idleness.len()
                ),
            );
        }
        // Pair by name, not position: custom specs may order the
        // workload axis differently from the suite.
        let Some((_, paper_row)) = reference
            .iter()
            .find(|(name, _)| *name == r.scenario.workload)
        else {
            return shape_err(
                "table1",
                format!(
                    "workload `{}` has no Table I reference row",
                    r.scenario.workload
                ),
            );
        };
        let paper_avg = paper_row.iter().sum::<f64>() / 4.0;
        t.push_row(vec![
            r.scenario.workload.clone(),
            pct(r.useful_idleness[0]),
            pct(r.useful_idleness[1]),
            pct(r.useful_idleness[2]),
            pct(r.useful_idleness[3]),
            pct(r.avg_useful_idleness()),
            pct(paper_avg),
        ]);
    }
    let overall_esav = mean(records.iter().map(|r| &r.esav));
    let avg_idle =
        records.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / records.len() as f64;
    t.push_note(format!(
        "suite average idleness {} % (paper: 41.71 %); Esav at this configuration {} %",
        pct(avg_idle),
        pct(overall_esav)
    ));
    Ok(t)
}

/// **Table II** — energy savings and lifetime vs cache size. Expects the
/// suite at each of the paper's three sizes (8/16/32 kB).
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table2(report: &StudyReport) -> Result<Table, CoreError> {
    let sizes = distinct(report, |r| r.scenario.cache_bytes);
    if sizes.len() != 3 {
        return shape_err(
            "table2",
            format!("expected 3 cache sizes, got {}", sizes.len()),
        );
    }
    let data: Vec<(u64, Vec<&ScenarioRecord>)> = sizes
        .iter()
        .map(|&s| (s / 1024, group(report, |r| r.scenario.cache_bytes, s)))
        .collect();
    let benches = data[0].1.len();
    if data.iter().any(|(_, records)| records.len() != benches) {
        return shape_err(
            "table2",
            format!(
                "unbalanced size groups: {:?}",
                data.iter()
                    .map(|(kb, r)| (*kb, r.len()))
                    .collect::<Vec<_>>()
            ),
        );
    }
    let mut headers = vec!["bench".into()];
    for (kb, _) in &data {
        headers.push(format!("{kb}k Esav%"));
        headers.push(format!("{kb}k LT0"));
        headers.push(format!("{kb}k LT"));
    }
    let mut t = Table::new(
        "Table II - energy savings and lifetime vs cache size (measured)",
        headers,
    );
    for i in 0..benches {
        let mut row = vec![data[0].1[i].scenario.workload.clone()];
        for (_, records) in &data {
            let r = records[i];
            row.push(pct(r.esav));
            row.push(years(r.lt0_years));
            row.push(years(r.lt_years));
        }
        t.push_row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    let mut paper_row = vec!["(paper avg)".to_string()];
    for (s, (_, records)) in data.iter().enumerate() {
        avg_row.push(pct(mean(records.iter().map(|r| &r.esav))));
        avg_row.push(years(mean(records.iter().map(|r| &r.lt0_years))));
        avg_row.push(years(mean(records.iter().map(|r| &r.lt_years))));
        paper_row.push(pct(paper::TABLE2_AVG.0[s]));
        paper_row.push(years(paper::TABLE2_AVG.1[s]));
        paper_row.push(years(paper::TABLE2_AVG.2[s]));
    }
    t.push_row(avg_row);
    t.push_row(paper_row);
    t.push_note("paper averages: Esav 32.2/44.3/55.5 %, LT0 3.22/3.19/3.20 y, LT 4.34/4.31/4.62 y");
    Ok(t)
}

/// **Table III** — energy savings and lifetime vs line size. Expects the
/// suite at two line sizes.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table3(report: &StudyReport) -> Result<Table, CoreError> {
    let lines = distinct(report, |r| r.scenario.line_bytes);
    if lines.len() != 2 {
        return shape_err(
            "table3",
            format!("expected 2 line sizes, got {}", lines.len()),
        );
    }
    let ls16 = group(report, |r| r.scenario.line_bytes, lines[0]);
    let ls32 = group(report, |r| r.scenario.line_bytes, lines[1]);
    if ls16.len() != ls32.len() {
        return shape_err(
            "table3",
            format!(
                "unbalanced line-size groups: {} vs {}",
                ls16.len(),
                ls32.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table III - energy savings and lifetime vs line size (measured)",
        vec![
            "bench".into(),
            "LS16 Esav%".into(),
            "LS16 LT".into(),
            "LS32 Esav%".into(),
            "LS32 LT".into(),
        ],
    );
    for i in 0..ls16.len() {
        t.push_row(vec![
            ls16[i].scenario.workload.clone(),
            pct(ls16[i].esav),
            years(ls16[i].lt_years),
            pct(ls32[i].esav),
            years(ls32[i].lt_years),
        ]);
    }
    t.push_row(vec![
        "Average".into(),
        pct(mean(ls16.iter().map(|r| &r.esav))),
        years(mean(ls16.iter().map(|r| &r.lt_years))),
        pct(mean(ls32.iter().map(|r| &r.esav))),
        years(mean(ls32.iter().map(|r| &r.lt_years))),
    ]);
    t.push_note(format!(
        "paper averages: Esav {} / {} %, LT {} / {} y",
        pct(paper::TABLE3_AVG[0]),
        pct(paper::TABLE3_AVG[2]),
        years(paper::TABLE3_AVG[1]),
        years(paper::TABLE3_AVG[3]),
    ));
    Ok(t)
}

/// **Table IV** — average idleness and lifetime over the (size × banks)
/// grid, measured next to the paper's rows.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn table4(report: &StudyReport) -> Result<Table, CoreError> {
    let sizes = distinct(report, |r| r.scenario.cache_bytes);
    let bank_counts = {
        let mut b = distinct(report, |r| r.scenario.banks);
        b.sort_unstable();
        b
    };
    if sizes.len() != 3 || bank_counts.len() != 3 {
        return shape_err(
            "table4",
            format!(
                "expected a 3x3 (size x banks) grid, got {}x{}",
                sizes.len(),
                bank_counts.len()
            ),
        );
    }
    let mut t = Table::new(
        "Table IV - average idleness and lifetime vs cache size and banks (measured | paper)",
        vec![
            "size".into(),
            "M=2 idl%".into(),
            "M=2 LT".into(),
            "M=4 idl%".into(),
            "M=4 LT".into(),
            "M=8 idl%".into(),
            "M=8 LT".into(),
        ],
    );
    for (row_idx, &bytes) in sizes.iter().enumerate() {
        let mut row = vec![format!("{}kB", bytes / 1024)];
        for &banks in &bank_counts {
            let cell: Vec<&ScenarioRecord> = report
                .records()
                .iter()
                .filter(|r| r.scenario.cache_bytes == bytes && r.scenario.banks == banks)
                .collect();
            let idle =
                cell.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / cell.len() as f64;
            let lt = mean(cell.iter().map(|r| &r.lt_years));
            row.push(pct(idle));
            row.push(years(lt));
        }
        t.push_row(row);
        let p = paper::TABLE4[row_idx];
        t.push_row(vec![
            format!("(paper {}kB)", p.size_kb),
            pct(p.per_banks[0].0),
            years(p.per_banks[0].1),
            pct(p.per_banks[1].0),
            years(p.per_banks[1].1),
            pct(p.per_banks[2].0),
            years(p.per_banks[2].1),
        ]);
    }
    Ok(t)
}

/// Regroups a Table II-shaped report into the historic
/// `(size_kb, Vec<BenchResult>)` dataset consumed by
/// [`claims_from`] and the test suite.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report has no records.
pub fn table2_dataset(report: &StudyReport) -> Result<Vec<(u64, Vec<BenchResult>)>, CoreError> {
    if report.records().is_empty() {
        return shape_err("table2_dataset", "report is empty".into());
    }
    Ok(distinct(report, |r| r.scenario.cache_bytes)
        .into_iter()
        .map(|bytes| {
            (
                bytes / 1024,
                group(report, |r| r.scenario.cache_bytes, bytes)
                    .into_iter()
                    .map(BenchResult::from)
                    .collect(),
            )
        })
        .collect())
}

/// §IV-B1 headline-claims comparison, from a Table II-shaped report.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn claims(report: &StudyReport) -> Result<Table, CoreError> {
    let data = table2_dataset(report)?;
    if data.len() != 3 {
        return shape_err(
            "claims",
            format!("expected 3 cache sizes, got {}", data.len()),
        );
    }
    let s = claims_from(&data);
    let mut t = Table::new(
        "Headline claims (measured vs paper)",
        vec!["claim".into(), "measured".into(), "paper".into()],
    );
    t.push_row(vec![
        "LT0 gain from power mgmt alone (8kB)".into(),
        format!("{} %", pct(s.lt0_gain_8k)),
        format!("{} %", pct(paper::claims::LT0_IMPROVEMENT)),
    ]);
    t.push_row(vec![
        "further gain from re-indexing (8kB)".into(),
        format!("{} %", pct(s.reindex_further_gain_8k)),
        format!("{} %", pct(paper::claims::REINDEX_FURTHER_IMPROVEMENT)),
    ]);
    for (i, (kb, _)) in data.iter().enumerate() {
        t.push_row(vec![
            format!("lifetime extension at {kb} kB"),
            format!("{} %", pct(s.extension_per_size[i])),
            format!("{} %", pct(paper::claims::EXTENSION_PER_SIZE[i])),
        ]);
    }
    t.push_row(vec![
        format!("best case ({})", s.best_case.0),
        factor(s.best_case.1),
        format!("{} (sha)", factor(paper::claims::BEST_CASE_FACTOR)),
    ]);
    t.push_row(vec![
        format!("worst case ({})", s.worst_case.0),
        factor(s.worst_case.1),
        format!(">= {}", factor(1.0 + paper::claims::WORST_CASE_GAIN)),
    ]);
    Ok(t)
}

/// §IV-B2 — per-benchmark lifetimes under two policies, side by side.
/// Expects a report over exactly two policies (by default Probing and
/// Scrambling) at one geometry.
///
/// # Errors
///
/// Returns [`CoreError::Report`] if the report shape does not match.
pub fn policy_equivalence(report: &StudyReport) -> Result<Table, CoreError> {
    let policies = distinct(report, |r| r.scenario.policy.as_str());
    if policies.len() != 2 {
        return shape_err(
            "policy_equivalence",
            format!("expected 2 policies, got {:?}", policies),
        );
    }
    let a = group(report, |r| r.scenario.policy.as_str(), policies[0]);
    let b = group(report, |r| r.scenario.policy.as_str(), policies[1]);
    if a.len() != b.len() {
        return shape_err(
            "policy_equivalence",
            format!("unbalanced policy groups: {} vs {}", a.len(), b.len()),
        );
    }
    let mut t = Table::new(
        format!(
            "{} vs {} lifetimes",
            capitalize(policies[0]),
            capitalize(policies[1])
        ),
        vec![
            "bench".into(),
            format!("LT {}", policies[0]),
            format!("LT {}", policies[1]),
            "delta %".into(),
        ],
    );
    for (ra, rb) in a.iter().zip(&b) {
        t.push_row(vec![
            ra.scenario.workload.clone(),
            years(ra.lt_years),
            years(rb.lt_years),
            format!("{:+.2}", 100.0 * (rb.lt_years - ra.lt_years) / ra.lt_years),
        ]);
    }
    Ok(t)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Scenario;

    fn record(workload: &str, wi: usize, kb: u64, banks: u32, policy: &str) -> ScenarioRecord {
        ScenarioRecord {
            scenario: Scenario {
                id: 0,
                cache_bytes: kb * 1024,
                line_bytes: 16,
                banks,
                update_days: 1.0,
                policy: policy.into(),
                workload: workload.into(),
                workload_index: wi,
                workload_source: None,
                trace_cycles: 1000,
                trace_seed: 1000 + wi as u64,
                policy_seed: 1,
            },
            sim_cycles: 1000,
            esav: 0.4,
            miss_rate: 0.05,
            useful_idleness: vec![0.4; banks as usize],
            sleep_fractions: vec![0.35; banks as usize],
            lt0_years: 3.0,
            lt_years: 4.2,
        }
    }

    #[test]
    fn table1_rejects_wrong_shapes() {
        let report = StudyReport::from_records("bad", vec![record("sha", 12, 16, 4, "probing")]);
        assert!(table1(&report).is_err());
    }

    #[test]
    fn policy_equivalence_renders_two_groups() {
        let report = StudyReport::from_records(
            "eq",
            vec![
                record("sha", 12, 16, 4, "probing"),
                record("sha", 12, 16, 4, "scrambling"),
            ],
        );
        let t = policy_equivalence(&report).unwrap();
        assert_eq!(t.rows().len(), 1);
        assert!(t.to_string().contains("Probing vs Scrambling"));
    }

    #[test]
    fn table2_dataset_groups_by_size() {
        let mut records = Vec::new();
        for kb in [8u64, 16, 32] {
            for (wi, w) in ["a", "b"].iter().enumerate() {
                records.push(record(w, wi, kb, 4, "probing"));
            }
        }
        let data = table2_dataset(&StudyReport::from_records("t2", records)).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data[0].0, 8);
        assert_eq!(data[2].1.len(), 2);
    }
}
