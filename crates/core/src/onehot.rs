//! The 1-hot encoder of decoder `D` (paper Fig. 1b).
//!
//! The `p` bank-select MSBs are "transformed into a 1-hot code onto `2^p`
//! bits (e.g., Bank 0 corresponds to the M-bit encoding 00…1, Bank M−1
//! corresponds to 100…0)". The paper notes the performance overhead is
//! negligible: "the longest combinational input/output delay in the 1-hot
//! encoder goes through a single logic gate corresponding to the binary
//! encoding of the corresponding minterm."

use crate::error::CoreError;

/// Encoder/decoder between `p`-bit bank ids and `2^p`-bit one-hot codes,
/// with the gate-level cost estimates the paper argues from.
///
/// # Examples
///
/// ```
/// use aging_cache::OneHotEncoder;
///
/// let enc = OneHotEncoder::new(4)?;
/// assert_eq!(enc.encode(0)?, 0b0001);
/// assert_eq!(enc.encode(3)?, 0b1000);
/// assert_eq!(enc.decode(0b0100)?, 2);
/// // One AND gate per minterm, one gate level deep.
/// assert_eq!(enc.gate_levels(), 1);
/// # Ok::<(), aging_cache::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OneHotEncoder {
    banks: u32,
}

impl OneHotEncoder {
    /// Creates an encoder for `banks = 2^p` outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `banks` is a power
    /// of two in `2..=65536`... practically `2..=16` for the paper's
    /// feasible partitionings, but any power of two up to 2^16 encodes.
    pub fn new(banks: u32) -> Result<Self, CoreError> {
        if !(2..=1 << 16).contains(&banks) || !banks.is_power_of_two() {
            return Err(CoreError::InvalidParameter {
                name: "banks",
                value: banks as f64,
                expected: "a power of two in 2..=65536",
            });
        }
        Ok(Self { banks })
    }

    /// Number of one-hot outputs.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Number of select input bits `p`.
    pub fn select_bits(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// Encodes a bank id into its one-hot code.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `bank >= banks`.
    pub fn encode(&self, bank: u32) -> Result<u32, CoreError> {
        if bank >= self.banks {
            return Err(CoreError::InvalidParameter {
                name: "bank",
                value: bank as f64,
                expected: "bank < banks",
            });
        }
        Ok(1u32 << bank)
    }

    /// Decodes a one-hot code back to its bank id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `code` is not a valid
    /// one-hot value for this width (zero, multiple bits, or out of
    /// range).
    pub fn decode(&self, code: u32) -> Result<u32, CoreError> {
        if code.count_ones() != 1 {
            return Err(CoreError::InvalidParameter {
                name: "code",
                value: code as f64,
                expected: "exactly one bit set within the bank width",
            });
        }
        let bank = code.trailing_zeros();
        if bank >= self.banks {
            return Err(CoreError::InvalidParameter {
                name: "code",
                value: code as f64,
                expected: "exactly one bit set within the bank width",
            });
        }
        Ok(bank)
    }

    /// Combinational depth of the encoder: one AND-gate level (each output
    /// is a single minterm of the `p` select bits).
    pub fn gate_levels(&self) -> u32 {
        1
    }

    /// Gate count estimate: one `p`-input AND per output.
    pub fn gate_count(&self) -> u32 {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_encoding_examples() {
        // "Bank 0 corresponds to the M-bit encoding 00...1,
        //  Bank M-1 corresponds to 100...0."
        let enc = OneHotEncoder::new(8).unwrap();
        assert_eq!(enc.encode(0).unwrap(), 0b0000_0001);
        assert_eq!(enc.encode(7).unwrap(), 0b1000_0000);
    }

    #[test]
    fn roundtrip_all_banks() {
        for banks in [2u32, 4, 8, 16] {
            let enc = OneHotEncoder::new(banks).unwrap();
            for b in 0..banks {
                let code = enc.encode(b).unwrap();
                assert_eq!(code.count_ones(), 1);
                assert_eq!(enc.decode(code).unwrap(), b);
            }
        }
    }

    #[test]
    fn rejects_invalid_input() {
        let enc = OneHotEncoder::new(4).unwrap();
        assert!(enc.encode(4).is_err());
        assert!(enc.decode(0).is_err());
        assert!(enc.decode(0b0011).is_err());
        assert!(enc.decode(0b10000).is_err(), "bit beyond bank width");
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(OneHotEncoder::new(0).is_err());
        assert!(OneHotEncoder::new(1).is_err());
        assert!(OneHotEncoder::new(3).is_err());
        assert!(OneHotEncoder::new(4).is_ok());
    }

    #[test]
    fn cost_model_is_single_level() {
        let enc = OneHotEncoder::new(16).unwrap();
        assert_eq!(enc.gate_levels(), 1);
        assert_eq!(enc.gate_count(), 16);
        assert_eq!(enc.select_bits(), 4);
    }
}
