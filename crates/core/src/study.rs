//! The open Study API: declare a scenario grid, run it in parallel,
//! get a structured report.
//!
//! The paper's evaluation is a grid — policies × cache geometries ×
//! workloads × update periods — and this module makes that grid a
//! first-class object instead of four hardcoded table runners:
//!
//! 1. [`StudySpec`] is a declarative builder. Every axis accepts one or
//!    many values; unset axes default to the paper's reference point.
//! 2. [`StudySpec::expand`] produces a [`ScenarioGrid`]: the cartesian
//!    product of the axes, each point a [`Scenario`] with fully derived
//!    seeds (see below).
//! 3. [`ScenarioGrid::run`] executes every scenario — across std
//!    threads by default — and returns a [`StudyReport`] of
//!    [`ScenarioRecord`]s that serializes to JSON
//!    ([`StudyReport::to_json`]) and back ([`StudyReport::from_json`]).
//!    Execution itself lives in the open execution layer
//!    ([`crate::exec`] / [`crate::session`]): `run` is a shim over a
//!    transient [`StudySession`](crate::session::StudySession), and a
//!    long-lived session adds a cross-run simulation memo, a
//!    content-addressed result cache ([`crate::rescache`]), executor
//!    selection and streaming progress on top of the same grid.
//!
//! The historic `table1()..table4()` runners are now ~10-line presets
//! over this engine ([`crate::presets`]) plus pure table views
//! ([`crate::views`]).
//!
//! All three evaluation axes are open registries:
//!
//! * **policies** resolve through the [`PolicyRegistry`];
//! * **workloads** through the [`WorkloadRegistry`], which accepts
//!   suite names (`"sha"`), file-backed trace keys (`csv:path`,
//!   `din:path`, `lackey:path`) and pinned profiles
//!   (`profile:0.1,0.8,0.6,0.3`) interchangeably — file workloads
//!   stream in constant memory through the batched simulator fast
//!   path, with provenance (format + content hash) embedded in every
//!   [`ScenarioRecord`]'s scenario;
//! * **device models** through the
//!   [`ModelRegistry`](crate::model::ModelRegistry): the
//!   [`StudySpec::models`] axis (plus the [`StudySpec::temps_c`] /
//!   [`StudySpec::vdd_low`] / [`StudySpec::failure_pct`] override
//!   axes) sweeps operating points, process variation and retention
//!   margins, each model calibrated exactly once per grid and emitting
//!   its own named metrics into the record's [`Metrics`] map.
//!
//! # Seed derivation
//!
//! Determinism is load-bearing: a grid must produce byte-identical
//! reports whether it runs on 1 thread or 16, today or next year.
//!
//! * **trace seed** — `base_seed + workload_index`. This is exactly the
//!   historic `ExperimentConfig::seed + i` rule, so every measured value
//!   published before the redesign is reproduced bit-for-bit.
//! * **policy seed** — [`derive_policy_seed`]`(base_seed, scenario_id,
//!   policy_name)`, unless the spec pins one with
//!   [`StudySpec::policy_seed`] (the table presets pin `1`, the historic
//!   LFSR seed).
//!
//! # Examples
//!
//! A 2×2×3 grid over sizes, bank counts and policies, run in parallel:
//!
//! ```no_run
//! use aging_cache::model::ModelContext;
//! use aging_cache::study::StudySpec;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let ctx = ModelContext::new();
//! let report = StudySpec::new("size-banks-policy sweep")
//!     .cache_kb([8, 16])
//!     .banks([2, 4])
//!     .policies(["probing", "scrambling", "gray"])
//!     .workload_names(["sha", "CRC32"])?
//!     .trace_cycles(160_000)
//!     .run(&ctx)?;
//! println!("{} scenarios", report.records().len());
//! println!("{}", report.to_json());
//! # Ok(())
//! # }
//! ```
//!
//! Sweeping the device model works the same way — each distinct model
//! calibrates once, and every record carries the model's named metrics:
//!
//! ```no_run
//! # use aging_cache::model::ModelContext;
//! # use aging_cache::study::StudySpec;
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! # let ctx = ModelContext::new();
//! let report = StudySpec::new("temperature sweep")
//!     .models(["nbti-45nm"])
//!     .temps_c([45.0, 85.0, 125.0])
//!     .workload_names(["sha"])?
//!     .trace_cycles(160_000)
//!     .run(&ctx)?;
//! for r in report.records() {
//!     println!("{}: LT {:.2} y", r.scenario.model, r.lt_years());
//! }
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::json::Json;
use crate::model::{self, Metrics, ModelContext, ModelParams};
use crate::registry::{derive_policy_seed, PolicyRegistry};
use crate::session;
use crate::workload::{SyntheticWorkload, Workload, WorkloadRegistry, WorkloadSourceInfo};
use cache_sim::{CacheGeometry, ReplacementRegistry, SimError, DEFAULT_REPLACEMENT};
use std::sync::Arc;
use trace_synth::{suite, WorkloadProfile};

/// Default trace length: the paper pipeline's reference horizon.
pub const DEFAULT_TRACE_CYCLES: u64 = 320_000;

/// Default base seed (the historic `ExperimentConfig::paper_reference`).
pub const DEFAULT_BASE_SEED: u64 = 1000;

/// A declarative study: axes over the evaluation grid.
///
/// Defaults describe the paper's reference point (16 kB cache, 16 B
/// lines, 4 banks, daily updates, the Probing policy, the full
/// 18-workload MediaBench-like suite). The workload axis is open:
/// synthetic profiles and file-backed traces (`csv:path`, `din:path`,
/// `lackey:path` keys via [`StudySpec::workload_names`]) mix freely.
#[derive(Clone)]
pub struct StudySpec {
    // Fields are crate-visible so `crate::check` can validate a spec
    // statically without widening the public builder API.
    pub(crate) name: String,
    pub(crate) cache_bytes: Vec<u64>,
    pub(crate) line_bytes: Vec<u32>,
    pub(crate) banks: Vec<u32>,
    pub(crate) ways: Vec<u32>,
    pub(crate) replacements: Vec<String>,
    pub(crate) l2_cache_bytes: Vec<u64>,
    pub(crate) l2_ways: Vec<u32>,
    pub(crate) update_days: Vec<f64>,
    pub(crate) policies: Vec<String>,
    pub(crate) workloads: Vec<Arc<dyn Workload>>,
    pub(crate) models: Vec<String>,
    pub(crate) temps_c: Vec<f64>,
    pub(crate) vdd_lows: Vec<f64>,
    pub(crate) failure_pcts: Vec<f64>,
    pub(crate) trace_cycles: u64,
    pub(crate) base_seed: u64,
    pub(crate) policy_seed: Option<u64>,
    pub(crate) threads: Option<usize>,
    pub(crate) registry: PolicyRegistry,
    pub(crate) workload_registry: WorkloadRegistry,
    pub(crate) replacement_registry: ReplacementRegistry,
}

impl std::fmt::Debug for StudySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudySpec")
            .field("name", &self.name)
            .field("cache_bytes", &self.cache_bytes)
            .field("line_bytes", &self.line_bytes)
            .field("banks", &self.banks)
            .field("ways", &self.ways)
            .field("replacements", &self.replacements)
            .field("l2_cache_bytes", &self.l2_cache_bytes)
            .field("l2_ways", &self.l2_ways)
            .field("update_days", &self.update_days)
            .field("policies", &self.policies)
            .field(
                "workloads",
                &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            )
            .field("models", &self.models)
            .field("temps_c", &self.temps_c)
            .field("vdd_lows", &self.vdd_lows)
            .field("failure_pcts", &self.failure_pcts)
            .field("trace_cycles", &self.trace_cycles)
            .field("base_seed", &self.base_seed)
            .finish_non_exhaustive()
    }
}

impl StudySpec {
    /// Creates a spec at the paper's reference point.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cache_bytes: vec![16 * 1024],
            line_bytes: vec![16],
            banks: vec![4],
            ways: vec![1],
            replacements: vec![DEFAULT_REPLACEMENT.into()],
            l2_cache_bytes: vec![0],
            l2_ways: vec![1],
            update_days: vec![1.0],
            policies: vec!["probing".into()],
            // Suite order (not registry name order): the historic
            // `seed + i` rule keys off this ordering.
            workloads: suite::mediabench()
                .into_iter()
                .map(|p| Arc::new(SyntheticWorkload::new(p)) as Arc<dyn Workload>)
                .collect(),
            models: vec![model::DEFAULT_MODEL.into()],
            temps_c: Vec::new(),
            vdd_lows: Vec::new(),
            failure_pcts: Vec::new(),
            trace_cycles: DEFAULT_TRACE_CYCLES,
            base_seed: DEFAULT_BASE_SEED,
            policy_seed: None,
            threads: None,
            registry: PolicyRegistry::builtin(),
            workload_registry: WorkloadRegistry::builtin(),
            replacement_registry: ReplacementRegistry::global().clone(),
        }
    }

    /// Sets the cache-size axis (kB); one or many values.
    #[must_use]
    pub fn cache_kb(mut self, kb: impl IntoIterator<Item = u64>) -> Self {
        self.cache_bytes = kb.into_iter().map(|k| k * 1024).collect();
        self
    }

    /// Sets the cache-size axis in raw bytes (for non-kB-aligned sizes).
    #[must_use]
    pub fn cache_bytes(mut self, bytes: impl IntoIterator<Item = u64>) -> Self {
        self.cache_bytes = bytes.into_iter().collect();
        self
    }

    /// Sets the line-size axis (bytes); one or many values.
    #[must_use]
    pub fn line_bytes(mut self, bytes: impl IntoIterator<Item = u32>) -> Self {
        self.line_bytes = bytes.into_iter().collect();
        self
    }

    /// Sets the bank-count axis; one or many values.
    #[must_use]
    pub fn banks(mut self, banks: impl IntoIterator<Item = u32>) -> Self {
        self.banks = banks.into_iter().collect();
        self
    }

    /// Sets the associativity axis (ways per set, `1` = direct-mapped);
    /// one or many values.
    #[must_use]
    pub fn ways(mut self, ways: impl IntoIterator<Item = u32>) -> Self {
        self.ways = ways.into_iter().collect();
        self
    }

    /// Sets the replacement-policy axis by registry name (`"lru"`,
    /// `"mru"`, or a name registered in the spec's
    /// [`ReplacementRegistry`] — see
    /// [`StudySpec::replacement_registry`]); one or many values. Only
    /// meaningful for set-associative geometries (`ways > 1`): with one
    /// way there is nothing to choose a victim among.
    #[must_use]
    pub fn replacement<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.replacements = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the L2-capacity axis (kB); `0` means no L2 (single-level,
    /// the default). A non-zero value composes a two-level hierarchy
    /// where the L2 access stream is exactly the L1 miss stream; the
    /// record then carries `sleep_fraction_l2` / `lt_years_l2` metrics.
    #[must_use]
    pub fn l2_cache_kb(mut self, kb: impl IntoIterator<Item = u64>) -> Self {
        self.l2_cache_bytes = kb.into_iter().map(|k| k * 1024).collect();
        self
    }

    /// Sets the L2-capacity axis in raw bytes (`0` = no L2).
    #[must_use]
    pub fn l2_cache_bytes(mut self, bytes: impl IntoIterator<Item = u64>) -> Self {
        self.l2_cache_bytes = bytes.into_iter().collect();
        self
    }

    /// Sets the L2 associativity axis; one or many values. Applies only
    /// to grid points with an L2 (`l2_cache_bytes > 0`): no-L2 points
    /// collapse this axis to a single scenario.
    #[must_use]
    pub fn l2_ways(mut self, ways: impl IntoIterator<Item = u32>) -> Self {
        self.l2_ways = ways.into_iter().collect();
        self
    }

    /// Replaces the replacement-policy registry (to resolve custom
    /// replacement policies by name in [`StudySpec::replacement`]) —
    /// the same hook shape as [`StudySpec::registry`] for indexing
    /// policies.
    #[must_use]
    pub fn replacement_registry(mut self, registry: ReplacementRegistry) -> Self {
        self.replacement_registry = registry;
        self
    }

    /// Sets the update-period axis (days between re-indexing updates);
    /// one or many values.
    #[must_use]
    pub fn update_days(mut self, days: impl IntoIterator<Item = f64>) -> Self {
        self.update_days = days.into_iter().collect();
        self
    }

    /// Sets the policy axis by registry name; one or many values.
    #[must_use]
    pub fn policies<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.policies = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the workload axis to explicit synthetic profiles; one or
    /// many values.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadProfile>) -> Self {
        self.workloads = workloads
            .into_iter()
            .map(|p| Arc::new(SyntheticWorkload::new(p)) as Arc<dyn Workload>)
            .collect();
        self
    }

    /// Sets the workload axis to explicit [`Workload`] objects (mixing
    /// synthetic and file-backed freely); one or many values.
    #[must_use]
    pub fn workload_objects(
        mut self,
        workloads: impl IntoIterator<Item = Arc<dyn Workload>>,
    ) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// Sets the workload axis by registry key: suite names (`"sha"`),
    /// user-registered names, and file-backed `format:path` keys
    /// (`csv:…`, `din:…`, `lackey:…`, `file:…`) all resolve.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownWorkload`] for an unresolvable key,
    /// or [`CoreError::Trace`] when a trace file cannot be read.
    pub fn workload_names<S: AsRef<str>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Result<Self, CoreError> {
        let mut workloads = Vec::new();
        for name in names {
            workloads.push(self.workload_registry.resolve(name.as_ref())?);
        }
        self.workloads = workloads;
        Ok(self)
    }

    /// Replaces the workload registry (to resolve custom workloads by
    /// name in [`StudySpec::workload_names`]).
    #[must_use]
    pub fn workload_registry(mut self, registry: WorkloadRegistry) -> Self {
        self.workload_registry = registry;
        self
    }

    /// Sets the device-model axis by registry key; one or many values.
    ///
    /// Keys resolve through the
    /// [`ModelRegistry`](crate::model::ModelRegistry): built-in names
    /// (`"nbti-45nm"`, `"drv"`), parameterized family keys
    /// (`"nbti:temp=105"`, `"variation:30"`) and user-registered names
    /// all work. Keys canonicalize at expansion, so aliases of the
    /// same operating point share one calibration.
    #[must_use]
    pub fn models<S: Into<String>>(mut self, keys: impl IntoIterator<Item = S>) -> Self {
        self.models = keys.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the operating-temperature axis (°C); one or many values.
    ///
    /// Each value is applied as a `temp=` override to every key on the
    /// model axis (overrides win over parameters already in a key), so
    /// `models(["nbti-45nm"]).temps_c([45.0, 125.0])` expands to the
    /// `nbti:temp=45` and `nbti:temp=125` models.
    #[must_use]
    pub fn temps_c(mut self, temps: impl IntoIterator<Item = f64>) -> Self {
        self.temps_c = temps.into_iter().collect();
        self
    }

    /// Sets the drowsy-rail axis (V); one or many values, applied as
    /// `vlow=` overrides to every key on the model axis.
    #[must_use]
    pub fn vdd_low(mut self, volts: impl IntoIterator<Item = f64>) -> Self {
        self.vdd_lows = volts.into_iter().collect();
        self
    }

    /// Sets the failure-criterion axis (percent SNM degradation); one
    /// or many values, applied as `fail=` overrides to every key on
    /// the model axis.
    #[must_use]
    pub fn failure_pct(mut self, pcts: impl IntoIterator<Item = f64>) -> Self {
        self.failure_pcts = pcts.into_iter().collect();
        self
    }

    /// Sets the simulated trace length in cycles.
    #[must_use]
    pub fn trace_cycles(mut self, cycles: u64) -> Self {
        self.trace_cycles = cycles;
        self
    }

    /// Sets the base seed (see the module docs for the derivation chain).
    #[must_use]
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Pins the policy seed for *every* scenario instead of deriving it.
    /// The table presets pin `1`, the historic LFSR seed.
    #[must_use]
    pub fn policy_seed(mut self, seed: u64) -> Self {
        self.policy_seed = Some(seed);
        self
    }

    /// Caps the worker-thread count (`1` forces sequential execution).
    /// Defaults to available parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replaces the policy registry (to resolve custom policies).
    #[must_use]
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// The study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base seed currently configured.
    pub fn base_seed_value(&self) -> u64 {
        self.base_seed
    }

    /// Composes the model axis: every model key crossed with the
    /// temperature / drowsy-rail / failure-criterion override axes,
    /// canonicalized.
    pub(crate) fn composed_model_keys(&self) -> Result<Vec<String>, CoreError> {
        fn axis(values: &[f64]) -> Vec<Option<f64>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().copied().map(Some).collect()
            }
        }
        let mut keys = Vec::new();
        for key in &self.models {
            for &temp_c in &axis(&self.temps_c) {
                for &vdd_low in &axis(&self.vdd_lows) {
                    for &fail_pct in &axis(&self.failure_pcts) {
                        keys.push(model::compose(
                            key,
                            ModelParams {
                                temp_c,
                                vdd_low,
                                sleep_gated: None,
                                fail_pct,
                            },
                        )?);
                    }
                }
            }
        }
        Ok(keys)
    }

    /// Expands the axes into the cartesian scenario grid.
    ///
    /// Expansion order (outermost to innermost): cache size, line size,
    /// banks, ways, replacement policy, L2 size, L2 ways, device model,
    /// update period, policy, workload. Scenario ids number that order,
    /// so the innermost workload axis matches the historic `seed + i`
    /// suite loop (and grids that leave the geometry axes at their
    /// defaults keep their pre-geometry-axis ids).
    ///
    /// # Errors
    ///
    /// Rejects empty axes, unknown policy or replacement names,
    /// malformed model keys, invalid geometries (including `ways` that
    /// don't divide the line capacity and an L2 smaller than the L1)
    /// and profile/bank-count mismatches up front, so `run` can only
    /// fail on model-level errors.
    pub fn expand(&self) -> Result<ScenarioGrid, CoreError> {
        for (axis, len) in [
            ("cache_bytes", self.cache_bytes.len()),
            ("line_bytes", self.line_bytes.len()),
            ("banks", self.banks.len()),
            ("ways", self.ways.len()),
            ("replacements", self.replacements.len()),
            ("l2_cache_bytes", self.l2_cache_bytes.len()),
            ("l2_ways", self.l2_ways.len()),
            ("update_days", self.update_days.len()),
            ("policies", self.policies.len()),
            ("workloads", self.workloads.len()),
            ("models", self.models.len()),
        ] {
            if len == 0 {
                return Err(CoreError::Report {
                    message: format!("axis `{axis}` is empty"),
                });
            }
        }
        for name in &self.policies {
            if self.registry.get(name).is_none() {
                return Err(CoreError::UnknownPolicy {
                    name: name.clone(),
                    known: self.registry.names().join(", "),
                });
            }
        }
        for name in &self.replacements {
            self.replacement_registry.resolve(name)?;
        }
        for &days in &self.update_days {
            if days <= 0.0 || days.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "update_days",
                    value: days,
                    expected: "a positive update period",
                });
            }
        }
        for &t in &self.temps_c {
            if t <= -273.15 || t.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "temps_c",
                    value: t,
                    expected: "a temperature above absolute zero (°C)",
                });
            }
        }
        for &v in &self.vdd_lows {
            if v <= 0.0 || v.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "vdd_low",
                    value: v,
                    expected: "a positive drowsy rail voltage",
                });
            }
        }
        for &pct in &self.failure_pcts {
            if pct <= 0.0 || pct >= 100.0 || pct.is_nan() {
                return Err(CoreError::InvalidParameter {
                    name: "failure_pct",
                    value: pct,
                    expected: "a failure criterion in (0, 100) percent",
                });
            }
        }
        let model_keys = self.composed_model_keys()?;
        let mut scenarios = Vec::new();
        for &bytes in &self.cache_bytes {
            for &line in &self.line_bytes {
                for &banks in &self.banks {
                    for &ways in &self.ways {
                        // Validate the L1 geometry once per
                        // (size, line, ways, banks).
                        CacheGeometry::new(bytes, line, ways, banks)?;
                        for w in &self.workloads {
                            if let Some(profile) = w.pinned_profile() {
                                if profile.len() != banks as usize {
                                    return Err(CoreError::Report {
                                        message: format!(
                                        "workload `{}` pins {} banks but the grid asks for {banks}",
                                        w.name(),
                                        profile.len()
                                    ),
                                    });
                                }
                            }
                        }
                        for replacement in &self.replacements {
                            for &l2_bytes in &self.l2_cache_bytes {
                                for (l2wi, &l2_ways_raw) in self.l2_ways.iter().enumerate() {
                                    // Without an L2 there is no L2 geometry to
                                    // sweep: collapse the l2_ways axis to a
                                    // single scenario instead of emitting
                                    // duplicate grid points.
                                    if l2_bytes == 0 && l2wi > 0 {
                                        continue;
                                    }
                                    let l2_ways = if l2_bytes == 0 { 1 } else { l2_ways_raw };
                                    if l2_bytes > 0 {
                                        CacheGeometry::new(l2_bytes, line, l2_ways, banks)?;
                                        if l2_bytes < bytes {
                                            return Err(CoreError::Sim(
                                                SimError::InvalidGeometry {
                                                    name: "l2_cache_bytes",
                                                    value: l2_bytes,
                                                    expected: "an L2 at least as large as the L1",
                                                },
                                            ));
                                        }
                                    }
                                    for model in &model_keys {
                                        for &days in &self.update_days {
                                            for policy in &self.policies {
                                                for (wi, w) in self.workloads.iter().enumerate() {
                                                    let id = scenarios.len();
                                                    scenarios.push(Scenario {
                                                        id,
                                                        cache_bytes: bytes,
                                                        line_bytes: line,
                                                        banks,
                                                        ways,
                                                        replacement: replacement.clone(),
                                                        l2_cache_bytes: l2_bytes,
                                                        l2_ways,
                                                        update_days: days,
                                                        policy: policy.clone(),
                                                        workload: w.name().to_string(),
                                                        workload_index: wi,
                                                        workload_source: w.source_info(),
                                                        model: model.clone(),
                                                        trace_cycles: self.trace_cycles,
                                                        trace_seed: self.base_seed + wi as u64,
                                                        policy_seed: self
                                                            .policy_seed
                                                            .unwrap_or_else(|| {
                                                                derive_policy_seed(
                                                                    self.base_seed,
                                                                    id as u64,
                                                                    policy,
                                                                )
                                                            }),
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(ScenarioGrid {
            name: self.name.clone(),
            scenarios,
            workloads: self.workloads.clone(),
            registry: self.registry.clone(),
            replacement_registry: self.replacement_registry.clone(),
            threads: self.threads,
        })
    }

    /// Expands and runs the grid — the one-call path. Accepts a
    /// [`ModelContext`] or the legacy
    /// [`ExperimentContext`](crate::experiment::ExperimentContext)
    /// shim.
    ///
    /// # Errors
    ///
    /// Propagates expansion and execution errors.
    pub fn run<C: AsRef<ModelContext>>(&self, ctx: &C) -> Result<StudyReport, CoreError> {
        self.expand()?.run(ctx)
    }
}

/// One fully resolved point of the evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the expanded grid (also the record order).
    pub id: usize,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Number of uniform banks `M`.
    pub banks: u32,
    /// Set-associative ways per set (`1` = direct-mapped, the historic
    /// reference point).
    pub ways: u32,
    /// Registry name of the replacement policy
    /// ([`DEFAULT_REPLACEMENT`] unless the spec set the axis).
    pub replacement: String,
    /// L2 capacity in bytes; `0` means no L2 (a single-level study).
    pub l2_cache_bytes: u64,
    /// L2 ways per set (`1` unless swept; only meaningful when
    /// `l2_cache_bytes > 0`).
    pub l2_ways: u32,
    /// Days between re-indexing updates.
    pub update_days: f64,
    /// Registry name of the indexing policy.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// Index of the workload on the spec's workload axis.
    pub workload_index: usize,
    /// Provenance of a file-backed workload (trace format + content
    /// hash), `None` for synthetic workloads. Serialized into reports
    /// so published results name exactly which trace produced them.
    pub workload_source: Option<WorkloadSourceInfo>,
    /// Canonical key of the device/aging model
    /// ([`model::DEFAULT_MODEL`] unless the spec set a model axis).
    pub model: String,
    /// Simulated trace length in cycles.
    pub trace_cycles: u64,
    /// Derived trace seed (`base_seed + workload_index`).
    pub trace_seed: u64,
    /// Derived (or pinned) policy seed.
    pub policy_seed: u64,
}

impl Scenario {
    pub(crate) fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::Num(self.id as f64)),
            ("cache_bytes", Json::Num(self.cache_bytes as f64)),
            ("line_bytes", Json::Num(self.line_bytes as f64)),
            ("banks", Json::Num(self.banks as f64)),
            ("update_days", Json::Num(self.update_days)),
            ("policy", Json::Str(self.policy.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("workload_index", Json::Num(self.workload_index as f64)),
            ("trace_cycles", Json::Num(self.trace_cycles as f64)),
            // Seeds are full-range u64s; a JSON number (f64) only holds
            // 53 bits exactly, so emit them as decimal strings.
            ("trace_seed", Json::Str(self.trace_seed.to_string())),
            ("policy_seed", Json::Str(self.policy_seed.to_string())),
        ];
        // Every geometry field below is omitted at its default, so
        // reports written before the geometry axis opened parse (and
        // emit) unchanged — and a ways=1 single-level study emits the
        // exact historic bytes.
        if self.ways != 1 {
            pairs.push(("ways", Json::Num(self.ways as f64)));
        }
        if self.replacement != DEFAULT_REPLACEMENT {
            pairs.push(("replacement", Json::Str(self.replacement.clone())));
        }
        if self.l2_cache_bytes != 0 {
            pairs.push(("l2_cache_bytes", Json::Num(self.l2_cache_bytes as f64)));
            if self.l2_ways != 1 {
                pairs.push(("l2_ways", Json::Num(self.l2_ways as f64)));
            }
        }
        // Omitted for the reference model, so reports written before
        // the model axis opened parse (and emit) unchanged.
        if self.model != model::DEFAULT_MODEL {
            pairs.push(("model", Json::Str(self.model.clone())));
        }
        // Omitted entirely for synthetic workloads, so reports written
        // before the workload axis opened parse (and emit) unchanged.
        if let Some(source) = &self.workload_source {
            pairs.push((
                "workload_source",
                Json::obj(vec![
                    ("format", Json::Str(source.format.clone())),
                    ("hash", Json::Str(source.hash.clone())),
                    ("path", Json::Str(source.path.clone())),
                ]),
            ));
        }
        Json::obj(pairs)
    }

    fn u64_field(v: &Json, key: &str) -> Result<u64, CoreError> {
        let field = v.field(key)?;
        match field.as_str(key) {
            Ok(s) => s.parse::<u64>().map_err(|_| CoreError::Report {
                message: format!("field `{key}` is not a u64: `{s}`"),
            }),
            Err(_) => Ok(field.as_num(key)? as u64),
        }
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, CoreError> {
        let workload_source = match v.get("workload_source") {
            None => None,
            Some(s) => Some(WorkloadSourceInfo {
                format: s.field("format")?.as_str("format")?.to_string(),
                hash: s.field("hash")?.as_str("hash")?.to_string(),
                path: s.field("path")?.as_str("path")?.to_string(),
            }),
        };
        Ok(Self {
            workload_source,
            model: match v.get("model") {
                Some(m) => m.as_str("model")?.to_string(),
                None => model::DEFAULT_MODEL.to_string(),
            },
            id: v.field("id")?.as_num("id")? as usize,
            cache_bytes: v.field("cache_bytes")?.as_num("cache_bytes")? as u64,
            line_bytes: v.field("line_bytes")?.as_num("line_bytes")? as u32,
            banks: v.field("banks")?.as_num("banks")? as u32,
            ways: match v.get("ways") {
                Some(n) => n.as_num("ways")? as u32,
                None => 1,
            },
            replacement: match v.get("replacement") {
                Some(r) => r.as_str("replacement")?.to_string(),
                None => DEFAULT_REPLACEMENT.to_string(),
            },
            l2_cache_bytes: match v.get("l2_cache_bytes") {
                Some(n) => n.as_num("l2_cache_bytes")? as u64,
                None => 0,
            },
            l2_ways: match v.get("l2_ways") {
                Some(n) => n.as_num("l2_ways")? as u32,
                None => 1,
            },
            update_days: v.field("update_days")?.as_num("update_days")?,
            policy: v.field("policy")?.as_str("policy")?.to_string(),
            workload: v.field("workload")?.as_str("workload")?.to_string(),
            workload_index: v.field("workload_index")?.as_num("workload_index")? as usize,
            trace_cycles: v.field("trace_cycles")?.as_num("trace_cycles")? as u64,
            trace_seed: Self::u64_field(v, "trace_seed")?,
            policy_seed: Self::u64_field(v, "policy_seed")?,
        })
    }
}

/// An expanded grid, ready to run.
#[derive(Clone)]
pub struct ScenarioGrid {
    name: String,
    scenarios: Vec<Scenario>,
    workloads: Vec<Arc<dyn Workload>>,
    registry: PolicyRegistry,
    replacement_registry: ReplacementRegistry,
    threads: Option<usize>,
}

impl std::fmt::Debug for ScenarioGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioGrid")
            .field("name", &self.name)
            .field("scenarios", &self.scenarios.len())
            .field(
                "workloads",
                &self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl ScenarioGrid {
    /// A grid assembled from pre-expanded parts — the distribution
    /// layer's path for rebuilding worker subgrids from a manifest.
    /// Scenarios keep whatever ids they carry (worker subgrids keep
    /// *global* ids so errors name the right grid point), and the full
    /// workload axis rides along so `workload_index` stays valid.
    pub(crate) fn from_parts(
        name: String,
        scenarios: Vec<Scenario>,
        workloads: Vec<Arc<dyn Workload>>,
        registry: PolicyRegistry,
        replacement_registry: ReplacementRegistry,
    ) -> Self {
        Self {
            name,
            scenarios,
            workloads,
            registry,
            replacement_registry,
            threads: None,
        }
    }

    /// The grid (study) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenarios, in id order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The workload objects the scenarios' `workload_index` values
    /// resolve into.
    pub(crate) fn workloads(&self) -> &[Arc<dyn Workload>] {
        &self.workloads
    }

    /// The policy registry scenarios build their mappings from.
    pub(crate) fn policy_registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// The replacement-policy registry scenarios resolve their
    /// `replacement` names from.
    pub(crate) fn replacement_registry(&self) -> &ReplacementRegistry {
        &self.replacement_registry
    }

    /// The spec-level worker cap, if one was set.
    pub(crate) fn threads_cap(&self) -> Option<usize> {
        self.threads
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the grid is empty (it never is after `expand`).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario and collects the report — the legacy
    /// one-shot path, now a thin shim over the execution layer: a
    /// transient session with a fresh simulation memo, no result
    /// cache, and the default (threaded) executor. Byte-identical to
    /// the historic behavior; anything that runs more than one grid
    /// should hold a [`StudySession`](crate::session::StudySession)
    /// instead.
    ///
    /// The context is anything that dereferences to a
    /// [`ModelContext`] — a `ModelContext` itself, or the legacy
    /// [`ExperimentContext`](crate::experiment::ExperimentContext)
    /// shim. All distinct device models calibrate up front, exactly
    /// once each (the *caller's* context memoizes per canonical key,
    /// and keeps its memo), before any worker starts.
    ///
    /// Scenarios execute across worker threads (capped by
    /// [`StudySpec::threads`], defaulting to available parallelism);
    /// records land in scenario-id order, so the report — including its
    /// JSON emission — is byte-identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Returns model resolution/calibration errors, the first scenario
    /// error by grid order, or [`CoreError::ScenarioPanicked`] if a
    /// scenario task panicked.
    pub fn run<C: AsRef<ModelContext>>(&self, ctx: &C) -> Result<StudyReport, CoreError> {
        session::run_grid_oneshot(self, ctx.as_ref())
    }
}

/// Measured results for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The grid point this record measures.
    pub scenario: Scenario,
    /// Cycles actually simulated. Equals `scenario.trace_cycles` for
    /// synthetic workloads; a file-backed trace shorter than the cap
    /// ends the run early, and this records the truth (pinned-profile
    /// workloads simulate nothing and record 0).
    pub sim_cycles: u64,
    /// Energy saving vs the monolithic always-on cache (`NaN` for
    /// pinned-profile workloads — there is no trace to measure).
    pub esav: f64,
    /// Cache miss rate on the trace (`NaN` for pinned profiles).
    pub miss_rate: f64,
    /// Per-bank useful idleness (Table I's metric).
    pub useful_idleness: Vec<f64>,
    /// Per-bank sleep fractions (what the aging model consumes).
    pub sleep_fractions: Vec<f64>,
    /// The scenario model's named outputs, in the model's emission
    /// order. The reference model emits `lt0_years` / `lt_years`; see
    /// [`ScenarioRecord::lt0_years`] / [`ScenarioRecord::lt_years`]
    /// for the historic accessors.
    pub metrics: Metrics,
}

impl ScenarioRecord {
    /// Record-level JSON field names a model metric may not shadow
    /// (metrics are inlined as top-level record fields; the grid
    /// runner rejects models that emit one of these).
    pub const RESERVED_FIELDS: [&'static str; 6] = [
        "scenario",
        "sim_cycles",
        "esav",
        "miss_rate",
        "useful_idleness",
        "sleep_fractions",
    ];

    /// Average useful idleness over the banks.
    pub fn avg_useful_idleness(&self) -> f64 {
        self.useful_idleness.iter().sum::<f64>() / self.useful_idleness.len() as f64
    }

    /// Looks up a named metric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name)
    }

    /// Lifetime under the identity policy (no re-indexing), years —
    /// the historic accessor for the `lt0_years` metric. `NaN` if the
    /// scenario's model does not emit it.
    pub fn lt0_years(&self) -> f64 {
        self.metrics.get(model::METRIC_LT0).unwrap_or(f64::NAN)
    }

    /// Lifetime under the scenario's policy, years — the historic
    /// accessor for the `lt_years` metric. `NaN` if the scenario's
    /// model does not emit it.
    pub fn lt_years(&self) -> f64 {
        self.metrics.get(model::METRIC_LT).unwrap_or(f64::NAN)
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("scenario", self.scenario.to_json()),
            ("sim_cycles", Json::Num(self.sim_cycles as f64)),
            ("esav", Json::Num(self.esav)),
            ("miss_rate", Json::Num(self.miss_rate)),
            ("useful_idleness", Json::nums(&self.useful_idleness)),
            ("sleep_fractions", Json::nums(&self.sleep_fractions)),
        ];
        // Metrics are inlined as top-level fields in emission order:
        // the reference model's `lt0_years`/`lt_years` land exactly
        // where the pre-model-axis codec put them, so historic reports
        // round-trip byte-identically.
        for (name, value) in self.metrics.iter() {
            pairs.push((name, Json::Num(value)));
        }
        Json::obj(pairs)
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, CoreError> {
        let nums = |key: &str| -> Result<Vec<f64>, CoreError> {
            v.field(key)?
                .as_arr(key)?
                .iter()
                .map(|item| item.as_num(key).map_err(CoreError::from))
                .collect()
        };
        let scenario = Scenario::from_json(v.field("scenario")?)?;
        // Reports written before the workload axis opened lack the
        // field; for them the requested length is the simulated length.
        let sim_cycles = match v.get("sim_cycles") {
            Some(n) => n.as_num("sim_cycles")? as u64,
            None => scenario.trace_cycles,
        };
        // Every unclaimed field is a metric, in document order — which
        // is exactly how a PR-2-era `lt0_years`/`lt_years` pair parses
        // into the metrics map.
        let Json::Obj(pairs) = v else {
            return Err(CoreError::Report {
                message: "scenario record is not an object".into(),
            });
        };
        let mut metrics = Metrics::new();
        for (key, value) in pairs {
            if Self::RESERVED_FIELDS.contains(&key.as_str()) {
                continue;
            }
            metrics.push(key.as_str(), value.as_num(key)?);
        }
        Ok(Self {
            scenario,
            sim_cycles,
            esav: v.field("esav")?.as_num("esav")?,
            miss_rate: v.field("miss_rate")?.as_num("miss_rate")?,
            useful_idleness: nums("useful_idleness")?,
            sleep_fractions: nums("sleep_fractions")?,
            metrics,
        })
    }
}

/// A completed study: scenario records in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    name: String,
    records: Vec<ScenarioRecord>,
}

impl StudyReport {
    /// Assembles a report from records (for views over filtered data).
    pub fn from_records(name: impl Into<String>, records: Vec<ScenarioRecord>) -> Self {
        Self {
            name: name.into(),
            records,
        }
    }

    /// The study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All records, in scenario-id order.
    pub fn records(&self) -> &[ScenarioRecord] {
        &self.records
    }

    /// Records matching a predicate, preserving order.
    pub fn select<'a>(
        &'a self,
        mut pred: impl FnMut(&ScenarioRecord) -> bool + 'a,
    ) -> impl Iterator<Item = &'a ScenarioRecord> {
        self.records.iter().filter(move |r| pred(r))
    }

    /// Mean of a metric over records matching a predicate; `None` if
    /// nothing matches.
    pub fn mean_over(
        &self,
        pred: impl FnMut(&ScenarioRecord) -> bool,
        metric: impl Fn(&ScenarioRecord) -> f64,
    ) -> Option<f64> {
        let mut pred = pred;
        let (mut sum, mut n) = (0.0f64, 0usize);
        for r in self.records.iter().filter(|r| pred(r)) {
            sum += metric(r);
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Serializes to deterministic compact JSON.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "records",
                Json::Arr(self.records.iter().map(ScenarioRecord::to_json).collect()),
            ),
        ])
        .emit()
    }

    /// Parses a report back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let v = Json::parse(text)?;
        let records = v
            .field("records")?
            .as_arr("records")?
            .iter()
            .map(ScenarioRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name: v.field("name")?.as_str("name")?.to_string(),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> StudySpec {
        StudySpec::new("tiny")
            .workload_names(["sha", "CRC32"])
            .unwrap()
            .trace_cycles(40_000)
    }

    #[test]
    fn expansion_order_and_seeds() {
        let grid = tiny_spec()
            .cache_kb([8, 16])
            .policies(["probing", "gray"])
            .expand()
            .unwrap();
        assert_eq!(grid.len(), 2 * 2 * 2);
        let s = grid.scenarios();
        // Workload is the innermost axis.
        assert_eq!(s[0].workload, "sha");
        assert_eq!(s[1].workload, "CRC32");
        assert_eq!(s[0].policy, "probing");
        assert_eq!(s[2].policy, "gray");
        assert_eq!(s[0].cache_bytes, 8 * 1024);
        assert_eq!(s[4].cache_bytes, 16 * 1024);
        // Historic trace-seed rule.
        assert_eq!(s[0].trace_seed, DEFAULT_BASE_SEED);
        assert_eq!(s[1].trace_seed, DEFAULT_BASE_SEED + 1);
        // Ids number the grid order.
        for (i, sc) in s.iter().enumerate() {
            assert_eq!(sc.id, i);
        }
    }

    #[test]
    fn empty_axis_is_rejected() {
        let e = tiny_spec().policies(Vec::<String>::new()).expand();
        assert!(matches!(e, Err(CoreError::Report { .. })));
    }

    #[test]
    fn unknown_policy_is_rejected_at_expansion() {
        let e = tiny_spec().policies(["warp-drive"]).expand();
        assert!(matches!(e, Err(CoreError::UnknownPolicy { .. })));
    }

    #[test]
    fn unknown_workload_is_rejected() {
        assert!(StudySpec::new("x").workload_names(["not-a-bench"]).is_err());
    }

    #[test]
    fn bad_update_period_is_rejected() {
        let e = tiny_spec().update_days([0.0]).expand();
        assert!(matches!(e, Err(CoreError::InvalidParameter { .. })));
    }

    #[test]
    fn pinned_policy_seed_applies_everywhere() {
        let grid = tiny_spec().policy_seed(7).expand().unwrap();
        assert!(grid.scenarios().iter().all(|s| s.policy_seed == 7));
        let derived = tiny_spec().expand().unwrap();
        assert_ne!(
            derived.scenarios()[0].policy_seed,
            derived.scenarios()[1].policy_seed
        );
    }

    #[test]
    fn short_file_trace_records_actual_cycles() {
        // A file-backed trace shorter than trace_cycles must not claim
        // the full requested length in its record.
        let accesses: Vec<_> = suite::by_name("sha")
            .unwrap()
            .trace(9)
            .take(5_000)
            .collect();
        let mut text = String::new();
        trace_synth::formats::write_csv(&mut text, &accesses);
        let dir = std::env::temp_dir().join("nbti-study-short-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.csv");
        std::fs::write(&path, &text).unwrap();

        let ctx = ModelContext::new();
        let report = StudySpec::new("short")
            .workload_names([format!("csv:{}", path.display())])
            .unwrap()
            .trace_cycles(40_000)
            .run(&ctx)
            .unwrap();
        let r = &report.records()[0];
        assert_eq!(r.scenario.trace_cycles, 40_000, "the request is recorded");
        assert_eq!(r.sim_cycles, 5_000, "the truth is recorded");
        // And it survives the JSON round-trip.
        let back = StudyReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.records()[0].sim_cycles, 5_000);
    }

    #[test]
    fn report_json_roundtrip_without_running() {
        let scenario = Scenario {
            id: 0,
            cache_bytes: 16 * 1024,
            line_bytes: 16,
            banks: 4,
            ways: 1,
            replacement: DEFAULT_REPLACEMENT.into(),
            l2_cache_bytes: 0,
            l2_ways: 1,
            update_days: 1.0,
            policy: "probing".into(),
            workload: "sha".into(),
            workload_index: 0,
            workload_source: None,
            model: model::DEFAULT_MODEL.into(),
            trace_cycles: 1000,
            trace_seed: 1000,
            policy_seed: 1,
        };
        let report = StudyReport::from_records(
            "roundtrip",
            vec![ScenarioRecord {
                scenario,
                sim_cycles: 1000,
                esav: 0.443,
                miss_rate: 0.01,
                useful_idleness: vec![0.1, 0.9, 0.95, 0.05],
                sleep_fractions: vec![0.08, 0.88, 0.93, 0.04],
                metrics: Metrics::from_pairs([("lt0_years", 2.97), ("lt_years", 4.31)]),
            }],
        );
        let text = report.to_json();
        // The reference model and its metric pair emit the historic
        // field layout: no `model` key, metrics inline.
        assert!(
            text.contains("\"lt0_years\":2.97,\"lt_years\":4.31"),
            "{text}"
        );
        assert!(!text.contains("\"model\""), "{text}");
        // Default geometry fields are omitted too: the historic layout.
        for absent in [
            "\"ways\"",
            "\"replacement\"",
            "\"l2_cache_bytes\"",
            "\"l2_ways\"",
        ] {
            assert!(!text.contains(absent), "{absent} leaked into {text}");
        }
        let back = StudyReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn geometry_axes_expand_and_roundtrip() {
        let grid = tiny_spec()
            .ways([1, 4])
            .replacement(["lru", "mru"])
            .l2_cache_kb([0, 64])
            .l2_ways([4])
            .expand()
            .unwrap();
        // 2 ways × 2 replacements × 2 L2 sizes × 1 l2_ways × 2 workloads.
        assert_eq!(grid.len(), 16);
        let s = grid.scenarios();
        assert_eq!((s[0].ways, s[0].l2_cache_bytes, s[0].l2_ways), (1, 0, 1));
        assert_eq!(
            (s[2].ways, s[2].l2_cache_bytes, s[2].l2_ways),
            (1, 64 * 1024, 4)
        );
        assert_eq!(s[4].replacement, "mru");
        assert_eq!(s[8].ways, 4);
        // Non-default geometry survives the record JSON round-trip.
        let record = ScenarioRecord {
            scenario: s[10].clone(),
            sim_cycles: 10,
            esav: 0.1,
            miss_rate: 0.2,
            useful_idleness: vec![0.5; 4],
            sleep_fractions: vec![0.4; 4],
            metrics: Metrics::new(),
        };
        let report = StudyReport::from_records("geom", vec![record]);
        let text = report.to_json();
        assert!(text.contains("\"ways\":4"), "{text}");
        assert!(text.contains("\"l2_cache_bytes\":65536"), "{text}");
        assert!(text.contains("\"l2_ways\":4"), "{text}");
        let back = StudyReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn no_l2_collapses_the_l2_ways_axis() {
        let grid = tiny_spec().l2_ways([2, 4, 8]).expand().unwrap();
        // No L2 on the grid: the l2_ways axis contributes nothing.
        assert_eq!(grid.len(), 2);
        assert!(grid.scenarios().iter().all(|s| s.l2_ways == 1));
    }

    #[test]
    fn bad_geometry_axes_are_rejected_at_expansion() {
        // ways exceeding the line capacity of one bank's worth of sets.
        let e = tiny_spec().cache_bytes([1024]).ways([128]).expand();
        assert!(matches!(e, Err(CoreError::Sim(_))), "{e:?}");
        // An L2 smaller than the L1.
        let e = tiny_spec().l2_cache_kb([4]).expand();
        assert!(
            matches!(
                e,
                Err(CoreError::Sim(SimError::InvalidGeometry {
                    name: "l2_cache_bytes",
                    ..
                }))
            ),
            "{e:?}"
        );
        // An unknown replacement policy.
        let e = tiny_spec().replacement(["belady"]).expand();
        assert!(
            matches!(e, Err(CoreError::Sim(SimError::UnknownReplacement { .. }))),
            "{e:?}"
        );
    }

    #[test]
    fn model_axis_expands_composed_canonical_keys() {
        let grid = tiny_spec()
            .models(["nbti-45nm", "variation:30"])
            .temps_c([85.0, 105.0])
            .expand()
            .unwrap();
        // 2 models × 2 temps × 2 workloads.
        assert_eq!(grid.len(), 8);
        let keys: Vec<&str> = grid.scenarios().iter().map(|s| s.model.as_str()).collect();
        assert_eq!(keys[0], "nbti:temp=85");
        assert_eq!(keys[2], "nbti:temp=105");
        assert_eq!(keys[4], "variation:30,temp=85");
        assert_eq!(keys[6], "variation:30,temp=105");
    }

    #[test]
    fn model_overrides_on_custom_names_are_rejected() {
        // Only built-in family keys accept temp/vlow/fail overrides; a
        // user-registered name has no parameter grammar to compose.
        let e = tiny_spec().models(["custom"]).temps_c([85.0]).expand();
        assert!(matches!(e, Err(CoreError::InvalidModelKey { .. })));
    }

    #[test]
    fn bad_model_axis_values_are_rejected() {
        assert!(matches!(
            tiny_spec().temps_c([-300.0]).expand(),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            tiny_spec().vdd_low([0.0]).expand(),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            tiny_spec().failure_pct([0.0]).expand(),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            tiny_spec().failure_pct([100.0]).expand(),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn pinned_profile_length_must_match_banks() {
        let e = StudySpec::new("profile mismatch")
            .workload_names(["profile:0.5,0.5"])
            .unwrap()
            .banks([4])
            .expand();
        assert!(matches!(e, Err(CoreError::Report { .. })), "{e:?}");
    }

    #[test]
    fn reserved_metric_names_are_rejected() {
        use crate::model::{CalibratedModel, ModelEval, ModelRegistry};
        struct Shadow;
        impl CalibratedModel for Shadow {
            fn evaluate(&self, _eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
                Ok(Metrics::from_pairs([("esav", 1.0)]))
            }
        }
        let mut registry = ModelRegistry::builtin();
        registry
            .register_fn("shadow", "shadows esav", "none", || Ok(Arc::new(Shadow)))
            .unwrap();
        let e = StudySpec::new("shadow")
            .models(["shadow"])
            .workload_names(["profile:0.1,0.8,0.6,0.3"])
            .unwrap()
            .run(&ModelContext::with_registry(registry))
            .unwrap_err();
        assert!(e.to_string().contains("shadows a record field"), "{e}");
    }

    #[test]
    fn pinned_profile_scenarios_skip_simulation() {
        let ctx = ModelContext::new();
        let report = StudySpec::new("pinned")
            .workload_names(["profile:0.1,0.8,0.6,0.3"])
            .unwrap()
            .run(&ctx)
            .unwrap();
        let r = &report.records()[0];
        assert_eq!(r.sim_cycles, 0);
        assert!(r.esav.is_nan() && r.miss_rate.is_nan());
        assert_eq!(r.sleep_fractions, vec![0.1, 0.8, 0.6, 0.3]);
        assert!(r.lt_years() > r.lt0_years());
        // NaN sim metrics survive the JSON round-trip as tagged strings.
        let back = StudyReport::from_json(&report.to_json()).unwrap();
        assert!(back.records()[0].esav.is_nan());
        assert_eq!(back.to_json(), report.to_json());
    }
}
