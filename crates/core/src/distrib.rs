//! The distribution layer: process-sharded grid execution over a
//! shared [`JsonlCache`] directory, with crash-tolerant shard leases.
//!
//! A process-sharded run has two halves. The **coordinator**
//! (`distribute`, driven by the session when
//! [`ExecBackend::Process`](crate::exec::ExecBackend::Process) is
//! selected) expands nothing and computes nothing: it writes the
//! expanded grid into a manifest (`coord-<digest>/grid.json` under the
//! cache directory), spawns `--worker` processes, waits for them, and
//! then replays the merged journal into the report. The **workers**
//! ([`run_worker`]) rebuild the grid from the manifest, claim shards
//! through lease files, and append every measurement to the shared
//! [`JsonlCache`] journal — which PR 4's content-addressed
//! [`Fingerprint`]s make conflict-free by construction.
//!
//! ## Work partitioning
//!
//! Scenarios are assigned to `workers × shards_per_worker` shards by
//! hashing their fingerprint's canonical key ([`shard_of`]) — grid
//! *position* plays no part, so the same scenario lands in the same
//! shard no matter how the study was widened or reordered. Each worker
//! prefers a contiguous lease range the coordinator hands it
//! (`--lease a..b`) and scans the rest afterwards ([`scan_order`]), so
//! disjoint work comes first and stealing is the fallback.
//!
//! ## Leases, heartbeats, stealing
//!
//! A shard is claimed by atomically creating `shard-<k>.lease`
//! (`O_CREAT | O_EXCL`); the holder's heartbeat thread rewrites the
//! file periodically, keeping its mtime fresh. A lease whose mtime is
//! older than the TTL belongs to a dead (or wedged) worker: any other
//! worker may *steal* it by atomically renaming its own lease file
//! over the stale one, and re-run the shard from the start. Completed
//! shards are marked by `shard-<k>.done` and their leases removed.
//!
//! Two workers can end up computing the same shard — the stale-lease
//! judgement is heuristic, and two stealers can race. That is safe,
//! not just tolerated: every measurement is journaled through
//! [`JsonlCache::store`], which absorbs concurrent appends under a
//! file lock and drops fingerprints already present, so a re-run
//! *replays* (or at worst recomputes values that are byte-identical by
//! determinism) and the journal keeps exactly one line per
//! fingerprint. Idempotent replay is what makes lease stealing a
//! correctness-free zone; the lease protocol only exists to avoid
//! *wasting* work.
//!
//! ## Crash tolerance
//!
//! A worker SIGKILLed mid-sweep leaves at most: a stale lease (stolen
//! after the TTL), a half-written journal line (dropped by the next
//! locked append), and missing shards (re-run by whoever steals). If
//! *every* worker dies, the coordinator's replay pass computes the
//! leftovers in-process — completion never depends on worker survival.
//! A worker whose scenario *panics* reports the panic through an error
//! file, and the coordinator surfaces it as
//! [`CoreError::ScenarioPanicked`] with the global scenario id intact.
//!
//! [`JsonlCache`]: crate::rescache::JsonlCache
//! [`Fingerprint`]: crate::rescache::Fingerprint

use crate::error::CoreError;
use crate::exec::{ExecObserver, ProcessOptions, RecordOrigin};
use crate::json::Json;
use crate::rescache::{Fingerprint, JsonlCache, ResultCache, ENGINE_VERSION};
use crate::session::StudySession;
use crate::study::{Scenario, ScenarioGrid, ScenarioRecord};
use crate::workload::Workload;
use std::collections::BTreeSet;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use trace_synth::source::Fnv64;

fn dist_err(message: impl Into<String>) -> CoreError {
    CoreError::Report {
        message: format!("distrib: {}", message.into()),
    }
}

/// The shard a scenario belongs to, derived from its fingerprint's
/// canonical key alone — deterministic, position-independent, and
/// identical in every process that can see the manifest.
pub fn shard_of(canonical: &str, shards: usize) -> usize {
    (Fnv64::hash(canonical.as_bytes()) % shards.max(1) as u64) as usize
}

/// The order in which a worker scans shards: its preferred lease range
/// first, then everything else ascending — so workers start on
/// disjoint work and only compete (steal) once their own share is
/// done.
pub fn scan_order(preferred: Range<usize>, shards: usize) -> Vec<usize> {
    let mut order: Vec<usize> = preferred.clone().filter(|k| *k < shards).collect();
    order.extend((0..shards).filter(|k| !preferred.contains(k)));
    order
}

/// A worker's view of one shard's coordination state, as read from the
/// lease directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardView {
    /// `shard-<k>.done` exists: the journal holds every measurement.
    Done,
    /// A lease exists and its heartbeat is fresh: leave it alone.
    Claimed,
    /// A lease exists but its heartbeat is older than the TTL: the
    /// holder is presumed dead and the lease may be stolen.
    Stale,
    /// No lease, no done marker: claimable.
    Free,
}

/// The claim decision a worker makes each scan: the first shard in
/// `order` that is not finished, not freshly claimed by someone else,
/// and not already attempted by this worker. Shared by the live
/// protocol and the `quickprop` model in
/// `crates/core/tests/distrib_props.rs`, so the property test
/// exercises the decision logic the workers actually run.
pub fn next_claim(
    order: &[usize],
    attempted: &BTreeSet<usize>,
    view: impl Fn(usize) -> ShardView,
) -> Option<usize> {
    order
        .iter()
        .copied()
        .find(|k| !attempted.contains(k) && matches!(view(*k), ShardView::Free | ShardView::Stale))
}

/// Contiguous preferred-lease ranges: `shards` split into `workers`
/// chunks, the first `shards % workers` chunks one longer.
pub fn partition_ranges(shards: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let base = shards / workers;
    let extra = shards % workers;
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// The grid manifest a coordinator writes and workers rebuild the
/// grid from: every scenario, its expected canonical fingerprint, the
/// workload-axis registry keys, and the shard count.
struct Manifest {
    name: String,
    shards: usize,
    scenarios: Vec<Scenario>,
    /// Canonical fingerprint keys, aligned with `scenarios`. Workers
    /// recompute and verify them, so a workload whose content changed
    /// between coordinator and worker is caught, not silently
    /// recomputed under a stale identity.
    fingerprints: Vec<String>,
    /// Workload registry keys, aligned with the scenarios'
    /// `workload_index` values.
    workload_keys: Vec<String>,
}

impl Manifest {
    fn of_grid(grid: &ScenarioGrid, shards: usize) -> Self {
        let fingerprints = grid
            .scenarios()
            .iter()
            .map(|s| {
                Fingerprint::for_scenario(s, grid.workloads()[s.workload_index].as_ref())
                    .canonical()
                    .to_string()
            })
            .collect();
        Self {
            name: grid.name().to_string(),
            shards,
            scenarios: grid.scenarios().to_vec(),
            fingerprints,
            workload_keys: grid
                .workloads()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
        }
    }

    fn emit(&self) -> String {
        Json::obj(vec![
            ("engine", Json::Str(ENGINE_VERSION.to_string())),
            ("name", Json::Str(self.name.clone())),
            ("shards", Json::Num(self.shards as f64)),
            (
                "workloads",
                Json::Arr(
                    self.workload_keys
                        .iter()
                        .map(|k| Json::Str(k.clone()))
                        .collect(),
                ),
            ),
            (
                "fingerprints",
                Json::Arr(
                    self.fingerprints
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
        ])
        .emit()
    }

    fn parse(text: &str) -> Result<Self, CoreError> {
        let v = Json::parse(text).map_err(|e| dist_err(format!("grid manifest: {e}")))?;
        let engine = v.field("engine")?.as_str("engine")?;
        if engine != ENGINE_VERSION {
            return Err(dist_err(format!(
                "grid manifest engine `{engine}` does not match this worker's `{ENGINE_VERSION}`"
            )));
        }
        let strings = |key: &str| -> Result<Vec<String>, CoreError> {
            v.field(key)?
                .as_arr(key)?
                .iter()
                .map(|s| Ok(s.as_str(key)?.to_string()))
                .collect()
        };
        let scenarios: Vec<Scenario> = v
            .field("scenarios")?
            .as_arr("scenarios")?
            .iter()
            .map(Scenario::from_json)
            .collect::<Result<_, _>>()?;
        let out = Self {
            name: v.field("name")?.as_str("name")?.to_string(),
            shards: v.field("shards")?.as_num("shards")? as usize,
            scenarios,
            fingerprints: strings("fingerprints")?,
            workload_keys: strings("workloads")?,
        };
        if out.fingerprints.len() != out.scenarios.len() {
            return Err(dist_err(
                "grid manifest: fingerprint/scenario count mismatch",
            ));
        }
        if let Some(s) = out
            .scenarios
            .iter()
            .find(|s| s.workload_index >= out.workload_keys.len())
        {
            return Err(dist_err(format!(
                "grid manifest: scenario {} points past the workload axis",
                s.id
            )));
        }
        Ok(out)
    }

    /// Scenario indices per shard.
    fn shard_sets(&self) -> Vec<Vec<usize>> {
        let mut sets = vec![Vec::new(); self.shards.max(1)];
        for (i, fp) in self.fingerprints.iter().enumerate() {
            sets[shard_of(fp, self.shards)].push(i);
        }
        sets
    }
}

/// The coordination directory layout under the shared cache dir:
/// everything for one grid manifest lives under `coord-<digest>/`, so
/// different (or widened) grids sharing a cache never collide.
struct CoordDir {
    root: PathBuf,
}

impl CoordDir {
    fn new(root: PathBuf) -> Self {
        Self { root }
    }

    fn for_manifest(cache_dir: &Path, manifest_text: &str) -> Self {
        let digest = Fnv64::hash(manifest_text.as_bytes());
        Self::new(cache_dir.join(format!("coord-{digest:016x}")))
    }

    fn manifest(&self) -> PathBuf {
        self.root.join("grid.json")
    }

    fn lease(&self, shard: usize) -> PathBuf {
        self.root
            .join("leases")
            .join(format!("shard-{shard}.lease"))
    }

    fn done(&self, shard: usize) -> PathBuf {
        self.root.join("leases").join(format!("shard-{shard}.done"))
    }

    fn errors_dir(&self) -> PathBuf {
        self.root.join("errors")
    }

    fn error_file(&self, worker: &str) -> PathBuf {
        self.errors_dir().join(format!("{worker}.jsonl"))
    }

    fn stats_dir(&self) -> PathBuf {
        self.root.join("stats")
    }

    fn stats_file(&self, worker: &str) -> PathBuf {
        self.stats_dir().join(format!("{worker}.json"))
    }

    fn log_file(&self, worker: &str) -> PathBuf {
        self.root.join("logs").join(format!("{worker}.log"))
    }

    fn ensure(&self) -> Result<(), CoreError> {
        for sub in ["leases", "errors", "stats", "logs"] {
            fs::create_dir_all(self.root.join(sub))
                .map_err(|e| dist_err(format!("create {}/{sub}: {e}", self.root.display())))?;
        }
        Ok(())
    }
}

/// How stale a lease's heartbeat is; `None` when the lease vanished or
/// its mtime is unreadable (treated as fresh — claiming retries on the
/// next scan).
fn lease_age(path: &Path) -> Option<Duration> {
    let mtime = fs::metadata(path).ok()?.modified().ok()?;
    // aging-lint: allow(no-wallclock) lease staleness is wall-clock by design: it detects worker death across process (and machine) boundaries, where no logical clock exists
    std::time::SystemTime::now().duration_since(mtime).ok()
}

fn fs_view(coord: &CoordDir, shard: usize, ttl: Duration) -> ShardView {
    if coord.done(shard).exists() {
        return ShardView::Done;
    }
    let lease = coord.lease(shard);
    if !lease.exists() {
        return ShardView::Free;
    }
    match lease_age(&lease) {
        Some(age) if age > ttl => ShardView::Stale,
        // Vanished between the two checks (holder finished or failed):
        // treat as claimed; the next scan sees the done marker or a
        // free slot.
        _ => ShardView::Claimed,
    }
}

/// Runs the distribution phase of a process-backend grid run: manifest
/// out, workers spawned and awaited, worker stats streamed to the
/// observer, worker-reported panics surfaced. On return the journal
/// holds every measurement the workers produced; the caller refreshes
/// its cache handle and replays (computing only what crashed workers
/// left behind).
pub(crate) fn distribute(
    grid: &ScenarioGrid,
    cache: &dyn ResultCache,
    observer: Option<&dyn ExecObserver>,
    opts: &ProcessOptions,
) -> Result<(), CoreError> {
    if grid.is_empty() || opts.workers == 0 {
        return Ok(());
    }
    let shards = (opts.workers * opts.shards_per_worker.max(1)).clamp(1, grid.len());
    let manifest = Manifest::of_grid(grid, shards);

    // Warm pre-check: if the journal already covers the whole grid,
    // spawning workers would be pure overhead — the replay pass is all
    // that's needed.
    cache.refresh()?;
    let mut all_present = true;
    let mut present = vec![false; manifest.fingerprints.len()];
    for (i, canonical) in manifest.fingerprints.iter().enumerate() {
        present[i] = cache
            .lookup(&Fingerprint::from_canonical(canonical.clone()))?
            .is_some();
        all_present &= present[i];
    }
    if all_present {
        return Ok(());
    }

    let text = manifest.emit();
    let coord = CoordDir::for_manifest(&opts.dir, &text);
    coord.ensure()?;
    let tmp = coord
        .root
        .join(format!("grid.json.tmp-{}", std::process::id()));
    fs::write(&tmp, &text).map_err(|e| dist_err(format!("write {}: {e}", tmp.display())))?;
    fs::rename(&tmp, coord.manifest())
        .map_err(|e| dist_err(format!("publish {}: {e}", coord.manifest().display())))?;

    // Reconcile done markers with the journal: a marker is only valid
    // while the journal actually covers its shard (someone may have
    // deleted or moved the journal since a previous run).
    for (k, idxs) in manifest.shard_sets().iter().enumerate() {
        let complete = idxs.iter().all(|i| present[*i]);
        let marker = coord.done(k);
        if complete {
            fs::write(&marker, b"")
                .map_err(|e| dist_err(format!("write {}: {e}", marker.display())))?;
        } else if marker.exists() {
            fs::remove_file(&marker)
                .map_err(|e| dist_err(format!("remove {}: {e}", marker.display())))?;
        }
    }

    // Spawn the fleet, each worker's stdout/stderr teed to its log.
    let ranges = partition_ranges(shards, opts.workers);
    let empty: Vec<String> = Vec::new();
    let mut children = Vec::with_capacity(opts.workers);
    for (w, range) in ranges.iter().enumerate() {
        let id = format!("w{w}");
        let log = fs::File::create(coord.log_file(&id))
            .map_err(|e| dist_err(format!("create worker log: {e}")))?;
        let log_err = log
            .try_clone()
            .map_err(|e| dist_err(format!("clone worker log: {e}")))?;
        let child = Command::new(&opts.command.program)
            .args(&opts.command.args)
            .arg("--worker")
            .arg(&opts.dir)
            .arg("--coord")
            .arg(&coord.root)
            .args(["--id", &id])
            .args(["--lease", &format!("{}..{}", range.start, range.end)])
            .args(["--ttl-ms", &opts.lease_ttl_ms.to_string()])
            .args(["--poll-ms", &opts.poll_ms.to_string()])
            .args(opts.worker_extra_args.get(w).unwrap_or(&empty))
            .stdin(Stdio::null())
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(log_err))
            .spawn()
            .map_err(|e| {
                dist_err(format!(
                    "spawn worker {id} ({}): {e}",
                    opts.command.program.display()
                ))
            })?;
        children.push((id, child));
    }
    for (id, mut child) in children {
        // A worker that died (nonzero, or killed by a signal) is not
        // an error here: its lease goes stale, survivors steal it, and
        // whatever nobody finished the replay pass computes. Only
        // failing to wait at all is unrecoverable.
        let _ = child
            .wait()
            .map_err(|e| dist_err(format!("wait for worker {id}: {e}")))?;
    }

    // Stream per-worker counters (crashed workers wrote none).
    if let Some(obs) = observer {
        for w in 0..opts.workers {
            let id = format!("w{w}");
            if let Ok(text) = fs::read_to_string(coord.stats_file(&id)) {
                if let Ok(v) = Json::parse(&text) {
                    let num = |key: &str| v.field(key).and_then(|f| f.as_num(key)).unwrap_or(0.0);
                    obs.on_worker(&id, num("computed") as usize, num("cached") as usize);
                }
            }
        }
    }

    // Surface worker-reported scenario panics with the global id
    // intact. Non-panic scenario errors are deliberately *not* read
    // back from workers: the replay pass recomputes those scenarios
    // in-process and surfaces the typed error deterministically.
    let mut first_panic: Option<(usize, String)> = None;
    if let Ok(entries) = fs::read_dir(coord.errors_dir()) {
        let mut files: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)
                .map_err(|e| dist_err(format!("read {}: {e}", file.display())))?;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                let v = Json::parse(line)
                    .map_err(|e| dist_err(format!("parse {}: {e}", file.display())))?;
                let scenario = v.field("scenario")?.as_num("scenario")? as usize;
                let message = v.field("message")?.as_str("message")?.to_string();
                if first_panic.as_ref().is_none_or(|(s, _)| scenario < *s) {
                    first_panic = Some((scenario, message));
                }
            }
        }
    }
    if let Some((scenario, message)) = first_panic {
        return Err(CoreError::ScenarioPanicked { scenario, message });
    }
    Ok(())
}

/// A worker process's parsed command line (everything after the
/// program name): `--worker <cache-dir> --coord <dir> --id <id>
/// --lease <a>..<b> [--ttl-ms <n>] [--poll-ms <n>]
/// [--die-after <n>]`.
///
/// `--die-after <n>` is the crash-test fault hook: the worker
/// SIGKILLs itself after journaling `n` records, mid-sweep, leaving a
/// stale lease behind for the survivors to steal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerConfig {
    /// The shared cache directory (journal home).
    pub dir: PathBuf,
    /// The coordination directory (`coord-<digest>/`).
    pub coord: PathBuf,
    /// This worker's id (used for lease/stats/error file names).
    pub id: String,
    /// Preferred shard range, scanned before stealing.
    pub lease: Range<usize>,
    /// Lease staleness threshold in milliseconds.
    pub ttl_ms: u64,
    /// Idle re-scan period in milliseconds.
    pub poll_ms: u64,
    /// Fault injection: self-SIGKILL after this many records.
    pub die_after: Option<usize>,
}

impl WorkerConfig {
    /// Parses a worker argv (starting at `--worker`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] naming the offending flag.
    pub fn parse(args: &[String]) -> Result<Self, CoreError> {
        let mut dir = None;
        let mut coord = None;
        let mut id = None;
        let mut lease = None;
        let mut ttl_ms = 10_000u64;
        let mut poll_ms = 250u64;
        let mut die_after = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| dist_err(format!("{what} needs a value")))
            };
            match flag.as_str() {
                "--worker" => dir = Some(PathBuf::from(value("--worker")?)),
                "--coord" => coord = Some(PathBuf::from(value("--coord")?)),
                "--id" => id = Some(value("--id")?),
                "--lease" => {
                    let raw = value("--lease")?;
                    let (a, b) = raw
                        .split_once("..")
                        .ok_or_else(|| dist_err(format!("--lease `{raw}`: expected <a>..<b>")))?;
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| dist_err(format!("--lease `{raw}`: bad bound `{s}`")))
                    };
                    lease = Some(parse(a)?..parse(b)?);
                }
                "--ttl-ms" => {
                    let raw = value("--ttl-ms")?;
                    ttl_ms = raw
                        .parse()
                        .map_err(|_| dist_err(format!("--ttl-ms `{raw}`: not a number")))?;
                }
                "--poll-ms" => {
                    let raw = value("--poll-ms")?;
                    poll_ms = raw
                        .parse()
                        .map_err(|_| dist_err(format!("--poll-ms `{raw}`: not a number")))?;
                }
                "--die-after" => {
                    let raw = value("--die-after")?;
                    die_after = Some(
                        raw.parse()
                            .map_err(|_| dist_err(format!("--die-after `{raw}`: not a number")))?,
                    );
                }
                other => return Err(dist_err(format!("unknown worker flag `{other}`"))),
            }
        }
        let dir = dir.ok_or_else(|| dist_err("--worker <cache-dir> is required"))?;
        let coord = coord.ok_or_else(|| dist_err("--coord <dir> is required"))?;
        Ok(Self {
            dir,
            coord,
            id: id.unwrap_or_else(|| format!("pid{}", std::process::id())),
            lease: lease.unwrap_or(0..0),
            ttl_ms,
            poll_ms,
            die_after,
        })
    }
}

/// The heartbeat thread: while a lease path is set, rewrites the lease
/// file every quarter-TTL so its mtime stays fresh. The mutex is held
/// across each rewrite, so clearing the current lease under the same
/// mutex guarantees no write lands after the holder releases it.
struct Heartbeat {
    current: Arc<Mutex<Option<PathBuf>>>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn relock<T>(
    r: std::sync::LockResult<std::sync::MutexGuard<'_, T>>,
) -> std::sync::MutexGuard<'_, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Heartbeat {
    fn start(ttl_ms: u64, content: String) -> Self {
        let current: Arc<Mutex<Option<PathBuf>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let interval = Duration::from_millis((ttl_ms / 4).max(25));
        let handle = {
            let current = Arc::clone(&current);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    {
                        let guard = relock(current.lock());
                        if let Some(path) = guard.as_ref() {
                            let _ = fs::write(path, &content);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
        };
        Self {
            current,
            stop,
            handle: Some(handle),
        }
    }

    fn set(&self, path: PathBuf) {
        *relock(self.current.lock()) = Some(path);
    }

    /// Stops beating on the lease and removes it, atomically with
    /// respect to the heartbeat thread — no rewrite can resurrect the
    /// file after this returns.
    fn clear_and_remove(&self, lease: &Path) {
        let mut guard = relock(self.current.lock());
        *guard = None;
        let _ = fs::remove_file(lease);
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The fault-injection observer behind `--die-after <n>`: SIGKILLs the
/// worker process after it journals its `n`-th record — an honest
/// mid-sweep crash, with the lease held and the heartbeat thread dying
/// too.
struct DieAfter {
    after: usize,
    seen: AtomicUsize,
}

impl ExecObserver for DieAfter {
    fn on_record(
        &self,
        _record: &ScenarioRecord,
        _origin: RecordOrigin,
        _done: usize,
        _total: usize,
    ) {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.after {
            let pid = std::process::id().to_string();
            let _ = Command::new("kill").args(["-KILL", &pid]).status();
            // If kill(1) is somehow unavailable, die ungracefully
            // anyway — the test needs a corpse, not an error path.
            std::process::abort();
        }
    }
}

/// Runs a worker process to completion: rebuild the grid from the
/// manifest, verify its fingerprints, then claim/steal shards and
/// journal measurements until nothing claimable remains.
///
/// The caller provides the [`StudySession`] — registries and model
/// context configured, but *without* a cache or observer attached
/// (this function wires the shared journal and the fault hook itself).
/// The default worker binaries pass a plain `StudySession::new()`;
/// a custom binary that registers extra policies, workloads or models
/// must do so before calling this, or scenarios naming them fail to
/// resolve.
///
/// Scenario errors do *not* fail the worker: the failing shard's lease
/// is released (panics are additionally reported to the coordinator
/// through an error file) and the worker moves on, so one poisoned
/// scenario cannot wedge the fleet.
///
/// # Errors
///
/// Returns [`CoreError::Report`] on protocol errors (unreadable
/// manifest, unresolvable workload keys, fingerprint mismatches) and
/// [`CoreError::Cache`] on journal failures.
pub fn run_worker(config: &WorkerConfig, session: StudySession) -> Result<(), CoreError> {
    let cache = JsonlCache::in_dir(&config.dir)?;
    let mut session = session.cache(cache);
    if let Some(after) = config.die_after {
        session = session.observer(DieAfter {
            after,
            seen: AtomicUsize::new(0),
        });
    }
    let coord = CoordDir::new(config.coord.clone());
    let manifest_text = fs::read_to_string(coord.manifest())
        .map_err(|e| dist_err(format!("read {}: {e}", coord.manifest().display())))?;
    let manifest = Manifest::parse(&manifest_text)?;

    // Rebuild the workload axis from registry keys and verify that the
    // reconstruction matches the coordinator's fingerprints — a trace
    // file that changed on disk (or a differently-registered custom
    // workload) must abort the worker, not journal under a stale
    // identity.
    let workloads: Vec<Arc<dyn Workload>> = manifest
        .workload_keys
        .iter()
        .map(|key| session.workload_registry_ref().resolve(key))
        .collect::<Result<_, _>>()?;
    for (scenario, expected) in manifest.scenarios.iter().zip(&manifest.fingerprints) {
        let got = Fingerprint::for_scenario(scenario, workloads[scenario.workload_index].as_ref());
        if got.canonical() != expected {
            return Err(dist_err(format!(
                "scenario {}: fingerprint mismatch (workload or engine changed under the sweep)",
                scenario.id
            )));
        }
    }

    let shard_sets = manifest.shard_sets();
    let order = scan_order(config.lease.clone(), manifest.shards);
    let ttl = Duration::from_millis(config.ttl_ms);
    let lease_content = format!(
        "{{\"worker\":\"{}\",\"pid\":{}}}\n",
        config.id,
        std::process::id()
    );
    let heartbeat = Heartbeat::start(config.ttl_ms, lease_content.clone());
    let mut attempted: BTreeSet<usize> = BTreeSet::new();
    loop {
        match next_claim(&order, &attempted, |k| fs_view(&coord, k, ttl)) {
            Some(k) => {
                attempted.insert(k);
                if try_claim(&coord, k, &lease_content, ttl)? {
                    run_shard(
                        &session,
                        &manifest,
                        &workloads,
                        &shard_sets[k],
                        k,
                        &coord,
                        config,
                        &heartbeat,
                    )?;
                }
            }
            None => {
                let undone: Vec<usize> = (0..manifest.shards)
                    .filter(|k| fs_view(&coord, *k, ttl) != ShardView::Done)
                    .collect();
                if undone.is_empty() {
                    break;
                }
                if undone.iter().all(|k| attempted.contains(k)) {
                    // Nothing left this worker is willing to redo —
                    // other workers (or the coordinator's replay pass)
                    // own the rest.
                    break;
                }
                std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
            }
        }
    }
    heartbeat.stop();

    let stats = session.stats();
    let stats_json = Json::obj(vec![
        ("worker", Json::Str(config.id.clone())),
        ("scenarios", Json::Num(stats.scenarios as f64)),
        ("computed", Json::Num(stats.evaluations as f64)),
        ("cached", Json::Num(stats.cache_hits as f64)),
    ])
    .emit();
    fs::write(coord.stats_file(&config.id), stats_json)
        .map_err(|e| dist_err(format!("write worker stats: {e}")))?;
    Ok(())
}

/// Claims shard `k`: atomic `O_CREAT | O_EXCL` create, or an atomic
/// rename over a lease that is (still) stale. Returns `false` when the
/// claim was lost to a racing worker. Racing stealers may both
/// succeed — safe (idempotent replay), just not thrifty.
fn try_claim(coord: &CoordDir, k: usize, content: &str, ttl: Duration) -> Result<bool, CoreError> {
    let lease = coord.lease(k);
    match OpenOptions::new().write(true).create_new(true).open(&lease) {
        Ok(mut file) => {
            let _ = file.write_all(content.as_bytes());
            Ok(true)
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
            // Re-judge under the latest view: steal only while the
            // holder still looks dead.
            if fs_view(coord, k, ttl) != ShardView::Stale {
                return Ok(false);
            }
            let tmp = coord
                .root
                .join("leases")
                .join(format!("shard-{k}.steal-{}", std::process::id()));
            fs::write(&tmp, content)
                .map_err(|e| dist_err(format!("write {}: {e}", tmp.display())))?;
            fs::rename(&tmp, &lease)
                .map_err(|e| dist_err(format!("steal {}: {e}", lease.display())))?;
            Ok(true)
        }
        Err(e) => Err(dist_err(format!("claim {}: {e}", lease.display()))),
    }
}

/// Runs one claimed shard: absorb the journal (other workers' finished
/// points replay instead of recomputing), short-circuit if the shard
/// is already fully journaled, otherwise run the subgrid through the
/// session. Panics are reported to the coordinator with the *global*
/// scenario id; other scenario errors are logged and left for the
/// coordinator's replay pass to reproduce with full type information.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    session: &StudySession,
    manifest: &Manifest,
    workloads: &[Arc<dyn Workload>],
    members: &[usize],
    k: usize,
    coord: &CoordDir,
    config: &WorkerConfig,
    heartbeat: &Heartbeat,
) -> Result<(), CoreError> {
    heartbeat.set(coord.lease(k));
    let cache = session
        .result_cache()
        .ok_or_else(|| dist_err("worker session lost its cache"))?;
    cache.refresh()?;
    let mut missing = Vec::new();
    for &i in members {
        let fp = Fingerprint::from_canonical(manifest.fingerprints[i].clone());
        if cache.lookup(&fp)?.is_none() {
            missing.push(i);
        }
    }
    if missing.is_empty() {
        finish_shard(coord, k, heartbeat);
        return Ok(());
    }
    let scenarios: Vec<Scenario> = members
        .iter()
        .map(|&i| manifest.scenarios[i].clone())
        .collect();
    let sub = ScenarioGrid::from_parts(
        format!("{}:shard-{k}", manifest.name),
        scenarios,
        workloads.to_vec(),
        session.policy_registry_ref().clone(),
        session.replacement_registry_ref().clone(),
    );
    match session.run_grid(&sub) {
        Ok(_) => finish_shard(coord, k, heartbeat),
        Err(CoreError::ScenarioPanicked { scenario, message }) => {
            // `scenario` is the slot index within the subgrid; report
            // the global id across the process boundary.
            let global = sub.scenarios().get(scenario).map_or(scenario, |s| s.id);
            let line = Json::obj(vec![
                ("worker", Json::Str(config.id.clone())),
                ("shard", Json::Num(k as f64)),
                ("scenario", Json::Num(global as f64)),
                ("message", Json::Str(message)),
            ])
            .emit();
            append_line(&coord.error_file(&config.id), &line)?;
            heartbeat.clear_and_remove(&coord.lease(k));
        }
        Err(other) => {
            eprintln!(
                "worker {}: shard {k} failed ({other}); releasing its lease",
                config.id
            );
            heartbeat.clear_and_remove(&coord.lease(k));
        }
    }
    Ok(())
}

fn finish_shard(coord: &CoordDir, k: usize, heartbeat: &Heartbeat) {
    // Done marker first, then the lease release — there is never a
    // moment where the shard looks free but unfinished.
    let _ = fs::write(coord.done(k), b"");
    heartbeat.clear_and_remove(&coord.lease(k));
}

fn append_line(path: &Path, line: &str) -> Result<(), CoreError> {
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| dist_err(format!("open {}: {e}", path.display())))?;
    file.write_all(format!("{line}\n").as_bytes())
        .map_err(|e| dist_err(format!("append {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_deterministic_and_total() {
        let keys: Vec<String> = (0..100).map(|i| format!("v=x;k={i}")).collect();
        for k in &keys {
            assert_eq!(shard_of(k, 7), shard_of(k, 7));
            assert!(shard_of(k, 7) < 7);
        }
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("anything", 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn scan_order_prefers_the_lease_range() {
        assert_eq!(scan_order(2..4, 6), vec![2, 3, 0, 1, 4, 5]);
        assert_eq!(scan_order(0..0, 3), vec![0, 1, 2]);
        assert_eq!(scan_order(4..9, 5), vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn partition_ranges_cover_every_shard_once() {
        for (shards, workers) in [(8, 3), (2, 5), (1, 1), (7, 7), (0, 2)] {
            let ranges = partition_ranges(shards, workers);
            assert_eq!(ranges.len(), workers);
            let mut seen = Vec::new();
            for r in &ranges {
                seen.extend(r.clone());
            }
            assert_eq!(seen, (0..shards).collect::<Vec<_>>());
        }
    }

    #[test]
    fn next_claim_skips_done_claimed_and_attempted() {
        let order = [1usize, 0, 2, 3];
        let views = |k: usize| match k {
            1 => ShardView::Done,
            0 => ShardView::Claimed,
            2 => ShardView::Stale,
            _ => ShardView::Free,
        };
        let none: BTreeSet<usize> = BTreeSet::new();
        assert_eq!(next_claim(&order, &none, views), Some(2));
        let tried: BTreeSet<usize> = [2].into();
        assert_eq!(next_claim(&order, &tried, views), Some(3));
        let all: BTreeSet<usize> = [2, 3].into();
        assert_eq!(next_claim(&order, &all, views), None);
    }

    #[test]
    fn worker_config_parses_the_protocol_flags() {
        let args: Vec<String> = [
            "--worker",
            "/tmp/c",
            "--coord",
            "/tmp/c/coord-1",
            "--id",
            "w3",
            "--lease",
            "2..5",
            "--ttl-ms",
            "800",
            "--poll-ms",
            "50",
            "--die-after",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = WorkerConfig::parse(&args).unwrap();
        assert_eq!(cfg.id, "w3");
        assert_eq!(cfg.lease, 2..5);
        assert_eq!(cfg.ttl_ms, 800);
        assert_eq!(cfg.poll_ms, 50);
        assert_eq!(cfg.die_after, Some(2));
        let e = WorkerConfig::parse(&["--lease".to_string(), "nope".to_string()]).unwrap_err();
        assert!(e.to_string().contains("--lease"), "{e}");
    }
}
