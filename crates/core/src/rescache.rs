//! The content-addressed scenario result cache: [`Fingerprint`]s,
//! the [`ResultCache`] trait, and its in-memory ([`MemoryCache`]) and
//! on-disk JSONL ([`JsonlCache`]) implementations.
//!
//! A scenario's measured outcome is a pure function of its inputs, so
//! the cache keys on exactly those inputs and nothing else: geometry,
//! seeds, the policy key, the canonical model key, the workload's
//! identity (content hash for file-backed traces), the trace horizon,
//! the stored-bit skew `p0` — and an engine version salt
//! ([`ENGINE_VERSION`]) that invalidates every entry wholesale when
//! the simulator or physics semantics change. Grid *position* (the
//! scenario id, the workload's index on its axis) is deliberately
//! excluded: a widened or reordered study still hits on every point it
//! shares with a previous run.
//!
//! A cache hit replays the full measurement — simulation outputs *and*
//! model metrics — so neither the simulator nor the device model runs.
//! Records rebuilt from hits are byte-identical to computed ones
//! (pinned by `tests/exec_cache.rs`): the JSON codec's
//! shortest-round-trip number formatting makes
//! emit→parse→emit stable.
//!
//! The [`JsonlCache`] persists entries as one self-checking JSON line
//! each, appended atomically (a single `write` to a file opened in
//! append mode), so an interrupted study leaves a valid journal and a
//! second run computes only the missing grid points. Corrupted entries
//! are rejected loudly at open time, naming their fingerprint — a
//! poisoned journal never silently deserializes.
//!
//! **Caveat — custom names are trusted identities.** File-backed
//! workloads are fingerprinted by content hash and the built-in
//! engine by [`ENGINE_VERSION`], but *user-registered* workloads and
//! models enter the fingerprint by registry name alone: redefining
//! what `"my-workload"` or `"my-model"` means while keeping its name
//! will replay stale entries from a persistent cache. Rename on
//! redefinition (or point `--cache-dir` somewhere fresh) when custom
//! code changes.

use crate::error::CoreError;
use crate::json::Json;
use crate::model::Metrics;
use crate::study::{Scenario, ScenarioRecord};
use crate::workload::Workload;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use trace_synth::source::Fnv64;

/// The engine version salt baked into every fingerprint.
///
/// Bump this whenever the meaning of a cached measurement changes —
/// simulator semantics, model physics, seed derivation — and every
/// existing cache entry stops matching, instead of silently replaying
/// stale numbers.
///
/// `engine-v2`: the geometry axis opened (ways / replacement / L2
/// hierarchy joined the fingerprint), so `engine-v1` journals are
/// cleanly stale rather than ambiguous about fields they never named.
pub const ENGINE_VERSION: &str = "engine-v2";

/// The stable identity of a workload for caching purposes, plus
/// whether the trace seed participates in it.
///
/// File-backed workloads are identified by format and content hash —
/// the file may move, the bytes are the anchor — and ignore the seed
/// (the file *is* the stream). Pinned profiles encode their full
/// profile in the name and simulate nothing. Synthetic and
/// user-registered workloads are identified by name and are
/// seed-dependent.
pub(crate) fn workload_identity(workload: &dyn Workload) -> (String, bool) {
    match workload.source_info() {
        Some(info) => (format!("{}:{}", info.format, info.hash), false),
        None if workload.pinned_profile().is_some() => (workload.name().to_string(), false),
        None => (workload.name().to_string(), true),
    }
}

pub(crate) fn digest_hex(bytes: &[u8]) -> String {
    format!("fnv1a64:{:016x}", Fnv64::hash(bytes))
}

/// The content-addressed identity of one scenario measurement.
///
/// Built by [`Fingerprint::for_scenario`] from every input the
/// measurement depends on; the canonical string is the cache key, the
/// digest its compact display handle (used in error messages and the
/// JSONL journal's integrity fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    canonical: String,
}

impl Fingerprint {
    /// Fingerprints a scenario as measured over `workload` (which must
    /// be the workload object the scenario's `workload_index` resolves
    /// to — the grid runner guarantees this pairing).
    pub fn for_scenario(scenario: &Scenario, workload: &dyn Workload) -> Self {
        let (identity, seeded) = workload_identity(workload);
        let mut canonical = String::new();
        let _ = write!(
            canonical,
            "v={ENGINE_VERSION};cache={};line={};banks={};ways={};repl={};l2={};l2ways={};update={};policy={}#{};model={};workload={};seed=",
            scenario.cache_bytes,
            scenario.line_bytes,
            scenario.banks,
            scenario.ways,
            scenario.replacement,
            scenario.l2_cache_bytes,
            scenario.l2_ways,
            scenario.update_days,
            scenario.policy,
            scenario.policy_seed,
            scenario.model,
            identity,
        );
        if seeded {
            let _ = write!(canonical, "{}", scenario.trace_seed);
        } else {
            canonical.push('-');
        }
        let _ = write!(
            canonical,
            ";cycles={};p0={}",
            scenario.trace_cycles,
            workload.p0()
        );
        Self { canonical }
    }

    /// Builds a fingerprint directly from a canonical key string,
    /// bypassing [`Fingerprint::for_scenario`].
    ///
    /// This exists for stress tooling and protocol tests that need
    /// many distinct, cheap identities (the `cache-hammer` binary);
    /// study code always goes through `for_scenario`. Keys that should
    /// survive `study check --journal` must carry the
    /// `v=`[`ENGINE_VERSION`]`;` prefix.
    #[doc(hidden)]
    pub fn from_canonical(canonical: impl Into<String>) -> Self {
        Self {
            canonical: canonical.into(),
        }
    }

    /// The canonical key string (every input, spelled out).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The compact content digest, `fnv1a64:<16 hex>`.
    pub fn digest(&self) -> String {
        digest_hex(self.canonical.as_bytes())
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.digest())
    }
}

/// The cached, position-independent part of a [`ScenarioRecord`]: the
/// measured simulation outputs plus the model's metrics. The scenario
/// itself (grid id, axis indices) is re-attached on a hit via
/// [`CachedMeasurement::into_record`].
#[derive(Debug, Clone, PartialEq)]
pub struct CachedMeasurement {
    /// Cycles actually simulated.
    pub sim_cycles: u64,
    /// Energy saving vs the monolithic always-on cache.
    pub esav: f64,
    /// Cache miss rate on the trace.
    pub miss_rate: f64,
    /// Per-bank useful idleness.
    pub useful_idleness: Vec<f64>,
    /// Per-bank sleep fractions.
    pub sleep_fractions: Vec<f64>,
    /// The model's named outputs, in emission order.
    pub metrics: Metrics,
}

impl CachedMeasurement {
    /// Extracts the cacheable measurement from a computed record.
    pub fn of_record(record: &ScenarioRecord) -> Self {
        Self {
            sim_cycles: record.sim_cycles,
            esav: record.esav,
            miss_rate: record.miss_rate,
            useful_idleness: record.useful_idleness.clone(),
            sleep_fractions: record.sleep_fractions.clone(),
            metrics: record.metrics.clone(),
        }
    }

    /// Re-attaches a (current-grid) scenario, rebuilding the full
    /// record a computed run would have produced.
    pub fn into_record(self, scenario: Scenario) -> ScenarioRecord {
        ScenarioRecord {
            scenario,
            sim_cycles: self.sim_cycles,
            esav: self.esav,
            miss_rate: self.miss_rate,
            useful_idleness: self.useful_idleness,
            sleep_fractions: self.sleep_fractions,
            metrics: self.metrics,
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("sim_cycles", Json::Num(self.sim_cycles as f64)),
            ("esav", Json::Num(self.esav)),
            ("miss_rate", Json::Num(self.miss_rate)),
            ("useful_idleness", Json::nums(&self.useful_idleness)),
            ("sleep_fractions", Json::nums(&self.sleep_fractions)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(name, value)| (name.to_string(), Json::Num(value)))
                        .collect(),
                ),
            ),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, CoreError> {
        let nums = |key: &str| -> Result<Vec<f64>, CoreError> {
            v.field(key)?
                .as_arr(key)?
                .iter()
                .map(|item| item.as_num(key).map_err(CoreError::from))
                .collect()
        };
        let Json::Obj(metric_pairs) = v.field("metrics")? else {
            return Err(CoreError::Cache {
                message: "cache entry field `metrics` is not an object".into(),
            });
        };
        let mut metrics = Metrics::new();
        for (name, value) in metric_pairs {
            // The computed path rejects models whose metrics shadow
            // record-level JSON fields; a journal written by foreign
            // tooling must clear the same bar before it replays.
            if ScenarioRecord::RESERVED_FIELDS.contains(&name.as_str()) {
                return Err(CoreError::Cache {
                    message: format!("cached metric `{name}` shadows a record field"),
                });
            }
            metrics.push(name.as_str(), value.as_num(name)?);
        }
        Ok(Self {
            sim_cycles: v.field("sim_cycles")?.as_num("sim_cycles")? as u64,
            esav: v.field("esav")?.as_num("esav")?,
            miss_rate: v.field("miss_rate")?.as_num("miss_rate")?,
            useful_idleness: nums("useful_idleness")?,
            sleep_fractions: nums("sleep_fractions")?,
            metrics,
        })
    }
}

/// A store of finished scenario measurements, keyed by
/// [`Fingerprint`].
///
/// Implementations are shared across worker threads; `lookup` and
/// `store` must be safe to call concurrently. Storing a fingerprint
/// that is already present is a no-op (identical inputs produce
/// identical measurements, so either value is correct).
pub trait ResultCache: Send + Sync {
    /// Looks up a measurement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] on backend failures.
    fn lookup(&self, fingerprint: &Fingerprint) -> Result<Option<CachedMeasurement>, CoreError>;

    /// Stores a measurement (no-op if the fingerprint is present).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] on backend failures.
    fn store(
        &self,
        fingerprint: &Fingerprint,
        measurement: &CachedMeasurement,
    ) -> Result<(), CoreError>;

    /// Number of cached measurements.
    fn len(&self) -> usize;

    /// Whether the cache holds no measurements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Absorbs entries written by *other* handles onto the same
    /// backing store since this handle last looked, returning how many
    /// new measurements appeared.
    ///
    /// Purely in-memory caches have nothing to absorb; the default is
    /// a no-op. [`JsonlCache`] re-reads the journal's growth so a
    /// coordinator can replay measurements that worker processes
    /// appended concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] on backend failures.
    fn refresh(&self) -> Result<usize, CoreError> {
        Ok(0)
    }
}

/// A process-lifetime in-memory cache — session-to-session reuse
/// without touching disk.
#[derive(Debug, Default)]
pub struct MemoryCache {
    // aging-lint: allow(no-unordered-iter) lookup-only index keyed by canonical string; never iterated
    entries: Mutex<HashMap<String, CachedMeasurement>>,
}

/// Recovers the guarded state from a poisoned lock: poisoning only
/// means another thread panicked while holding the lock, and every
/// step under these locks leaves the map/file pair valid (an
/// interrupted `store` at worst re-appends an identical line), so
/// recovering beats cascading the panic into every later caller.
fn relock<T>(
    r: std::sync::LockResult<std::sync::MutexGuard<'_, T>>,
) -> std::sync::MutexGuard<'_, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResultCache for MemoryCache {
    fn lookup(&self, fingerprint: &Fingerprint) -> Result<Option<CachedMeasurement>, CoreError> {
        Ok(relock(self.entries.lock())
            .get(fingerprint.canonical())
            .cloned())
    }

    fn store(
        &self,
        fingerprint: &Fingerprint,
        measurement: &CachedMeasurement,
    ) -> Result<(), CoreError> {
        relock(self.entries.lock())
            .entry(fingerprint.canonical().to_string())
            .or_insert_with(|| measurement.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        relock(self.entries.lock()).len()
    }
}

fn cache_err(message: impl Into<String>) -> CoreError {
    CoreError::Cache {
        message: message.into(),
    }
}

struct JsonlInner {
    // aging-lint: allow(no-unordered-iter) lookup-only index keyed by canonical string; never iterated
    index: HashMap<String, CachedMeasurement>,
    file: File,
    /// How many journal bytes are already reflected in `index`.
    /// Everything past this offset was appended by another process (or
    /// is a crashed writer's fragment) and is absorbed on the next
    /// locked access.
    absorbed: u64,
    /// Complete journal lines counted so far — keeps error messages
    /// pointing at absolute line numbers even when entries are
    /// absorbed incrementally.
    lines: usize,
}

/// Holds the OS-level advisory lock on the journal file; unlocks on
/// drop so every early return releases it. The lock serializes
/// append/absorb critical sections *across processes*; the `Mutex`
/// around [`JsonlInner`] already serializes threads within one.
struct JournalLock<'a>(&'a File);

impl<'a> JournalLock<'a> {
    fn acquire(file: &'a File, path: &Path) -> Result<Self, CoreError> {
        file.lock()
            .map_err(|e| cache_err(format!("lock {}: {e}", path.display())))?;
        Ok(Self(file))
    }
}

impl Drop for JournalLock<'_> {
    fn drop(&mut self) {
        let _ = self.0.unlock();
    }
}

/// An on-disk JSONL result cache: one self-checking JSON line per
/// measurement, appended atomically.
///
/// Each line carries the canonical key, the measurement, and two
/// digests — `fp` over the key (the entry's fingerprint) and `check`
/// over the emitted measurement JSON — so truncation or bit-rot is
/// detected at open time and rejected loudly with the entry's
/// fingerprint. Appends are a single `write` to a file opened in
/// append mode, so concurrent writers never interleave and an
/// interrupted run leaves a valid journal of every completed line.
///
/// The journal is safe to share between *processes*: every append
/// takes an OS-level advisory lock on the file, absorbs lines other
/// writers appended since this handle last looked (deduplicating by
/// fingerprint, so each measurement is journaled exactly once), and
/// only then writes its own line. [`JsonlCache::refresh`]
/// (via [`ResultCache::refresh`]) runs the same absorb step without
/// writing — the multi-process coordinator calls it to replay worker
/// results with zero recomputation.
pub struct JsonlCache {
    path: PathBuf,
    inner: Mutex<JsonlInner>,
}

impl std::fmt::Debug for JsonlCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlCache")
            .field("path", &self.path)
            .field("entries", &self.len())
            .finish()
    }
}

impl JsonlCache {
    /// The journal file name used by [`JsonlCache::in_dir`].
    pub const FILE_NAME: &'static str = "results.jsonl";

    /// Opens (or creates) the journal at `path`, loading and
    /// verifying every existing entry.
    ///
    /// Every *complete* line (newline-terminated — appends write the
    /// line and its newline in one `write`) must verify, or the open
    /// fails. A trailing fragment with no newline is the signature of
    /// an append cut short (disk full, power loss): it is dropped and
    /// the file truncated back to the last complete entry, so an
    /// interrupted run keeps every measurement it finished.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] when the file cannot be opened or
    /// any complete journaled entry is malformed or fails its
    /// integrity check (the error names the offending line and its
    /// fingerprint).
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| cache_err(format!("open {} for append: {e}", path.display())))?;
        let mut inner = JsonlInner {
            // aging-lint: allow(no-unordered-iter) lookup-only index; never iterated
            index: HashMap::new(),
            file,
            absorbed: 0,
            lines: 0,
        };
        {
            let JsonlInner {
                index,
                file,
                absorbed,
                lines,
            } = &mut inner;
            let lock = JournalLock::acquire(file, &path)?;
            Self::absorb_locked(&path, file, index, absorbed, lines)?;
            drop(lock);
        }
        Ok(Self {
            path,
            inner: Mutex::new(inner),
        })
    }

    /// Reads every complete journal line past `absorbed` into the
    /// index, returning how many distinct new measurements appeared.
    ///
    /// Must be called with the journal lock held: under the lock no
    /// live writer can be mid-append, so a trailing fragment without a
    /// newline can only be the residue of a writer that died mid-write
    /// — it is dropped and the file truncated back to the last
    /// complete entry (the crashed entry recomputes and re-journals
    /// cleanly).
    fn absorb_locked(
        path: &Path,
        file: &File,
        // aging-lint: allow(no-unordered-iter) lookup-only index; never iterated
        index: &mut HashMap<String, CachedMeasurement>,
        absorbed: &mut u64,
        lines: &mut usize,
    ) -> Result<usize, CoreError> {
        let len = file
            .metadata()
            .map_err(|e| cache_err(format!("stat {}: {e}", path.display())))?
            .len();
        if len <= *absorbed {
            return Ok(0);
        }
        let mut reader = File::open(path)
            .map_err(|e| cache_err(format!("open {} to read: {e}", path.display())))?;
        reader
            .seek(SeekFrom::Start(*absorbed))
            .map_err(|e| cache_err(format!("seek {}: {e}", path.display())))?;
        let mut bytes = Vec::with_capacity((len - *absorbed) as usize);
        reader
            .take(len - *absorbed)
            .read_to_end(&mut bytes)
            .map_err(|e| cache_err(format!("read {}: {e}", path.display())))?;
        let text = String::from_utf8(bytes)
            .map_err(|_| cache_err(format!("{}: journal is not valid UTF-8", path.display())))?;
        let mut consumed = 0usize;
        let mut added = 0usize;
        while consumed < text.len() {
            let rest = text.get(consumed..).unwrap_or("");
            let Some(nl) = rest.find('\n') else {
                // No newline: an append died mid-write (we hold the
                // lock, so no live writer can account for it). Drop
                // the fragment.
                file.set_len(*absorbed + consumed as u64)
                    .map_err(|e| cache_err(format!("truncate {}: {e}", path.display())))?;
                break;
            };
            let line = rest.get(..nl).unwrap_or(rest);
            *lines += 1;
            consumed += nl + 1;
            if line.trim().is_empty() {
                continue;
            }
            let (key, measurement) = Self::parse_line(line).map_err(|e| {
                cache_err(format!(
                    "corrupted cache entry at {}:{}: {e}",
                    path.display(),
                    *lines
                ))
            })?;
            if index.insert(key, measurement).is_none() {
                added += 1;
            }
        }
        *absorbed += consumed as u64;
        Ok(added)
    }

    /// Opens (or creates) `dir/`[`JsonlCache::FILE_NAME`], creating
    /// the directory if needed — the `--cache-dir` front door.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] on filesystem failures or a
    /// corrupted journal.
    pub fn in_dir(dir: impl AsRef<Path>) -> Result<Self, CoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| cache_err(format!("create cache dir {}: {e}", dir.display())))?;
        Self::open(dir.join(Self::FILE_NAME))
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn parse_line(line: &str) -> Result<(String, CachedMeasurement), CoreError> {
        let v = Json::parse(line).map_err(|e| cache_err(e.to_string()))?;
        let fp = v.field("fp")?.as_str("fp")?.to_string();
        let check = v.field("check")?.as_str("check")?;
        let key = v.field("key")?.as_str("key")?;
        if digest_hex(key.as_bytes()) != fp {
            return Err(cache_err(format!(
                "entry {fp}: key digest mismatch (the key or the fp field was altered)"
            )));
        }
        let record = v.field("record")?;
        if digest_hex(record.emit().as_bytes()) != check {
            return Err(cache_err(format!(
                "entry {fp}: measurement digest mismatch (the record was altered)"
            )));
        }
        let measurement = CachedMeasurement::from_json(record)
            .map_err(|e| cache_err(format!("entry {fp}: {e}")))?;
        Ok((key.to_string(), measurement))
    }

    fn emit_line(fingerprint: &Fingerprint, measurement: &CachedMeasurement) -> String {
        let record = measurement.to_json();
        let check = digest_hex(record.emit().as_bytes());
        let mut line = Json::obj(vec![
            ("fp", Json::Str(fingerprint.digest())),
            ("check", Json::Str(check)),
            ("key", Json::Str(fingerprint.canonical().to_string())),
            ("record", record),
        ])
        .emit();
        line.push('\n');
        line
    }
}

impl ResultCache for JsonlCache {
    fn lookup(&self, fingerprint: &Fingerprint) -> Result<Option<CachedMeasurement>, CoreError> {
        Ok(relock(self.inner.lock())
            .index
            .get(fingerprint.canonical())
            .cloned())
    }

    fn store(
        &self,
        fingerprint: &Fingerprint,
        measurement: &CachedMeasurement,
    ) -> Result<(), CoreError> {
        let mut inner = relock(self.inner.lock());
        // Fast path: anything in the index is already on disk, so a
        // warm single-process sweep never takes the file lock.
        if inner.index.contains_key(fingerprint.canonical()) {
            return Ok(());
        }
        let JsonlInner {
            index,
            file,
            absorbed,
            lines,
        } = &mut *inner;
        let lock = JournalLock::acquire(file, &self.path)?;
        // Another process may have journaled this fingerprint since we
        // last looked; absorbing its appends under the lock keeps the
        // journal duplicate-free across concurrent writers.
        Self::absorb_locked(&self.path, file, index, absorbed, lines)?;
        if index.contains_key(fingerprint.canonical()) {
            return Ok(());
        }
        let line = Self::emit_line(fingerprint, measurement);
        let mut writer = &*file;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| cache_err(format!("append {}: {e}", self.path.display())))?;
        drop(lock);
        *absorbed += line.len() as u64;
        *lines += 1;
        index.insert(fingerprint.canonical().to_string(), measurement.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        relock(self.inner.lock()).index.len()
    }

    fn refresh(&self) -> Result<usize, CoreError> {
        let mut inner = relock(self.inner.lock());
        let JsonlInner {
            index,
            file,
            absorbed,
            lines,
        } = &mut *inner;
        let lock = JournalLock::acquire(file, &self.path)?;
        let added = Self::absorb_locked(&self.path, file, index, absorbed, lines)?;
        drop(lock);
        Ok(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;
    use crate::workload::WorkloadRegistry;

    fn scenario() -> Scenario {
        Scenario {
            id: 3,
            cache_bytes: 16 * 1024,
            line_bytes: 16,
            banks: 4,
            ways: 1,
            replacement: "lru".into(),
            l2_cache_bytes: 0,
            l2_ways: 1,
            update_days: 1.0,
            policy: "probing".into(),
            workload: "sha".into(),
            workload_index: 1,
            workload_source: None,
            model: model::DEFAULT_MODEL.into(),
            trace_cycles: 40_000,
            trace_seed: 1001,
            policy_seed: 1,
        }
    }

    fn measurement() -> CachedMeasurement {
        CachedMeasurement {
            sim_cycles: 40_000,
            esav: 0.443,
            miss_rate: f64::NAN,
            useful_idleness: vec![0.1, 0.9],
            sleep_fractions: vec![0.08, 0.88],
            metrics: Metrics::from_pairs([("lt0_years", 2.97), ("lt_years", f64::INFINITY)]),
        }
    }

    fn fp() -> Fingerprint {
        let w = WorkloadRegistry::builtin().resolve("sha").unwrap();
        Fingerprint::for_scenario(&scenario(), w.as_ref())
    }

    #[test]
    fn fingerprints_exclude_grid_position() {
        let w = WorkloadRegistry::builtin().resolve("sha").unwrap();
        let a = Fingerprint::for_scenario(&scenario(), w.as_ref());
        let mut moved = scenario();
        moved.id = 99;
        moved.workload_index = 7;
        let b = Fingerprint::for_scenario(&moved, w.as_ref());
        assert_eq!(a, b, "grid position must not change the fingerprint");
        let mut hotter = scenario();
        hotter.model = "nbti:temp=105".into();
        let c = Fingerprint::for_scenario(&hotter, w.as_ref());
        assert_ne!(a, c, "the model key is load-bearing");
        assert!(a.canonical().contains(ENGINE_VERSION));
        assert!(a.digest().starts_with("fnv1a64:"), "{}", a.digest());
    }

    #[test]
    fn file_workload_fingerprints_ignore_the_seed() {
        let trace: Vec<_> = trace_synth::suite::by_name("sha")
            .unwrap()
            .trace(1)
            .take(100)
            .collect();
        let mut text = String::new();
        trace_synth::formats::write_csv(&mut text, &trace);
        let dir = std::env::temp_dir().join("nbti-rescache-seed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, &text).unwrap();
        let w = WorkloadRegistry::builtin()
            .resolve(&format!("csv:{}", path.display()))
            .unwrap();
        let mut a = scenario();
        a.trace_seed = 1;
        let mut b = scenario();
        b.trace_seed = 2;
        assert_eq!(
            Fingerprint::for_scenario(&a, w.as_ref()),
            Fingerprint::for_scenario(&b, w.as_ref()),
            "the file is the stream; the seed is irrelevant"
        );
        // Synthetic workloads are seed-dependent.
        let sha = WorkloadRegistry::builtin().resolve("sha").unwrap();
        assert_ne!(
            Fingerprint::for_scenario(&a, sha.as_ref()),
            Fingerprint::for_scenario(&b, sha.as_ref())
        );
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = MemoryCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&fp()).unwrap(), None);
        cache.store(&fp(), &measurement()).unwrap();
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(&fp()).unwrap().expect("stored entry");
        assert_eq!(hit.esav, measurement().esav);
        assert!(hit.miss_rate.is_nan(), "NaN survives the round trip");
        assert_eq!(hit.metrics.get("lt0_years"), Some(2.97));
        // Re-storing is a no-op.
        cache.store(&fp(), &measurement()).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn jsonl_cache_persists_across_opens() {
        let dir = std::env::temp_dir().join(format!("nbti-rescache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = JsonlCache::in_dir(&dir).unwrap();
            cache.store(&fp(), &measurement()).unwrap();
            assert_eq!(cache.len(), 1);
        }
        let cache = JsonlCache::in_dir(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(&fp()).unwrap().expect("persisted entry");
        assert_eq!(hit.sim_cycles, 40_000);
        assert!(hit.miss_rate.is_nan(), "NaN survives the journal");
        assert_eq!(hit.metrics.get("lt_years"), Some(f64::INFINITY));
        assert_eq!(
            hit.metrics.names().collect::<Vec<_>>(),
            vec!["lt0_years", "lt_years"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_journal_entries_are_rejected_with_their_fingerprint() {
        let dir = std::env::temp_dir().join(format!("nbti-rescache-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = JsonlCache::in_dir(&dir).unwrap();
        cache.store(&fp(), &measurement()).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);
        // Flip a measured value inside the journaled record.
        let text = std::fs::read_to_string(&path).unwrap();
        let poisoned = text.replace("\"esav\":0.443", "\"esav\":9.9");
        assert_ne!(text, poisoned, "the corruption must apply");
        std::fs::write(&path, poisoned).unwrap();
        let e = JsonlCache::open(&path).unwrap_err();
        assert!(matches!(e, CoreError::Cache { .. }), "{e:?}");
        let msg = e.to_string();
        assert!(msg.contains(&fp().digest()), "{msg}");
        assert!(msg.contains("digest mismatch"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_append_is_dropped_and_the_journal_repaired() {
        // A trailing fragment with no newline is an append that died
        // mid-write (disk full, power loss): the complete entries
        // before it must survive, the fragment must not.
        let dir = std::env::temp_dir().join(format!("nbti-rescache-cut-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = JsonlCache::in_dir(&dir).unwrap();
        cache.store(&fp(), &measurement()).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut cut = text.clone();
        cut.push_str(&text[..text.len() / 2]); // half a second line, no '\n'
        std::fs::write(&path, &cut).unwrap();

        let repaired = JsonlCache::open(&path).unwrap();
        assert_eq!(repaired.len(), 1, "the complete entry survives");
        assert!(repaired.lookup(&fp()).unwrap().is_some());
        drop(repaired);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            text,
            "the fragment was truncated away, not left to corrupt appends"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_handles_share_one_journal_without_duplicates() {
        let dir = std::env::temp_dir().join(format!("nbti-rescache-shared-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = JsonlCache::in_dir(&dir).unwrap();
        let b = JsonlCache::in_dir(&dir).unwrap();
        a.store(&fp(), &measurement()).unwrap();
        // b's index predates the append; refresh absorbs it.
        assert_eq!(b.lookup(&fp()).unwrap(), None);
        assert_eq!(b.refresh().unwrap(), 1);
        assert!(b.lookup(&fp()).unwrap().is_some());
        assert_eq!(b.refresh().unwrap(), 0, "absorbing is incremental");
        // A second handle re-storing the fingerprint appends nothing.
        b.store(&fp(), &measurement()).unwrap();
        // And a handle that has not refreshed still deduplicates by
        // absorbing under the append lock before writing.
        let c = JsonlCache::in_dir(&dir).unwrap();
        let mut other = scenario();
        other.trace_seed = 9999;
        let w = WorkloadRegistry::builtin().resolve("sha").unwrap();
        let fp2 = Fingerprint::for_scenario(&other, w.as_ref());
        c.store(&fp2, &measurement()).unwrap();
        c.store(&fp(), &measurement()).unwrap();
        drop((a, b, c));
        let text = std::fs::read_to_string(dir.join(JsonlCache::FILE_NAME)).unwrap();
        assert_eq!(
            text.lines().count(),
            2,
            "one line per distinct fingerprint:\n{text}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_metrics_shadowing_record_fields_are_rejected() {
        let dir = std::env::temp_dir().join(format!("nbti-rescache-shadow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = JsonlCache::in_dir(&dir).unwrap();
        let mut shadowed = measurement();
        shadowed.metrics = Metrics::from_pairs([("esav", 1.0)]);
        cache.store(&fp(), &shadowed).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);
        // The entry is internally consistent (digests verify) but its
        // metrics would collide with record fields on emit.
        let e = JsonlCache::open(&path).unwrap_err();
        assert!(matches!(e, CoreError::Cache { .. }), "{e:?}");
        assert!(e.to_string().contains("shadows a record field"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
