//! The "graceful degradation" alternative the paper rejects (§III-A2).
//!
//! Instead of balancing idleness, one could let unbalanced aging run its
//! course and *disable* each bank as it becomes unreliable. The paper
//! dismisses this because (i) the application then runs on a shrinking
//! cache, hurting performance, and (ii) it requires an aging detector.
//! This module quantifies (i): it computes the failure timeline of an
//! un-reindexed cache and the miss rate at each degradation stage, with
//! accesses to dead banks modelled as uncached (always-miss) traffic.

use crate::aging::AgingAnalysis;
use crate::error::CoreError;
use cache_sim::{AccessKind, CacheArray, CacheGeometry};
use trace_synth::WorkloadProfile;

/// One stage of the degradation timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationStage {
    /// Time at which this stage begins (a bank just died), years.
    pub starts_at_years: f64,
    /// Banks still alive.
    pub alive_banks: u32,
    /// Miss rate of the workload on the degraded cache.
    pub miss_rate: f64,
}

/// Graceful-degradation analysis for one cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct GracefulDegradation {
    geometry: CacheGeometry,
    trace_cycles: u64,
}

impl GracefulDegradation {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the geometry is
    /// monolithic (nothing to disable).
    pub fn new(geometry: CacheGeometry, trace_cycles: u64) -> Result<Self, CoreError> {
        if geometry.banks() < 2 {
            return Err(CoreError::InvalidParameter {
                name: "banks",
                value: geometry.banks() as f64,
                expected: "at least 2 banks",
            });
        }
        Ok(Self {
            geometry,
            trace_cycles,
        })
    }

    /// Miss rate of `profile` with the given banks disabled: an access to
    /// a dead bank can never hit and allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the mask width differs
    /// from the bank count.
    pub fn miss_rate_with_dead_banks(
        &self,
        profile: &WorkloadProfile,
        dead: &[bool],
        seed: u64,
    ) -> Result<f64, CoreError> {
        if dead.len() != self.geometry.banks() as usize {
            return Err(CoreError::InvalidParameter {
                name: "dead",
                value: dead.len() as f64,
                expected: "one flag per bank",
            });
        }
        let mut cache = CacheArray::new(self.geometry);
        let mut misses = 0u64;
        let mut total = 0u64;
        for acc in profile.trace(seed).take(self.trace_cycles as usize) {
            total += 1;
            let set = self.geometry.set_of(acc.addr);
            let bank = self.geometry.bank_of_set(set);
            if dead[bank as usize] {
                misses += 1; // uncached territory
                continue;
            }
            let kind = if acc.kind == AccessKind::Write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if !cache.access(set, self.geometry.tag_of(acc.addr), kind).hit {
                misses += 1;
            }
        }
        Ok(misses as f64 / total as f64)
    }

    /// The full degradation timeline: banks die in order of their
    /// (un-reindexed) lifetimes; each stage reports the miss rate of the
    /// surviving configuration.
    ///
    /// # Errors
    ///
    /// Propagates aging-model and parameter errors.
    pub fn timeline(
        &self,
        profile: &WorkloadProfile,
        sleep_fractions: &[f64],
        aging: &AgingAnalysis,
        seed: u64,
    ) -> Result<Vec<DegradationStage>, CoreError> {
        let banks = self.geometry.banks() as usize;
        if sleep_fractions.len() != banks {
            return Err(CoreError::InvalidParameter {
                name: "sleep_fractions",
                value: sleep_fractions.len() as f64,
                expected: "one sleep fraction per bank",
            });
        }
        // Per-bank lifetimes without re-indexing.
        let mut deaths: Vec<(usize, f64)> = sleep_fractions
            .iter()
            .enumerate()
            .map(|(b, &s)| Ok((b, aging.bank_lifetime(s, profile.p0())?)))
            .collect::<Result<_, CoreError>>()?;
        deaths.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite lifetimes"));

        let mut dead = vec![false; banks];
        let mut stages = vec![DegradationStage {
            starts_at_years: 0.0,
            alive_banks: banks as u32,
            miss_rate: self.miss_rate_with_dead_banks(profile, &dead, seed)?,
        }];
        for (bank, year) in deaths {
            dead[bank] = true;
            let alive = banks as u32 - dead.iter().filter(|&&d| d).count() as u32;
            stages.push(DegradationStage {
                starts_at_years: year,
                alive_banks: alive,
                miss_rate: self.miss_rate_with_dead_banks(profile, &dead, seed)?,
            });
        }
        Ok(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbti_model::{CellDesign, LifetimeSolver};
    use trace_synth::suite;

    fn degradation() -> GracefulDegradation {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        GracefulDegradation::new(geom, 80_000).unwrap()
    }

    fn aging() -> AgingAnalysis {
        AgingAnalysis::new(LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap())
    }

    #[test]
    fn dead_banks_strictly_increase_misses() {
        let g = degradation();
        let p = suite::by_name("dijkstra").unwrap();
        let all_alive = g.miss_rate_with_dead_banks(&p, &[false; 4], 7).unwrap();
        let one_dead = g
            .miss_rate_with_dead_banks(&p, &[true, false, false, false], 7)
            .unwrap();
        let all_dead = g.miss_rate_with_dead_banks(&p, &[true; 4], 7).unwrap();
        assert!(one_dead > all_alive);
        assert_eq!(all_dead, 1.0);
    }

    #[test]
    fn timeline_is_monotone_in_time_and_misses() {
        let g = degradation();
        let p = suite::by_name("sha").unwrap();
        let sleep = [0.05, 0.98, 0.94, 0.03];
        let stages = g.timeline(&p, &sleep, &aging(), 3).unwrap();
        assert_eq!(stages.len(), 5);
        for w in stages.windows(2) {
            assert!(w[1].starts_at_years >= w[0].starts_at_years);
            assert!(w[1].alive_banks < w[0].alive_banks);
            assert!(w[1].miss_rate >= w[0].miss_rate - 1e-9);
        }
        // The busy banks (0, 3) die first, around the 2.93-year cell
        // lifetime; the near-always-idle banks outlive them by years.
        assert!(stages[1].starts_at_years < 3.2);
        assert!(stages.last().unwrap().starts_at_years > 5.0);
    }

    #[test]
    fn mask_width_is_validated() {
        let g = degradation();
        let p = suite::by_name("sha").unwrap();
        assert!(g.miss_rate_with_dead_banks(&p, &[false; 3], 1).is_err());
        assert!(g.timeline(&p, &[0.5; 3], &aging(), 1).is_err());
    }

    #[test]
    fn monolithic_geometry_rejected() {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 1).unwrap();
        assert!(GracefulDegradation::new(geom, 1000).is_err());
    }
}
