//! Block Control hardware sizing (paper §III-A1, Fig. 1).
//!
//! The cycle-accurate counter *dynamics* are simulated by
//! [`cache_sim::BankPower`]; this module captures the hardware the paper
//! describes — "Block Control contains M counters which are incremented
//! upon a non-access [...] and reset upon an access. When a counter
//! saturates, its terminal count signal is used as the output selection
//! signal [...] 5- or 6-bit counters suffice" — and estimates its cost.

use crate::error::CoreError;
use sram_power::BreakevenAnalysis;

/// Static description of a Block Control instance.
///
/// # Examples
///
/// ```
/// use aging_cache::control::BlockControlSpec;
/// use sram_power::BreakevenAnalysis;
///
/// let be = BreakevenAnalysis::from_cycles(41)?;
/// let spec = BlockControlSpec::new(4, &be)?;
/// assert_eq!(spec.counter_bits(), 6); // "5- or 6-bit counters suffice"
/// assert_eq!(spec.flip_flops(), 4 * 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockControlSpec {
    banks: u32,
    breakeven_cycles: u32,
    counter_bits: u32,
}

impl BlockControlSpec {
    /// Sizes the Block Control for `banks` banks and a breakeven analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `banks` is zero.
    pub fn new(banks: u32, breakeven: &BreakevenAnalysis) -> Result<Self, CoreError> {
        if banks == 0 {
            return Err(CoreError::InvalidParameter {
                name: "banks",
                value: 0.0,
                expected: "at least one bank",
            });
        }
        Ok(Self {
            banks,
            breakeven_cycles: breakeven.cycles(),
            counter_bits: breakeven.counter_bits(),
        })
    }

    /// Number of saturating counters (one per bank).
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Saturation (terminal-count) value, in cycles.
    pub fn breakeven_cycles(&self) -> u32 {
        self.breakeven_cycles
    }

    /// Width of each counter in bits.
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    /// Total state: `M` counters of `counter_bits` each.
    pub fn flip_flops(&self) -> u32 {
        self.banks * self.counter_bits
    }

    /// Rough combinational gate estimate: an incrementer (≈ `w` half
    /// adders), a reset mux and a terminal-count AND per counter.
    pub fn gate_estimate(&self) -> u32 {
        self.banks * (2 * self.counter_bits + 2)
    }

    /// Whether this instance matches the paper's "few tens of cycles,
    /// 5–6 bit counters" regime.
    pub fn in_paper_regime(&self) -> bool {
        (2..=7).contains(&self.counter_bits) && self.breakeven_cycles <= 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regime_for_reference_banks() {
        // Breakeven derived for the paper's reference configuration is
        // ~41 cycles -> 6-bit counters.
        let be = BreakevenAnalysis::from_cycles(41).unwrap();
        let spec = BlockControlSpec::new(4, &be).unwrap();
        assert!(spec.in_paper_regime());
        assert_eq!(spec.counter_bits(), 6);
        assert_eq!(spec.flip_flops(), 24);
        assert!(spec.gate_estimate() > 0);
    }

    #[test]
    fn scaling_with_banks() {
        let be = BreakevenAnalysis::from_cycles(32).unwrap();
        let s4 = BlockControlSpec::new(4, &be).unwrap();
        let s16 = BlockControlSpec::new(16, &be).unwrap();
        assert_eq!(s16.flip_flops(), 4 * s4.flip_flops());
    }

    #[test]
    fn rejects_zero_banks() {
        let be = BreakevenAnalysis::from_cycles(32).unwrap();
        assert!(BlockControlSpec::new(0, &be).is_err());
    }

    #[test]
    fn out_of_regime_detection() {
        let be = BreakevenAnalysis::from_cycles(5000).unwrap();
        let spec = BlockControlSpec::new(4, &be).unwrap();
        assert!(!spec.in_paper_regime());
    }
}
