//! Static validation of study specs and result-cache journals — the
//! domain half of the lint layer (`study check` on the CLI).
//!
//! Everything here is **zero-simulation**: a check never calibrates a
//! model, never synthesizes a trace, never touches a cache bank. A
//! spec check resolves every key against the registries, validates
//! geometry and parameter ranges, reports canonical-key collisions
//! (`nbti:vlow=0.75` and `nbti-45nm` are the *same operating point* —
//! the grid would run it once per spelling) and prints the grid
//! cardinality with an estimated cold cost. A journal check re-derives
//! both content digests of every line, flags duplicates and
//! stale-engine entries, and reports the grid/journal overlap when a
//! spec is checked alongside.
//!
//! Unlike [`StudySpec::expand`], which fails on the *first* problem so
//! `run` stays cheap, a check collects **every** finding: its job is a
//! pre-flight report, not an early exit.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

use cache_sim::CacheGeometry;

use crate::analysis::Axis;
use crate::error::CoreError;
use crate::json::Json;
use crate::model::{self, ModelRegistry};
use crate::rescache::{digest_hex, CachedMeasurement, Fingerprint, ENGINE_VERSION};
use crate::search::{self, Driver, Search};
use crate::study::StudySpec;
use crate::workload::{Workload, WorkloadRegistry};

/// Severity of a [`CheckFinding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckLevel {
    /// Neutral fact about the spec or journal (grid size, coverage).
    Info,
    /// Suspicious but runnable (aliased keys, stale entries).
    Warning,
    /// The spec cannot expand or the journal entry is corrupt.
    Error,
}

/// One finding from a static check.
#[derive(Debug, Clone)]
pub struct CheckFinding {
    /// Severity.
    pub level: CheckLevel,
    /// Stable machine-readable code, e.g. `spec-model`,
    /// `journal-digest`.
    pub code: &'static str,
    /// Human explanation, one line.
    pub message: String,
}

impl std::fmt::Display for CheckFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.level {
            CheckLevel::Info => write!(f, "info[{}]: {}", self.code, self.message),
            CheckLevel::Warning => write!(f, "warning[{}]: {}", self.code, self.message),
            CheckLevel::Error => write!(f, "error[{}]: {}", self.code, self.message),
        }
    }
}

/// The accumulated findings of one or more checks, in the order they
/// were discovered (spec findings first, then journal, then
/// coverage).
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    findings: Vec<CheckFinding>,
}

impl CheckReport {
    /// All findings, discovery order.
    pub fn findings(&self) -> &[CheckFinding] {
        &self.findings
    }

    /// Number of error-level findings.
    pub fn errors(&self) -> usize {
        self.count(CheckLevel::Error)
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.count(CheckLevel::Warning)
    }

    fn count(&self, level: CheckLevel) -> usize {
        self.findings.iter().filter(|f| f.level == level).count()
    }

    /// `true` when no error-level finding was recorded (warnings and
    /// infos do not make a check fail).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Appends every finding of `other`, preserving order.
    pub fn merge(&mut self, other: CheckReport) {
        self.findings.extend(other.findings);
    }

    fn push(&mut self, level: CheckLevel, code: &'static str, message: String) {
        self.findings.push(CheckFinding {
            level,
            code,
            message,
        });
    }

    fn error(&mut self, code: &'static str, message: String) {
        self.push(CheckLevel::Error, code, message);
    }

    fn warning(&mut self, code: &'static str, message: String) {
        self.push(CheckLevel::Warning, code, message);
    }

    fn info(&mut self, code: &'static str, message: String) {
        self.push(CheckLevel::Info, code, message);
    }
}

impl std::fmt::Display for CheckReport {
    /// One finding per line, then a one-line summary. Byte-stable for
    /// a given input: findings carry no timestamps, paths are printed
    /// as given.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "check: {} error{}, {} warning{}",
            self.errors(),
            if self.errors() == 1 { "" } else { "s" },
            self.warnings(),
            if self.warnings() == 1 { "" } else { "s" },
        )
    }
}

/// Statically validates a spec against the policy/workload registries
/// it carries and the given model registry. Collects every problem
/// `expand` would reject (and several it silently tolerates) without
/// running anything.
pub fn check_spec(spec: &StudySpec, models: &ModelRegistry) -> CheckReport {
    let mut report = CheckReport::default();
    for (axis, len) in [
        ("cache_bytes", spec.cache_bytes.len()),
        ("line_bytes", spec.line_bytes.len()),
        ("banks", spec.banks.len()),
        ("ways", spec.ways.len()),
        ("replacements", spec.replacements.len()),
        ("l2_cache_bytes", spec.l2_cache_bytes.len()),
        ("l2_ways", spec.l2_ways.len()),
        ("update_days", spec.update_days.len()),
        ("policies", spec.policies.len()),
        ("workloads", spec.workloads.len()),
        ("models", spec.models.len()),
    ] {
        if len == 0 {
            report.error("spec-axis", format!("axis `{axis}` is empty"));
        }
    }

    for name in &spec.policies {
        if spec.registry.get(name).is_none() {
            report.error(
                "spec-policy",
                format!(
                    "unknown policy `{name}` (known: {})",
                    spec.registry.names().join(", ")
                ),
            );
        }
    }
    duplicate_warnings(
        &mut report,
        "policy",
        spec.policies.iter().map(String::as_str),
    );
    for name in &spec.replacements {
        if spec.replacement_registry.get(name).is_none() {
            report.error(
                "spec-replacement",
                format!(
                    "unknown replacement policy `{name}` (known: {})",
                    spec.replacement_registry.names().join(", ")
                ),
            );
        }
    }
    duplicate_warnings(
        &mut report,
        "replacement",
        spec.replacements.iter().map(String::as_str),
    );

    for &days in &spec.update_days {
        if days <= 0.0 || days.is_nan() {
            report.error(
                "spec-param",
                format!("update_days = {days} (need a positive update period)"),
            );
        }
    }
    for &t in &spec.temps_c {
        if t <= -273.15 || t.is_nan() {
            report.error(
                "spec-param",
                format!("temps_c = {t} (need a temperature above absolute zero, °C)"),
            );
        }
    }
    for &v in &spec.vdd_lows {
        if v <= 0.0 || v.is_nan() {
            report.error(
                "spec-param",
                format!("vdd_low = {v} (need a positive drowsy rail voltage)"),
            );
        }
    }
    for &pct in &spec.failure_pcts {
        if pct <= 0.0 || pct >= 100.0 || pct.is_nan() {
            report.error(
                "spec-param",
                format!("failure_pct = {pct} (need a failure criterion in (0, 100) percent)"),
            );
        }
    }
    if spec.trace_cycles == 0 {
        report.warning(
            "spec-param",
            "trace_cycles is 0 — every scenario will simulate an empty trace".to_string(),
        );
    }

    // Model axis: canonicalize and resolve each raw key individually
    // so one bad key does not mask the next.
    for key in &spec.models {
        match model::canonicalize(key) {
            Err(e) => report.error("spec-model", format!("model key `{key}`: {e}")),
            Ok(canonical) => {
                if let Err(e) = models.resolve(&canonical) {
                    report.error("spec-model", format!("model key `{key}`: {e}"));
                }
            }
        }
    }
    // Alias collisions: distinct spellings landing on one canonical
    // operating point duplicate grid scenarios (each keeps its own
    // derived policy seed, so nothing dedupes them downstream).
    if let Ok(composed) = spec.composed_model_keys() {
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for key in &composed {
            *seen.entry(key.as_str()).or_default() += 1;
        }
        for (key, n) in seen {
            if n > 1 {
                report.warning(
                    "spec-alias",
                    format!(
                        "model operating point `{key}` appears {n} times after \
                         canonicalization — aliased spellings duplicate grid scenarios"
                    ),
                );
            }
        }
    }

    for &bytes in &spec.cache_bytes {
        for &line in &spec.line_bytes {
            for &banks in &spec.banks {
                for &ways in &spec.ways {
                    if let Err(e) = CacheGeometry::new(bytes, line, ways, banks) {
                        report.error(
                            "spec-geometry",
                            format!("cache={bytes}B line={line}B ways={ways} banks={banks}: {e}"),
                        );
                    }
                }
            }
        }
    }
    // The L2 shares the line size and bank count; its capacity and
    // associativity are axes of their own. `0` means no L2 and needs
    // no geometry (it also collapses the l2_ways axis).
    for &l2_bytes in &spec.l2_cache_bytes {
        if l2_bytes == 0 {
            continue;
        }
        for &line in &spec.line_bytes {
            for &banks in &spec.banks {
                for &l2_ways in &spec.l2_ways {
                    if let Err(e) = CacheGeometry::new(l2_bytes, line, l2_ways, banks) {
                        report.error(
                            "spec-geometry",
                            format!(
                                "l2_cache_bytes={l2_bytes}B line={line}B l2_ways={l2_ways} \
                                 banks={banks}: {e}"
                            ),
                        );
                    }
                }
            }
        }
        for &bytes in &spec.cache_bytes {
            if l2_bytes < bytes {
                report.error(
                    "spec-geometry",
                    format!(
                        "l2_cache_bytes={l2_bytes}B is smaller than cache_bytes={bytes}B \
                         (the L2 must be at least as large as the L1)"
                    ),
                );
            }
        }
    }
    for w in &spec.workloads {
        if let Some(profile) = w.pinned_profile() {
            for &banks in &spec.banks {
                if profile.len() != banks as usize {
                    report.error(
                        "spec-workload",
                        format!(
                            "workload `{}` pins {} banks but the grid asks for {banks}",
                            w.name(),
                            profile.len()
                        ),
                    );
                }
            }
        }
    }
    duplicate_warnings(
        &mut report,
        "workload",
        spec.workloads.iter().map(|w| w.name()),
    );

    // Grid cardinality and cost estimate — only meaningful when every
    // axis is present.
    let models_len = spec
        .composed_model_keys()
        .map(|k| k.len())
        .unwrap_or(spec.models.len());
    // No-L2 grid points collapse the l2_ways axis (expand emits one
    // scenario, not one per l2_ways value).
    let l2_points: usize = spec
        .l2_cache_bytes
        .iter()
        .map(|&b| if b == 0 { 1 } else { spec.l2_ways.len() })
        .sum();
    let geometries = spec.cache_bytes.len()
        * spec.line_bytes.len()
        * spec.banks.len()
        * spec.ways.len()
        * spec.replacements.len()
        * l2_points;
    let scenarios = geometries
        * models_len
        * spec.update_days.len()
        * spec.policies.len()
        * spec.workloads.len();
    if scenarios > 0 {
        // One trace simulation per (geometry, workload); models,
        // update periods and policies all reuse it through the
        // session's simulation memo.
        let sims = geometries * spec.workloads.len();
        let accesses = (sims as u128) * (spec.trace_cycles as u128);
        report.info(
            "spec-grid",
            format!(
                "grid: {scenarios} scenario{} ({sims} distinct trace simulation{}, \
                 ≈{accesses} simulated accesses cold)",
                if scenarios == 1 { "" } else { "s" },
                if sims == 1 { "" } else { "s" },
            ),
        );
    }
    report
}

/// Resolves workload keys against a [`WorkloadRegistry`], turning
/// each failure into a `spec-workload` error finding instead of
/// stopping at the first bad key (the builder's
/// [`StudySpec::workload_names`] behaviour). Returns the workloads
/// that *did* resolve so the caller can still check the rest of the
/// spec around the holes.
pub fn check_workload_keys(
    registry: &WorkloadRegistry,
    keys: &[String],
) -> (Vec<Arc<dyn Workload>>, CheckReport) {
    let mut report = CheckReport::default();
    let mut resolved: Vec<Arc<dyn Workload>> = Vec::new();
    for key in keys {
        match registry.resolve(key) {
            Ok(w) => resolved.push(w),
            Err(e) => report.error("spec-workload", format!("workload `{key}`: {e}")),
        }
    }
    // Duplicate keys are left to `check_spec`: they resolve to
    // same-named workloads, which the axis walk already reports.
    (resolved, report)
}

fn duplicate_warnings<'a>(
    report: &mut CheckReport,
    what: &str,
    names: impl Iterator<Item = &'a str>,
) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for name in names {
        *counts.entry(name).or_default() += 1;
    }
    for (name, n) in counts {
        if n > 1 {
            report.warning(
                "spec-duplicate",
                format!("{what} `{name}` appears {n} times on its axis — duplicate grid points"),
            );
        }
    }
}

/// The result of [`check_journal`]: the findings plus the canonical
/// key of every line that parsed far enough to expose one (used by
/// [`check_coverage`]).
#[derive(Debug, Default)]
pub struct JournalCheck {
    /// The findings.
    pub report: CheckReport,
    /// Canonical keys in journal order (duplicates included).
    pub keys: Vec<String>,
}

/// Statically validates a result-cache journal: every complete line
/// must parse, both content digests must verify, and duplicate or
/// stale-engine fingerprints are reported. Unlike
/// [`JsonlCache::open`](crate::rescache::JsonlCache::open), which
/// fails fast on the first corrupt entry, this walks the whole file
/// and reports every problem. Nothing is repaired and nothing is
/// written.
pub fn check_journal(path: &Path) -> JournalCheck {
    let mut out = JournalCheck::default();
    let report = &mut out.report;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            report.error(
                "journal-missing",
                format!("cannot read journal {}: {e}", path.display()),
            );
            return out;
        }
    };
    let mut lineno = 0usize;
    let mut entries = 0usize;
    let mut first_line_of: BTreeMap<String, usize> = BTreeMap::new();
    let mut tail_complete = true;
    for line in text.split_inclusive('\n') {
        lineno += 1;
        let Some(line) = line.strip_suffix('\n') else {
            // A trailing fragment with no newline is an append cut
            // short — exactly what `JsonlCache::open` repairs by
            // truncation. Not an error: no completed entry is lost.
            tail_complete = false;
            report.warning(
                "journal-truncated",
                format!(
                    "line {lineno}: trailing {}-byte fragment without a newline \
                     (interrupted append; reopening the cache repairs it by truncation)",
                    line.len()
                ),
            );
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        let v = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                report.error("journal-parse", format!("line {lineno}: {e}"));
                continue;
            }
        };
        let fields = (|| -> Result<(String, String, String), CoreError> {
            Ok((
                v.field("fp")?.as_str("fp")?.to_string(),
                v.field("check")?.as_str("check")?.to_string(),
                v.field("key")?.as_str("key")?.to_string(),
            ))
        })();
        let (fp, check, key) = match fields {
            Ok(f) => f,
            Err(e) => {
                report.error("journal-parse", format!("line {lineno}: {e}"));
                continue;
            }
        };
        entries += 1;
        if digest_hex(key.as_bytes()) != fp {
            report.error(
                "journal-digest",
                format!(
                    "line {lineno} (fp {fp}): key digest mismatch — the key or the fp \
                     field was altered"
                ),
            );
        }
        match v.field("record") {
            Err(e) => report.error("journal-parse", format!("line {lineno}: {e}")),
            Ok(record) => {
                if digest_hex(record.emit().as_bytes()) != check {
                    report.error(
                        "journal-digest",
                        format!(
                            "line {lineno} (fp {fp}): measurement digest mismatch — the \
                             record was altered"
                        ),
                    );
                } else if let Err(e) = CachedMeasurement::from_json(record) {
                    report.error("journal-record", format!("line {lineno} (fp {fp}): {e}"));
                }
            }
        }
        if !key.starts_with(&format!("v={ENGINE_VERSION};")) {
            report.warning(
                "journal-stale",
                format!(
                    "line {lineno} (fp {fp}): entry predates engine version \
                     `{ENGINE_VERSION}` and will never be looked up"
                ),
            );
        }
        if let Some(&first) = first_line_of.get(&key) {
            report.warning(
                "journal-duplicate",
                format!("line {lineno} (fp {fp}): duplicates line {first}"),
            );
        } else {
            first_line_of.insert(key.clone(), lineno);
        }
        out.keys.push(key);
    }
    let distinct = first_line_of.len();
    report.info(
        "journal-summary",
        format!(
            "journal: {entries} entr{} on {lineno} line{}, {distinct} distinct \
             fingerprint{}{}",
            if entries == 1 { "y" } else { "ies" },
            if lineno == 1 { "" } else { "s" },
            if distinct == 1 { "" } else { "s" },
            if tail_complete {
                ""
            } else {
                " (plus a truncated tail)"
            },
        ),
    );
    out
}

/// Reports the overlap between a spec's expanded grid and a set of
/// journal keys: how many grid points are already journaled (warm)
/// and how many journal entries this grid will never ask about
/// (orphaned — normal for a journal shared across studies, so an info
/// rather than a warning). Fingerprints are computed exactly as the
/// grid runner computes them; nothing is simulated.
pub fn check_coverage(spec: &StudySpec, journal_keys: &[String]) -> CheckReport {
    let mut report = CheckReport::default();
    let grid = match spec.expand() {
        Ok(grid) => grid,
        Err(_) => return report, // spec findings already cover this
    };
    let mut grid_keys = BTreeSet::new();
    for scenario in grid.scenarios() {
        let Some(workload) = grid.workloads().get(scenario.workload_index) else {
            continue; // expand() always indexes in range
        };
        grid_keys.insert(
            Fingerprint::for_scenario(scenario, workload.as_ref())
                .canonical()
                .to_string(),
        );
    }
    let journal: BTreeSet<&str> = journal_keys.iter().map(String::as_str).collect();
    let warm = grid_keys
        .iter()
        .filter(|k| journal.contains(k.as_str()))
        .count();
    let orphaned = journal.iter().filter(|k| !grid_keys.contains(**k)).count();
    report.info(
        "coverage",
        format!(
            "coverage: {warm}/{} grid fingerprint{} already journaled; {orphaned} journal \
             entr{} outside this grid",
            grid_keys.len(),
            if grid_keys.len() == 1 { "" } else { "s" },
            if orphaned == 1 { "y is" } else { "ies are" },
        ),
    );
    report
}

/// Statically validates a configured [`Search`]: the leaf specs of
/// the scenario space (via [`check_spec`]), the objective and
/// constraint metric names against [`search::KNOWN_METRICS`], the
/// probe budget, and driver/axis compatibility — bisection demands
/// exactly one varying axis and that axis must carry an order
/// (policy and workload are categorical, so bisecting them is an
/// error, not a wish).
///
/// Like every check this is **zero-simulation**: the space is
/// expanded (pure arithmetic over the axes) but nothing is
/// calibrated, synthesized or simulated.
pub fn check_search(search: &Search, models: &ModelRegistry) -> CheckReport {
    let mut report = CheckReport::default();
    for spec in search.space().specs() {
        report.merge(check_spec(spec, models));
    }

    let mut metrics: Vec<(&'static str, &'static str, &str)> = vec![(
        "objective",
        "search-objective",
        search.objective().metric.as_str(),
    )];
    for c in search.constraints_list() {
        metrics.push(("constraint", "search-constraint", c.metric.as_str()));
    }
    for (what, code, metric) in metrics {
        if !search::KNOWN_METRICS.contains(&metric) {
            report.error(
                code,
                format!(
                    "{what} metric `{metric}` is not a measured output or a built-in \
                     model metric (known: {})",
                    search::KNOWN_METRICS.join(", ")
                ),
            );
        }
    }

    if search.budget_cap() == Some(0) {
        report.error(
            "search-budget",
            "budget 0 probes nothing; drop --budget or raise it".to_string(),
        );
    }

    let grid = match search.space().expand() {
        Ok(grid) => grid,
        Err(e) => {
            // Leaf-spec findings above usually explain why; a
            // composition-level failure (empty filter result, union
            // registry mismatch) surfaces here.
            if report.errors() == 0 {
                report.error("search-space", format!("space does not expand: {e}"));
            }
            return report;
        }
    };
    let varying = search::varying_axes(&grid);
    if search.driver_kind() == Driver::Bisect {
        match varying.as_slice() {
            [axis] if matches!(axis, Axis::Policy | Axis::Workload) => {
                report.error(
                    "search-driver",
                    format!(
                        "bisect on axis `{}`: categorical axes have no order to \
                         bisect (use exhaustive)",
                        axis.name()
                    ),
                );
            }
            [_] => {}
            [] => {
                report.error(
                    "search-driver",
                    "bisect: no axis varies across the space (use exhaustive)".to_string(),
                );
            }
            many => {
                let names: Vec<&str> = many.iter().map(|a| a.name()).collect();
                report.error(
                    "search-driver",
                    format!(
                        "bisect: needs exactly one varying axis, space has {}: {} \
                         (use refine or exhaustive)",
                        many.len(),
                        names.join(", ")
                    ),
                );
            }
        }
        let floor = (grid.len().max(2) as f64).log2().ceil() as usize + 3;
        if search.budget_cap().is_some_and(|b| b > 0 && b < floor) {
            report.warning(
                "search-budget",
                format!(
                    "budget {} is below the ~{floor} probes bisection needs over {} \
                     points; the driver will stop early",
                    search.budget_cap().unwrap_or(0),
                    grid.len()
                ),
            );
        }
    }
    report.info(
        "search-space",
        format!(
            "space expands to {} scenario{}; driver `{}` under budget {}",
            grid.len(),
            if grid.len() == 1 { "" } else { "s" },
            search.driver_kind().key(),
            search
                .budget_cap()
                .map_or_else(|| "unlimited".to_string(), |b| b.to_string()),
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Metrics;
    use crate::rescache::{JsonlCache, ResultCache};
    use crate::study::StudySpec;

    fn small_spec() -> StudySpec {
        StudySpec::new("check-test")
            .workload_names(["sha"])
            .unwrap()
            .policies(["identity", "probing"])
            .trace_cycles(4_000)
            .policy_seed(1)
    }

    #[test]
    fn clean_spec_reports_grid_only() {
        let report = check_spec(&small_spec(), &ModelRegistry::builtin());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.warnings(), 0, "{report}");
        let text = report.to_string();
        assert!(
            text.contains("grid: 2 scenarios (1 distinct trace simulation"),
            "{text}"
        );
    }

    #[test]
    fn unresolvable_model_key_is_an_error_not_a_panic() {
        let spec = small_spec().models(["warp-drive", "nbti:temp=oops"]);
        let report = check_spec(&spec, &ModelRegistry::builtin());
        assert_eq!(report.errors(), 2, "{report}");
        let text = report.to_string();
        assert!(
            text.contains("error[spec-model]: model key `warp-drive`"),
            "{text}"
        );
        assert!(
            text.contains("error[spec-model]: model key `nbti:temp=oops`"),
            "{text}"
        );
    }

    #[test]
    fn aliased_model_spellings_are_reported_not_deduped() {
        // `nbti:vlow=0.75` canonicalizes to the default operating
        // point — the same point as `nbti-45nm` spelled differently.
        let spec = small_spec().models(["nbti-45nm", "nbti:vlow=0.75"]);
        let report = check_spec(&spec, &ModelRegistry::builtin());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.warnings(), 1, "{report}");
        assert!(
            report.to_string().contains("warning[spec-alias]"),
            "{report}"
        );
    }

    #[test]
    fn check_collects_every_finding_where_expand_stops_at_one() {
        let spec = small_spec()
            .policies(["identity", "no-such-policy"])
            .banks([3]) // not a power of two
            .update_days([-1.0]);
        let report = check_spec(&spec, &ModelRegistry::builtin());
        assert!(report.errors() >= 3, "{report}");
        let text = report.to_string();
        assert!(text.contains("spec-policy"), "{text}");
        assert!(text.contains("spec-geometry"), "{text}");
        assert!(text.contains("spec-param"), "{text}");
        // expand() reports exactly one of these.
        assert!(spec.expand().is_err());
    }

    #[test]
    fn journal_check_verifies_and_flags_corruption() {
        let dir = std::env::temp_dir().join(format!("aging-check-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = JsonlCache::in_dir(&dir).unwrap();
        let grid = small_spec().expand().unwrap();
        let scenario = &grid.scenarios()[0];
        let workload = &grid.workloads()[scenario.workload_index];
        let fp = Fingerprint::for_scenario(scenario, workload.as_ref());
        let m = CachedMeasurement {
            sim_cycles: 4_000,
            esav: 0.4,
            miss_rate: 0.1,
            useful_idleness: vec![0.1, 0.2, 0.3, 0.4],
            sleep_fractions: vec![0.1, 0.2, 0.3, 0.4],
            metrics: Metrics::from_pairs([("lt_years", 1.5)]),
        };
        cache.store(&fp, &m).unwrap();
        let path = cache.path().to_path_buf();
        drop(cache);

        let clean = check_journal(&path);
        assert!(clean.report.is_clean(), "{}", clean.report);
        assert_eq!(clean.keys.len(), 1);

        // Flip one digit of the stored metric: `check` no longer
        // matches the record, and only that line is named.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replace("\"lt_years\":1.5", "\"lt_years\":2.5");
        assert_ne!(text, corrupted, "fixture must contain the metric");
        std::fs::write(&path, corrupted).unwrap();
        let bad = check_journal(&path);
        assert_eq!(bad.report.errors(), 1, "{}", bad.report);
        assert!(
            bad.report.to_string().contains("journal-digest"),
            "{}",
            bad.report
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coverage_counts_warm_and_orphaned() {
        let spec = small_spec();
        let grid = spec.expand().unwrap();
        let scenario = &grid.scenarios()[0];
        let workload = &grid.workloads()[scenario.workload_index];
        let warm_key = Fingerprint::for_scenario(scenario, workload.as_ref())
            .canonical()
            .to_string();
        let keys = vec![warm_key, format!("v={ENGINE_VERSION};not-in-grid")];
        let report = check_coverage(&spec, &keys);
        let text = report.to_string();
        assert!(text.contains("coverage: 1/2"), "{text}");
        assert!(
            text.contains("1 journal entry is outside this grid"),
            "{text}"
        );
    }
}
