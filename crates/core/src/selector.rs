//! The Block Selector: per-bank supply-rail switching (paper Fig. 1).
//!
//! "Block Selector drives the correct value of supply voltage (Vdd or
//! Vdd,low) to each block according to the encoding on the select
//! signals." The selector is purely combinational: select bit high →
//! drowsy rail.

use crate::error::CoreError;

/// Which supply rail a bank is connected to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// Full `Vdd`: the bank is accessible.
    Vdd,
    /// Retention `Vdd,low`: contents kept, access requires a wake-up.
    VddLow,
}

/// Maps the Block Control select word to per-bank rails.
///
/// # Examples
///
/// ```
/// use aging_cache::{BlockSelector, Rail};
///
/// let sel = BlockSelector::new(4)?;
/// // Select word 0b0110: banks 1 and 2 asleep.
/// let rails = sel.rails(0b0110)?;
/// assert_eq!(rails, vec![Rail::Vdd, Rail::VddLow, Rail::VddLow, Rail::Vdd]);
/// # Ok::<(), aging_cache::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSelector {
    banks: u32,
}

impl BlockSelector {
    /// Creates a selector for `banks` banks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `banks` is zero or
    /// exceeds 32 (the select word width).
    pub fn new(banks: u32) -> Result<Self, CoreError> {
        if banks == 0 || banks > 32 {
            return Err(CoreError::InvalidParameter {
                name: "banks",
                value: banks as f64,
                expected: "1..=32 banks",
            });
        }
        Ok(Self { banks })
    }

    /// Number of banks driven.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Decodes a select word (bit `b` set = bank `b` sleeps) into rails.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `select` has bits set
    /// beyond the bank count.
    pub fn rails(&self, select: u32) -> Result<Vec<Rail>, CoreError> {
        let mask = if self.banks == 32 {
            u32::MAX
        } else {
            (1u32 << self.banks) - 1
        };
        if select & !mask != 0 {
            return Err(CoreError::InvalidParameter {
                name: "select",
                value: select as f64,
                expected: "select bits within the bank count",
            });
        }
        Ok((0..self.banks)
            .map(|b| {
                if select & (1 << b) != 0 {
                    Rail::VddLow
                } else {
                    Rail::Vdd
                }
            })
            .collect())
    }

    /// Number of rail-switch (power-mux) cells: one per bank.
    pub fn switch_count(&self) -> u32 {
        self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_awake_and_all_asleep() {
        let sel = BlockSelector::new(4).unwrap();
        assert!(sel.rails(0).unwrap().iter().all(|&r| r == Rail::Vdd));
        assert!(sel
            .rails(0b1111)
            .unwrap()
            .iter()
            .all(|&r| r == Rail::VddLow));
    }

    #[test]
    fn rejects_select_bits_beyond_banks() {
        let sel = BlockSelector::new(4).unwrap();
        assert!(sel.rails(0b10000).is_err());
        assert!(sel.rails(0b1111).is_ok());
    }

    #[test]
    fn bounds_on_bank_count() {
        assert!(BlockSelector::new(0).is_err());
        assert!(BlockSelector::new(33).is_err());
        assert!(BlockSelector::new(32).is_ok());
    }

    #[test]
    fn one_switch_per_bank() {
        assert_eq!(BlockSelector::new(16).unwrap().switch_count(), 16);
    }
}
