//! Plain-text / markdown table rendering for experiment reports.

use std::fmt;

/// A rendered experiment table.
///
/// # Examples
///
/// ```
/// use aging_cache::report::Table;
///
/// let mut t = Table::new("Demo", vec!["bench".into(), "Esav".into()]);
/// t.push_row(vec!["sha".into(), "44.2%".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Demo"));
/// assert!(text.contains("sha"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes added so far.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Appends a free-text footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in w.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        w
    }

    /// Renders as RFC-4180 CSV: the header row then the data rows,
    /// `\n`-terminated, fields quoted only when they contain a comma,
    /// quote or newline (quotes doubled). The title and notes are
    /// presentation, not data, and are deliberately omitted.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_cache::report::Table;
    ///
    /// let mut t = Table::new("Demo", vec!["bench".into(), "Esav".into()]);
    /// t.push_row(vec!["sha, fast".into(), "44.2".into()]);
    /// assert_eq!(t.to_csv(), "bench,Esav\n\"sha, fast\",44.2\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            out.push_str(&line.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "=== {} ===", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (cell, &width) in cells.iter().zip(&widths) {
                write!(f, "{cell:>width$}  ")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal (`0.443` → `44.3`).
pub fn pct(v: f64) -> String {
    format!("{:.1}", 100.0 * v)
}

/// Formats years with two decimals.
pub fn years(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Formats a ratio as `x.xx×`.
pub fn factor(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        t.push_note("hello");
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = sample().to_string();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("333"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("*hello*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.443), "44.3");
        assert_eq!(years(4.315), "4.32");
        assert_eq!(years(f64::INFINITY), "inf");
        assert_eq!(factor(2.0), "2.00x");
    }
}
