//! The paper's published numbers, embedded for side-by-side reporting.
//!
//! Source: A. Calimera, M. Loghi, E. Macii, M. Poncino, *"Partitioned
//! Cache Architectures for Reduced NBTI-Induced Aging"*, DATE 2011,
//! Tables I–IV and §IV prose. Energy savings are fractions (the paper
//! prints percents), lifetimes are years.

/// Lifetime of a standard (always-on, monolithic) memory cell in the
/// paper's 45 nm technology.
pub const CELL_LIFETIME_YEARS: f64 = 2.93;

/// The paper's benchmark names, in Table order.
pub const BENCHMARKS: [&str; 18] = [
    "adpcm.dec",
    "cjpeg",
    "CRC32",
    "dijkstra",
    "djpeg",
    "fft_1",
    "fft_2",
    "gsmd",
    "gsme",
    "ispell",
    "lame",
    "mad",
    "rijndael_i",
    "rijndael_o",
    "say",
    "search",
    "sha",
    "tiff2bw",
];

/// One row of Table II: `(Esav, LT0, LT)` for 8 kB, 16 kB, 32 kB caches
/// (16 B lines, M = 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Energy saving fraction per cache size `[8k, 16k, 32k]`.
    pub esav: [f64; 3],
    /// Lifetime without re-indexing, years, per cache size.
    pub lt0: [f64; 3],
    /// Lifetime with re-indexing, years, per cache size.
    pub lt: [f64; 3],
}

/// Table II: energy savings and lifetime when varying cache size.
pub const TABLE2: [Table2Row; 18] = [
    Table2Row {
        name: "adpcm.dec",
        esav: [0.306, 0.438, 0.557],
        lt0: [2.98, 3.04, 3.04],
        lt: [4.82, 3.76, 4.03],
    },
    Table2Row {
        name: "cjpeg",
        esav: [0.315, 0.440, 0.556],
        lt0: [3.18, 3.17, 3.11],
        lt: [4.07, 4.32, 4.75],
    },
    Table2Row {
        name: "CRC32",
        esav: [0.333, 0.450, 0.561],
        lt0: [2.98, 2.93, 2.93],
        lt: [3.40, 3.88, 4.00],
    },
    Table2Row {
        name: "dijkstra",
        esav: [0.312, 0.444, 0.555],
        lt0: [3.26, 3.31, 3.29],
        lt: [3.99, 4.31, 3.99],
    },
    Table2Row {
        name: "djpeg",
        esav: [0.322, 0.442, 0.552],
        lt0: [3.61, 3.36, 3.52],
        lt: [4.12, 4.02, 4.35],
    },
    Table2Row {
        name: "fft_1",
        esav: [0.322, 0.442, 0.556],
        lt0: [3.17, 2.96, 3.24],
        lt: [4.30, 4.46, 4.44],
    },
    Table2Row {
        name: "fft_2",
        esav: [0.322, 0.442, 0.556],
        lt0: [3.11, 2.97, 3.18],
        lt: [4.34, 4.42, 4.40],
    },
    Table2Row {
        name: "gsmd",
        esav: [0.313, 0.442, 0.552],
        lt0: [2.94, 3.08, 3.03],
        lt: [4.59, 3.81, 5.10],
    },
    Table2Row {
        name: "gsme",
        esav: [0.315, 0.439, 0.551],
        lt0: [2.94, 2.94, 3.03],
        lt: [4.90, 4.50, 4.37],
    },
    Table2Row {
        name: "ispell",
        esav: [0.336, 0.452, 0.559],
        lt0: [3.50, 3.40, 3.42],
        lt: [4.55, 4.74, 4.75],
    },
    Table2Row {
        name: "lame",
        esav: [0.321, 0.444, 0.557],
        lt0: [3.31, 3.55, 3.33],
        lt: [4.06, 4.12, 4.49],
    },
    Table2Row {
        name: "mad",
        esav: [0.321, 0.437, 0.550],
        lt0: [3.73, 3.74, 3.72],
        lt: [4.10, 4.76, 4.59],
    },
    Table2Row {
        name: "rijndael_i",
        esav: [0.329, 0.444, 0.550],
        lt0: [3.02, 3.11, 3.26],
        lt: [4.02, 4.10, 4.90],
    },
    Table2Row {
        name: "rijndael_o",
        esav: [0.331, 0.444, 0.552],
        lt0: [3.01, 3.13, 2.96],
        lt: [3.96, 4.16, 5.23],
    },
    Table2Row {
        name: "say",
        esav: [0.319, 0.439, 0.554],
        lt0: [3.27, 3.06, 3.38],
        lt: [4.92, 5.09, 4.43],
    },
    Table2Row {
        name: "search",
        esav: [0.334, 0.453, 0.561],
        lt0: [3.57, 3.58, 3.07],
        lt: [4.67, 4.27, 4.24],
    },
    Table2Row {
        name: "sha",
        esav: [0.311, 0.436, 0.550],
        lt0: [3.00, 3.03, 3.02],
        lt: [4.74, 4.48, 6.09],
    },
    Table2Row {
        name: "tiff2bw",
        esav: [0.334, 0.447, 0.556],
        lt0: [3.41, 3.13, 3.09],
        lt: [4.57, 4.31, 4.98],
    },
];

/// Table II averages: `(Esav, LT0, LT)` per cache size.
pub const TABLE2_AVG: ([f64; 3], [f64; 3], [f64; 3]) = (
    [0.322, 0.443, 0.555],
    [3.22, 3.19, 3.20],
    [4.34, 4.31, 4.62],
);

/// One row of Table III: `(Esav, LT)` at 16 B and 32 B line sizes
/// (16 kB cache, M = 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `[Esav @16B, LT @16B, Esav @32B, LT @32B]`.
    pub values: [f64; 4],
}

/// Table III: energy savings and lifetime when varying line size.
pub const TABLE3: [Table3Row; 18] = [
    Table3Row {
        name: "adpcm.dec",
        values: [0.438, 3.76, 0.310, 3.61],
    },
    Table3Row {
        name: "cjpeg",
        values: [0.440, 4.32, 0.312, 4.26],
    },
    Table3Row {
        name: "CRC32",
        values: [0.450, 3.88, 0.335, 3.82],
    },
    Table3Row {
        name: "dijkstra",
        values: [0.444, 4.31, 0.310, 4.17],
    },
    Table3Row {
        name: "djpeg",
        values: [0.442, 4.02, 0.317, 3.95],
    },
    Table3Row {
        name: "fft_1",
        values: [0.442, 4.46, 0.319, 4.38],
    },
    Table3Row {
        name: "fft_2",
        values: [0.442, 4.42, 0.319, 4.35],
    },
    Table3Row {
        name: "gsmd",
        values: [0.442, 3.81, 0.316, 3.71],
    },
    Table3Row {
        name: "gsme",
        values: [0.439, 4.50, 0.317, 4.46],
    },
    Table3Row {
        name: "ispell",
        values: [0.452, 4.74, 0.333, 4.66],
    },
    Table3Row {
        name: "lame",
        values: [0.444, 4.12, 0.321, 4.07],
    },
    Table3Row {
        name: "mad",
        values: [0.437, 4.76, 0.312, 4.66],
    },
    Table3Row {
        name: "rijndael_i",
        values: [0.444, 4.10, 0.316, 3.99],
    },
    Table3Row {
        name: "rijndael_o",
        values: [0.444, 4.16, 0.316, 4.03],
    },
    Table3Row {
        name: "say",
        values: [0.439, 5.09, 0.314, 5.05],
    },
    Table3Row {
        name: "search",
        values: [0.453, 4.27, 0.331, 4.17],
    },
    Table3Row {
        name: "sha",
        values: [0.436, 4.48, 0.312, 4.47],
    },
    Table3Row {
        name: "tiff2bw",
        values: [0.448, 4.31, 0.330, 4.32],
    },
];

/// Table III averages: `[Esav @16B, LT @16B, Esav @32B, LT @32B]`.
pub const TABLE3_AVG: [f64; 4] = [0.443, 4.31, 0.319, 4.23];

/// Table IV: average idleness (fraction) and lifetime (years) per
/// `(cache size, M)`. Rows: 8 kB, 16 kB, 32 kB; columns: M = 2, 4, 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Cache size in kB.
    pub size_kb: u32,
    /// `(idleness fraction, lifetime years)` for M = 2, 4, 8.
    pub per_banks: [(f64, f64); 3],
}

/// Table IV: average idleness and lifetime when varying cache size and
/// number of blocks.
pub const TABLE4: [Table4Row; 3] = [
    Table4Row {
        size_kb: 8,
        per_banks: [(0.15, 3.34), (0.42, 4.34), (0.58, 5.30)],
    },
    Table4Row {
        size_kb: 16,
        per_banks: [(0.15, 3.35), (0.41, 4.31), (0.64, 5.69)],
    },
    Table4Row {
        size_kb: 32,
        per_banks: [(0.25, 3.68), (0.47, 4.62), (0.68, 5.98)],
    },
];

/// Headline claims (§I, §IV-B1):
pub mod claims {
    /// Power management alone extends lifetime by "a modest 9 %".
    pub const LT0_IMPROVEMENT: f64 = 0.09;
    /// Re-indexing adds "a further 38 %" over the power-managed cache.
    pub const REINDEX_FURTHER_IMPROVEMENT: f64 = 0.38;
    /// Per-size lifetime extension over the monolithic cell:
    /// 48 % (8 kB), 47.1 % (16 kB), 57.6 % (32 kB).
    pub const EXTENSION_PER_SIZE: [f64; 3] = [0.48, 0.471, 0.576];
    /// Best case: sha reaches a 2x lifetime extension.
    pub const BEST_CASE_FACTOR: f64 = 2.0;
    /// Worst configuration still gains at least ~22 %.
    pub const WORST_CASE_GAIN: f64 = 0.22;
    /// M = 2 yields "no more than a 26 % lifetime extension".
    pub const M2_MAX_GAIN: f64 = 0.26;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_benchmarks_in_order() {
        assert_eq!(TABLE2.len(), 18);
        assert_eq!(TABLE3.len(), 18);
        for (i, name) in BENCHMARKS.iter().enumerate() {
            assert_eq!(TABLE2[i].name, *name);
            assert_eq!(TABLE3[i].name, *name);
        }
    }

    #[test]
    fn published_averages_match_rows() {
        // Recompute the column averages from the rows; they must match
        // the paper's printed averages to rounding.
        for size in 0..3 {
            let esav: f64 = TABLE2.iter().map(|r| r.esav[size]).sum::<f64>() / 18.0;
            let lt0: f64 = TABLE2.iter().map(|r| r.lt0[size]).sum::<f64>() / 18.0;
            let lt: f64 = TABLE2.iter().map(|r| r.lt[size]).sum::<f64>() / 18.0;
            assert!(
                (esav - TABLE2_AVG.0[size]).abs() < 0.005,
                "esav size {size}"
            );
            assert!((lt0 - TABLE2_AVG.1[size]).abs() < 0.05, "lt0 size {size}");
            assert!((lt - TABLE2_AVG.2[size]).abs() < 0.05, "lt size {size}");
        }
        for (col, &published) in TABLE3_AVG.iter().enumerate() {
            let avg: f64 = TABLE3.iter().map(|r| r.values[col]).sum::<f64>() / 18.0;
            assert!((avg - published).abs() < 0.05, "table3 col {col}");
        }
    }

    #[test]
    fn re_indexing_always_wins_in_the_paper_too() {
        for row in TABLE2 {
            for size in 0..3 {
                assert!(row.lt[size] > row.lt0[size], "{}", row.name);
                assert!(row.lt0[size] >= CELL_LIFETIME_YEARS - 0.01, "{}", row.name);
            }
        }
    }

    #[test]
    fn table4_trends_hold() {
        for row in TABLE4 {
            // Idleness and lifetime increase with M.
            assert!(row.per_banks[0].0 < row.per_banks[1].0);
            assert!(row.per_banks[1].0 < row.per_banks[2].0);
            assert!(row.per_banks[0].1 < row.per_banks[1].1);
            assert!(row.per_banks[1].1 < row.per_banks[2].1);
        }
    }

    #[test]
    fn sha_is_the_paper_best_case() {
        let sha = TABLE2.iter().find(|r| r.name == "sha").unwrap();
        assert!(sha.lt[2] / CELL_LIFETIME_YEARS > claims::BEST_CASE_FACTOR);
    }
}
