//! Stand-alone worker-process entry point over the built-in
//! registries: parses the distribution layer's `--worker` protocol
//! flags ([`WorkerConfig::parse`]) and runs shards to completion
//! ([`run_worker`]). The integration tests and the CI smoke spawn this
//! binary as their worker fleet; the full `study` CLI embeds the same
//! worker mode behind its own `--worker` flag.
//!
//! One extra flag beyond the protocol: `--register-bomb` registers a
//! device model named `bomb` that calibrates fine and panics on every
//! evaluation — the fault the crash tests use to prove a worker-side
//! scenario panic crosses the process boundary as
//! `CoreError::ScenarioPanicked` with the global scenario id intact.
//!
//! [`WorkerConfig::parse`]: aging_cache::distrib::WorkerConfig::parse
//! [`run_worker`]: aging_cache::distrib::run_worker

use aging_cache::distrib::{run_worker, WorkerConfig};
use aging_cache::error::CoreError;
use aging_cache::model::{CalibratedModel, Metrics, ModelContext, ModelEval, ModelRegistry};
use aging_cache::session::StudySession;
use std::sync::Arc;

struct Bomb;

impl CalibratedModel for Bomb {
    fn evaluate(&self, _eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
        panic!("the bomb model always explodes")
    }
}

fn run(args: &[String]) -> Result<(), CoreError> {
    let mut args = args.to_vec();
    let register_bomb = if let Some(i) = args.iter().position(|a| a == "--register-bomb") {
        args.remove(i);
        true
    } else {
        false
    };
    let config = WorkerConfig::parse(&args)?;
    let session = if register_bomb {
        let mut registry = ModelRegistry::builtin();
        registry.register_fn("bomb", "panics on evaluate", "none", || Ok(Arc::new(Bomb)))?;
        StudySession::with_context(ModelContext::with_registry(registry))
    } else {
        StudySession::new()
    };
    run_worker(&config, session)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("study_worker: {e}");
        std::process::exit(1);
    }
}
