//! Multi-process journal stress tool.
//!
//! Appends a deterministic run of synthetic measurements to a shared
//! [`JsonlCache`] directory:
//!
//! ```text
//! cache_hammer <cache-dir> <start> <count>
//! ```
//!
//! Keys are `v=<ENGINE_VERSION>;hammer;k=<i>` for `i` in
//! `start..start + count`, and the measurement stored under key `i` is
//! a pure function of `i` — so two hammers racing over *overlapping*
//! ranges attempt to journal identical lines for the shared keys, and
//! the journal is correct iff each key ends up on exactly one line.
//! `tests/journal_hammer.rs` and the CI smoke drive two of these
//! concurrently and then hold the reopened journal to
//! `study check --journal` (zero duplicate or corrupt findings).

use aging_cache::rescache::{CachedMeasurement, Fingerprint, JsonlCache, ResultCache};

fn measurement(i: u64) -> CachedMeasurement {
    CachedMeasurement {
        sim_cycles: 1_000 + i,
        esav: (i as f64) / 1_000.0,
        miss_rate: (i as f64 % 97.0) / 97.0,
        useful_idleness: vec![0.25, (i as f64 % 11.0) / 11.0],
        sleep_fractions: vec![0.125, (i as f64 % 13.0) / 13.0],
        metrics: aging_cache::model::Metrics::from_pairs([("lt0_years", 1.0 + i as f64)]),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let [dir, start, count] = args else {
        return Err("usage: cache_hammer <cache-dir> <start> <count>".into());
    };
    let start: u64 = start.parse().map_err(|e| format!("bad start: {e}"))?;
    let count: u64 = count.parse().map_err(|e| format!("bad count: {e}"))?;
    let cache = JsonlCache::in_dir(dir).map_err(|e| e.to_string())?;
    for i in start..start + count {
        let fp = Fingerprint::from_canonical(format!(
            "v={};hammer;k={i}",
            aging_cache::rescache::ENGINE_VERSION
        ));
        cache
            .store(&fp, &measurement(i))
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("cache_hammer: {message}");
        std::process::exit(1);
    }
}
