//! The lifetime pipeline: sleep fractions → policy rotation → cache
//! lifetime.
//!
//! The paper's simulator consumes a characterization LUT keyed on
//! `(p0, Psleep)` and assumes workload stationarity over the device
//! lifetime; re-indexing then rotates which *physical* bank experiences
//! which *logical* bank's idleness, one rotation per `update` (e.g. per
//! day). This module reproduces that computation exactly:
//!
//! 1. every logical bank `l` has an effective-stress *rate* derived from
//!    its sleep fraction `S_l` (and the shared `p0`),
//! 2. on each update period the policy assigns logical banks to physical
//!    banks; each physical bank accumulates effective stress at its
//!    current tenant's rate,
//! 3. the **cache** dies when the first physical bank's accumulated
//!    stress crosses the SNM-failure threshold.
//!
//! Under the identity policy the least-idle bank takes all the stress
//! (the paper's `LT0`); under Probing/Scrambling the stress is averaged
//! and every bank dies at (nearly) the same, later time (`LT`).

use crate::error::CoreError;
use cache_sim::BankMapping;
use nbti_model::{LifetimeSolver, SleepMode, StressProfile};

/// Default update interval: one day, the paper's suggested frequency.
pub const DEFAULT_UPDATE_INTERVAL_YEARS: f64 = 1.0 / 365.25;

/// Default search horizon.
pub const DEFAULT_HORIZON_YEARS: f64 = 200.0;

/// The rotation-aware lifetime analysis.
///
/// # Examples
///
/// Policies resolve by registry name (any name in a
/// [`PolicyRegistry`](crate::registry::PolicyRegistry) works,
/// including user-registered ones):
///
/// ```
/// use aging_cache::aging::AgingAnalysis;
/// use nbti_model::{CellDesign, LifetimeSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)?;
/// let aging = AgingAnalysis::new(solver);
/// // Very uneven idleness: bank 3 never sleeps.
/// let sleep = [0.9, 0.9, 0.9, 0.0];
/// let lt0 = aging.cache_lifetime_named(&sleep, 0.5, "identity", 1)?;
/// let lt = aging.cache_lifetime_named(&sleep, 0.5, "probing", 1)?;
/// // Without re-indexing the busy bank pins the lifetime near 2.93 y;
/// // rotation shares the idleness and buys a large extension.
/// assert!((lt0 - 2.93).abs() < 0.05);
/// assert!(lt > 1.4 * lt0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AgingAnalysis {
    solver: LifetimeSolver,
    mode: SleepMode,
    update_interval_years: f64,
    horizon_years: f64,
    /// Memo of `(p0, critical effective years)` pairs: the SNM bisection
    /// is the expensive step and depends only on `p0`, which whole
    /// experiment sweeps share. A mutex keeps the type `Send + Sync`.
    critical_memo: std::sync::Mutex<Vec<(f64, f64)>>,
}

impl Clone for AgingAnalysis {
    fn clone(&self) -> Self {
        Self {
            solver: self.solver.clone(),
            mode: self.mode,
            update_interval_years: self.update_interval_years,
            horizon_years: self.horizon_years,
            critical_memo: std::sync::Mutex::new(
                self.critical_memo.lock().expect("memo poisoned").clone(),
            ),
        }
    }
}

impl AgingAnalysis {
    /// Creates the analysis with the paper's defaults: voltage-scaled
    /// sleep, daily updates, 200-year horizon.
    pub fn new(solver: LifetimeSolver) -> Self {
        Self {
            solver,
            mode: SleepMode::VoltageScaled,
            update_interval_years: DEFAULT_UPDATE_INTERVAL_YEARS,
            horizon_years: DEFAULT_HORIZON_YEARS,
            critical_memo: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Switches the sleep mechanism (power-gating ablation).
    #[must_use]
    pub fn with_mode(mut self, mode: SleepMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the update interval, in days.
    ///
    /// # Panics
    ///
    /// Panics if `days` is not positive.
    #[must_use]
    pub fn with_update_interval_days(mut self, days: f64) -> Self {
        assert!(days > 0.0, "update interval must be positive");
        self.update_interval_years = days / 365.25;
        self
    }

    /// Overrides the search horizon, in years.
    ///
    /// # Panics
    ///
    /// Panics if `years` is not positive.
    #[must_use]
    pub fn with_horizon_years(mut self, years: f64) -> Self {
        assert!(years > 0.0, "horizon must be positive");
        self.horizon_years = years;
        self
    }

    /// The underlying calibrated cell-lifetime solver.
    pub fn solver(&self) -> &LifetimeSolver {
        &self.solver
    }

    /// The sleep mechanism in use.
    pub fn mode(&self) -> SleepMode {
        self.mode
    }

    /// The configured update interval, in days.
    pub fn update_interval_days(&self) -> f64 {
        self.update_interval_years * 365.25
    }

    /// Worst-device effective-stress rate (effective years per wall-clock
    /// year) for one bank with sleep fraction `s`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range probabilities.
    pub fn bank_rate(&self, s: f64, p0: f64) -> Result<f64, CoreError> {
        let profile = StressProfile::new(p0, s, self.mode)?;
        let (ra, rb) = self.solver.device_rates(&profile);
        Ok(ra.max(rb))
    }

    /// The effective-stress budget (years at worst-device rate 1) that
    /// kills a cell, given the duty split implied by `p0`.
    ///
    /// # Errors
    ///
    /// Propagates SNM solver failures.
    pub fn critical_effective_years(&self, p0: f64) -> Result<f64, CoreError> {
        if let Some(&(_, t)) = self
            .critical_memo
            .lock()
            .expect("memo poisoned")
            .iter()
            .find(|(p, _)| (p - p0).abs() < 1e-12)
        {
            return Ok(t);
        }
        let duty_max = p0.max(1.0 - p0);
        let duty_min = p0.min(1.0 - p0);
        let minor_ratio = if duty_max <= 0.0 {
            1.0
        } else {
            (duty_min / duty_max).powf(self.solver.rd().n())
        };
        let dv_star = self.solver.critical_shift(minor_ratio)?;
        let t = self.solver.rd().effective_years_for(dv_star);
        self.critical_memo
            .lock()
            .expect("memo poisoned")
            .push((p0, t));
        Ok(t)
    }

    /// Lifetime of one isolated bank (no rotation) with sleep fraction
    /// `s` — the per-cell quantity the paper's LUT tabulates.
    ///
    /// # Errors
    ///
    /// Propagates model errors.
    pub fn bank_lifetime(&self, s: f64, p0: f64) -> Result<f64, CoreError> {
        let profile = StressProfile::new(p0, s, self.mode)?;
        Ok(self.solver.lifetime_years(&profile)?)
    }

    /// Cache lifetime under a policy kind (fresh policy instance, the
    /// historic seed of 1).
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns
    /// [`CoreError::HorizonExceeded`] if no bank fails within the horizon.
    pub fn cache_lifetime(
        &self,
        sleep_fractions: &[f64],
        p0: f64,
        policy: crate::policy::PolicyKind,
    ) -> Result<f64, CoreError> {
        self.cache_lifetime_named(sleep_fractions, p0, policy.key(), 1)
    }

    /// Cache lifetime under a policy resolved by registry name, from a
    /// full `u64` seed (see [`crate::registry`] for the derivation).
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns [`CoreError::UnknownPolicy`] for
    /// an unregistered name, [`CoreError::HorizonExceeded`] if no bank
    /// fails within the horizon.
    pub fn cache_lifetime_named(
        &self,
        sleep_fractions: &[f64],
        p0: f64,
        policy: &str,
        seed: u64,
    ) -> Result<f64, CoreError> {
        let banks = sleep_fractions.len() as u32;
        let mut mapping =
            crate::registry::PolicyRegistry::global().build(policy, banks.max(2), seed)?;
        self.cache_lifetime_with(sleep_fractions, p0, mapping.as_mut())
    }

    /// Cache lifetime under an explicit (possibly pre-advanced) mapping.
    ///
    /// The mapping is advanced once per update interval; each physical
    /// bank accumulates effective stress at the rate of the logical bank
    /// currently mapped onto it. Returns the time of the first failure.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns
    /// [`CoreError::HorizonExceeded`] if no bank fails within the horizon.
    pub fn cache_lifetime_with(
        &self,
        sleep_fractions: &[f64],
        p0: f64,
        mapping: &mut dyn BankMapping,
    ) -> Result<f64, CoreError> {
        let m = sleep_fractions.len();
        if m == 0 {
            return Err(CoreError::InvalidParameter {
                name: "sleep_fractions",
                value: 0.0,
                expected: "at least one bank",
            });
        }
        let t_star = self.critical_effective_years(p0)?;
        let rates: Vec<f64> = sleep_fractions
            .iter()
            .map(|&s| self.bank_rate(s, p0))
            .collect::<Result<_, _>>()?;
        if rates.iter().all(|&r| r <= 0.0) {
            return Err(CoreError::HorizonExceeded {
                horizon_years: self.horizon_years,
            });
        }

        let dt = self.update_interval_years;
        let mut accumulated = vec![0.0f64; m];
        let mut t = 0.0f64;
        while t <= self.horizon_years {
            // Physical stress rates for this update period.
            let mut period_rate = vec![0.0f64; m];
            for (l, &rate) in rates.iter().enumerate() {
                let phys = mapping.map_bank(l as u32, m as u32) as usize;
                period_rate[phys] += rate;
            }
            // Does any bank cross the failure threshold in this period?
            let mut first_crossing: Option<f64> = None;
            for b in 0..m {
                if period_rate[b] <= 0.0 {
                    continue;
                }
                let crossing = (t_star - accumulated[b]) / period_rate[b];
                if crossing <= dt {
                    let candidate = t + crossing.max(0.0);
                    first_crossing = Some(match first_crossing {
                        Some(c) => c.min(candidate),
                        None => candidate,
                    });
                }
            }
            if let Some(c) = first_crossing {
                return Ok(c);
            }
            for b in 0..m {
                accumulated[b] += period_rate[b] * dt;
            }
            t += dt;
            mapping.update();
        }
        Err(CoreError::HorizonExceeded {
            horizon_years: self.horizon_years,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use nbti_model::CellDesign;

    fn aging() -> AgingAnalysis {
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        AgingAnalysis::new(solver)
    }

    #[test]
    fn always_on_cache_matches_cell_baseline() {
        let a = aging();
        let lt = a
            .cache_lifetime_named(&[0.0, 0.0, 0.0, 0.0], 0.5, "identity", 1)
            .unwrap();
        assert!((lt - 2.93).abs() < 0.03, "lt = {lt}");
    }

    #[test]
    fn identity_lifetime_is_pinned_by_worst_bank() {
        let a = aging();
        let lt = a
            .cache_lifetime_named(&[0.99, 0.99, 0.99, 0.0], 0.5, "identity", 1)
            .unwrap();
        let worst_alone = a.bank_lifetime(0.0, 0.5).unwrap();
        assert!((lt - worst_alone).abs() / worst_alone < 0.01);
    }

    #[test]
    fn probing_averages_the_rates() {
        let a = aging();
        let sleep = [0.8, 0.6, 0.4, 0.0];
        let lt = a.cache_lifetime_named(&sleep, 0.5, "probing", 1).unwrap();
        // Analytic expectation: rates are linear in S, rotation averages
        // them, so LT = t*/mean(rate) = bank_lifetime(mean S).
        let mean_s = sleep.iter().sum::<f64>() / 4.0;
        let expected = a.bank_lifetime(mean_s, 0.5).unwrap();
        assert!(
            (lt - expected).abs() / expected < 0.02,
            "lt {lt} vs expected {expected}"
        );
    }

    #[test]
    fn scrambling_close_to_probing() {
        // The paper: "Probing and Scrambling provide de facto identical
        // results."
        let a = aging();
        let sleep = [0.9, 0.5, 0.3, 0.1];
        let probing = a.cache_lifetime_named(&sleep, 0.5, "probing", 1).unwrap();
        let scrambling = a
            .cache_lifetime_named(&sleep, 0.5, "scrambling", 1)
            .unwrap();
        let rel = (probing - scrambling).abs() / probing;
        assert!(rel < 0.05, "probing {probing} vs scrambling {scrambling}");
    }

    #[test]
    fn reindexing_never_hurts() {
        let a = aging();
        for sleep in [
            [0.0, 0.0, 0.0, 0.0],
            [0.9, 0.9, 0.9, 0.9],
            [0.99, 0.99, 0.01, 0.0],
            [0.5, 0.4, 0.3, 0.2],
        ] {
            let lt0 = a.cache_lifetime_named(&sleep, 0.5, "identity", 1).unwrap();
            let lt = a.cache_lifetime_named(&sleep, 0.5, "probing", 1).unwrap();
            assert!(
                lt >= lt0 * 0.999,
                "probing must not shorten life: {lt} < {lt0} for {sleep:?}"
            );
        }
    }

    #[test]
    fn update_interval_is_second_order() {
        // Daily vs weekly updates barely change the outcome (the paper:
        // updates can be "once a day or even less frequent").
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        let sleep = [0.9, 0.6, 0.2, 0.0];
        let daily = AgingAnalysis::new(solver.clone())
            .cache_lifetime_named(&sleep, 0.5, "probing", 1)
            .unwrap();
        let weekly = AgingAnalysis::new(solver)
            .with_update_interval_days(7.0)
            .cache_lifetime_named(&sleep, 0.5, "probing", 1)
            .unwrap();
        assert!((daily - weekly).abs() / daily < 0.01);
    }

    #[test]
    fn power_gated_idle_cache_exceeds_horizon() {
        let a = aging()
            .with_mode(SleepMode::power_gated())
            .with_horizon_years(50.0);
        let r = a.cache_lifetime(&[1.0, 1.0, 1.0, 1.0], 0.5, PolicyKind::Identity);
        assert!(matches!(r, Err(CoreError::HorizonExceeded { .. })));
    }

    #[test]
    fn empty_bank_list_is_rejected() {
        let a = aging();
        assert!(a.cache_lifetime(&[], 0.5, PolicyKind::Identity).is_err());
    }

    #[test]
    fn paper_sha_anchor_reproduced() {
        // Table II, 8 kB, sha: idleness (4.9, 98.6, 94.1, 3.1) %,
        // LT0 = 3.00 y, LT = 4.74 y. Our sleep fractions are slightly
        // below useful idleness; the anchor should land within ~10 %.
        let a = aging();
        let sleep = [0.049, 0.986, 0.941, 0.031];
        let lt0 = a.cache_lifetime_named(&sleep, 0.5, "identity", 1).unwrap();
        let lt = a.cache_lifetime_named(&sleep, 0.5, "probing", 1).unwrap();
        assert!((lt0 - 3.00).abs() < 0.15, "LT0 {lt0} vs paper 3.00");
        assert!((lt - 4.74).abs() < 0.5, "LT {lt} vs paper 4.74");
    }
}
