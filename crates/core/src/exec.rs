//! The open execution layer: [`Executor`] backends behind the grid
//! runner, selected through [`ExecOptions`], with streaming progress
//! via [`ExecObserver`].
//!
//! Before this layer existed, [`ScenarioGrid::run`] was a closed
//! one-shot loop: it spawned its own scoped threads, funnelled every
//! result through one mutex, and its simulation memo died with the
//! call. The execution layer splits that loop into replaceable parts:
//!
//! * an [`Executor`] decides *where* scenario tasks run — in the
//!   calling thread ([`SequentialExecutor`]) or across a
//!   self-scheduling worker pool ([`ThreadedExecutor`]) whose idle
//!   workers steal the next unclaimed scenario from a shared atomic
//!   counter;
//! * [`ExecOptions`] is the declarative knob a caller hands to a
//!   [`StudySession`](crate::session::StudySession): backend choice
//!   plus an optional worker cap;
//! * an [`ExecObserver`] streams progress — `on_start` once per grid,
//!   `on_record` as each scenario completes (from whichever worker
//!   finished it, so arrival order is *not* scenario order), and
//!   `on_finish` with the assembled report and the session's counters.
//!
//! Determinism is unaffected by the backend: records land in
//! scenario-id slots, so sequential, threaded and cache-warm runs emit
//! byte-identical reports (pinned by `tests/exec_cache.rs`).
//!
//! [`ScenarioGrid::run`]: crate::study::ScenarioGrid::run

use crate::session::SessionStats;
use crate::study::{ScenarioRecord, StudyReport};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where a task pool runs scenario tasks.
///
/// Every index in `0..count` is executed exactly once; `task` must be
/// safe to call from any thread (it stores its own result — the
/// executor never sees scenario outcomes).
pub trait Executor: Send + Sync {
    /// A short human-readable backend name (for logs and errors).
    fn name(&self) -> &'static str;

    /// Runs `count` independent tasks to completion.
    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync));
}

/// Runs every task in the calling thread, in index order.
///
/// The reference backend: the threaded executor is required (and
/// tested) to produce byte-identical reports to this one.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            task(i);
        }
    }
}

/// A scoped pool of workers that self-schedule over a shared atomic
/// index — work stealing in its simplest form: an idle worker claims
/// the next unstarted scenario, so long scenarios never leave the
/// other workers idle behind a static partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedExecutor {
    threads: Option<usize>,
}

impl ThreadedExecutor {
    /// A pool sized to available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool capped at `threads` workers (`1` degenerates to the
    /// sequential loop, in-thread).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
        }
    }

    fn workers(&self, count: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.threads.unwrap_or(hw).clamp(1, count.max(1))
    }
}

impl Executor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        let workers = self.workers(count);
        if workers <= 1 {
            return SequentialExecutor.execute(count, task);
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    task(i);
                });
            }
        });
    }
}

/// Which executor a session builds, plus its worker cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// [`ThreadedExecutor`] — the default.
    #[default]
    Threaded,
    /// [`SequentialExecutor`].
    Sequential,
}

/// Declarative executor selection for a
/// [`StudySession`](crate::session::StudySession).
///
/// The default is the threaded backend at available parallelism —
/// exactly what [`ScenarioGrid::run`](crate::study::ScenarioGrid::run)
/// always did. A [`StudySpec::threads`](crate::study::StudySpec::threads)
/// cap on the spec overrides the option's cap for that grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// The backend to build.
    pub backend: ExecBackend,
    /// Worker cap for the threaded backend (`None` = available
    /// parallelism; ignored by the sequential backend).
    pub threads: Option<usize>,
}

impl ExecOptions {
    /// The threaded backend at available parallelism (the default).
    pub fn threaded() -> Self {
        Self::default()
    }

    /// The sequential backend.
    pub fn sequential() -> Self {
        Self {
            backend: ExecBackend::Sequential,
            threads: None,
        }
    }

    /// Caps the threaded backend's worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the configured executor.
    pub fn build(&self) -> Box<dyn Executor> {
        match self.backend {
            ExecBackend::Sequential => Box::new(SequentialExecutor),
            ExecBackend::Threaded => Box::new(ThreadedExecutor {
                threads: self.threads,
            }),
        }
    }
}

/// How a record was obtained, as reported to [`ExecObserver::on_record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOrigin {
    /// Simulated and/or model-evaluated in this run (a session-memo
    /// hit on the simulation still counts as computed — the model
    /// evaluation ran).
    Computed,
    /// Replayed from the session's
    /// [`ResultCache`](crate::rescache::ResultCache): neither the
    /// simulator nor the device model ran.
    Cached,
}

/// Streaming progress callbacks for a grid run.
///
/// Callbacks fire from worker threads as scenarios complete, so
/// `on_record` arrival order is not scenario order (the report itself
/// stays in scenario-id order regardless). Implementations must be
/// cheap and must not panic; `done`/`total` make a progress meter
/// one-line to implement.
pub trait ExecObserver: Send + Sync {
    /// A grid run is starting: `total` scenarios under `name`.
    fn on_start(&self, name: &str, total: usize) {
        let _ = (name, total);
    }

    /// One scenario finished (`done` of `total` complete, counting
    /// this one).
    fn on_record(&self, record: &ScenarioRecord, origin: RecordOrigin, done: usize, total: usize) {
        let _ = (record, origin, done, total);
    }

    /// The run completed; `stats` is the owning session's counter
    /// snapshot (cumulative across the session, not per-run).
    fn on_finish(&self, report: &StudyReport, stats: &SessionStats) {
        let _ = (report, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn sequential_runs_in_order() {
        let seen = Mutex::new(Vec::new());
        SequentialExecutor.execute(5, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn threaded_runs_every_index_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        ThreadedExecutor::with_threads(4).execute(64, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn one_worker_degenerates_to_sequential() {
        let seen = Mutex::new(Vec::new());
        ThreadedExecutor::with_threads(1).execute(4, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn options_build_the_named_backend() {
        assert_eq!(ExecOptions::sequential().build().name(), "sequential");
        assert_eq!(ExecOptions::threaded().build().name(), "threaded");
        assert_eq!(
            ExecOptions::threaded().with_threads(2),
            ExecOptions {
                backend: ExecBackend::Threaded,
                threads: Some(2)
            }
        );
    }

    #[test]
    fn empty_grids_are_a_no_op() {
        ThreadedExecutor::new().execute(0, &|_| panic!("no tasks to run"));
        SequentialExecutor.execute(0, &|_| panic!("no tasks to run"));
    }
}
