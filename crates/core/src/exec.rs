//! The open execution layer: [`Executor`] backends behind the grid
//! runner, selected through [`ExecOptions`], with streaming progress
//! via [`ExecObserver`].
//!
//! Before this layer existed, [`ScenarioGrid::run`] was a closed
//! one-shot loop: it spawned its own scoped threads, funnelled every
//! result through one mutex, and its simulation memo died with the
//! call. The execution layer splits that loop into replaceable parts:
//!
//! * an [`Executor`] decides *where* scenario tasks run — in the
//!   calling thread ([`SequentialExecutor`]), across a
//!   self-scheduling worker pool ([`ThreadedExecutor`]) whose idle
//!   workers steal the next unclaimed scenario from a shared atomic
//!   counter, or across worker *processes* coordinated through a
//!   shared cache directory ([`ProcessExecutor`] +
//!   [`crate::distrib`]);
//! * [`ExecOptions`] is the declarative knob a caller hands to a
//!   [`StudySession`](crate::session::StudySession): backend choice
//!   plus an optional worker cap;
//! * an [`ExecObserver`] streams progress — `on_start` once per grid,
//!   `on_record` as each scenario completes (from whichever worker
//!   finished it, so arrival order is *not* scenario order), and
//!   `on_finish` with the assembled report and the session's counters.
//!
//! Determinism is unaffected by the backend: records land in
//! scenario-id slots, so sequential, threaded, multi-process and
//! cache-warm runs emit byte-identical reports (pinned by
//! `tests/exec_cache.rs` — including runs where a worker process is
//! killed mid-sweep, see `tests/worker_crash.rs`).
//!
//! [`ScenarioGrid::run`]: crate::study::ScenarioGrid::run

use crate::session::SessionStats;
use crate::study::{ScenarioRecord, StudyReport};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a task pool runs scenario tasks.
///
/// Every index in `0..count` is executed exactly once; `task` must be
/// safe to call from any thread (it stores its own result — the
/// executor never sees scenario outcomes).
pub trait Executor: Send + Sync {
    /// A short human-readable backend name (for logs and errors).
    fn name(&self) -> &'static str;

    /// Runs `count` independent tasks to completion.
    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync));
}

/// Runs every task in the calling thread, in index order.
///
/// The reference backend: the threaded executor is required (and
/// tested) to produce byte-identical reports to this one.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            task(i);
        }
    }
}

/// A scoped pool of workers that self-schedule over a shared atomic
/// index — work stealing in its simplest form: an idle worker claims
/// the next unstarted scenario, so long scenarios never leave the
/// other workers idle behind a static partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedExecutor {
    threads: Option<usize>,
}

impl ThreadedExecutor {
    /// A pool sized to available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool capped at `threads` workers (`1` degenerates to the
    /// sequential loop, in-thread).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
        }
    }

    fn workers(&self, count: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.threads.unwrap_or(hw).clamp(1, count.max(1))
    }
}

impl Executor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        let workers = self.workers(count);
        if workers <= 1 {
            return SequentialExecutor.execute(count, task);
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    task(i);
                });
            }
        });
    }
}

/// The finish-line half of the multi-process backend.
///
/// The *distribution* phase of a process-sharded run — writing the
/// grid manifest, spawning `--worker` processes, leasing shards,
/// waiting for the journals to merge — happens inside the session
/// before any executor runs (see [`crate::distrib`]): an `Executor`
/// only ever sees opaque index tasks, which is too late to shard a
/// grid across processes. What remains for this executor is the
/// coordinator's replay pass over the merged journal: every task is
/// expected to be a cache hit (zero recomputation), and any scenario a
/// crashed worker left behind is computed here, in-process. Replay is
/// cheap and leftovers are rare, so it delegates to the threaded pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcessExecutor {
    threads: Option<usize>,
}

impl ProcessExecutor {
    /// A replay pass at available parallelism.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Executor for ProcessExecutor {
    fn name(&self) -> &'static str {
        "process"
    }

    fn execute(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        ThreadedExecutor {
            threads: self.threads,
        }
        .execute(count, task);
    }
}

/// How a coordinator re-spawns itself (or a dedicated worker binary)
/// as a `--worker` process.
///
/// `program` is invoked with `args` first, then the protocol flags the
/// coordinator appends (`--worker <cache-dir> --coord <dir> --id <id>
/// --lease <a>..<b> --ttl-ms <n> --poll-ms <n>`), then any per-worker
/// extras from [`ProcessOptions::worker_extra_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCommand {
    /// The executable to spawn.
    pub program: PathBuf,
    /// Arguments placed before the protocol flags (e.g. a subcommand).
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command line.
    pub fn new(program: impl Into<PathBuf>, args: impl IntoIterator<Item = String>) -> Self {
        Self {
            program: program.into(),
            args: args.into_iter().collect(),
        }
    }
}

/// Configuration of a process-sharded run: the shared cache directory
/// the workers coordinate through, how many to spawn, and the lease
/// protocol's timing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessOptions {
    /// The shared cache directory — the [`JsonlCache`] journal all
    /// workers append to, and the home of the run's coordination
    /// state (`coord-<digest>/`).
    ///
    /// [`JsonlCache`]: crate::rescache::JsonlCache
    pub dir: PathBuf,
    /// Worker processes to spawn.
    pub workers: usize,
    /// How to spawn one.
    pub command: WorkerCommand,
    /// Lease staleness threshold: a lease whose heartbeat (file
    /// mtime) is older than this is considered abandoned and may be
    /// stolen. Default 10 000 ms.
    pub lease_ttl_ms: u64,
    /// How long an idle worker sleeps before re-scanning for claimable
    /// shards. Default 250 ms.
    pub poll_ms: u64,
    /// Shard granularity: the grid is split into
    /// `workers × shards_per_worker` shards (clamped to the scenario
    /// count), finer than one-per-worker so a stolen crashed share
    /// redistributes in pieces. Default 4.
    pub shards_per_worker: usize,
    /// Extra argv appended to worker `i`'s command line — the fault
    /// injection hook the crash tests use (e.g. `--die-after 2`).
    pub worker_extra_args: Vec<Vec<String>>,
    /// Grids smaller than this run on the threaded backend instead of
    /// sharding across processes (with an
    /// [`ExecObserver::on_notice`]): process spawn + lease-poll
    /// overhead dominates small sweeps — the 54-scenario reference
    /// grid is ~2× *slower* sharded than sequential. `0` disables the
    /// fallback (the crash drills pin it off to test real process
    /// execution on small grids). Default 128.
    pub fallback_threshold: usize,
}

impl ProcessOptions {
    /// Options with default protocol timing.
    pub fn new(dir: impl Into<PathBuf>, workers: usize, command: WorkerCommand) -> Self {
        Self {
            dir: dir.into(),
            workers,
            command,
            lease_ttl_ms: 10_000,
            poll_ms: 250,
            shards_per_worker: 4,
            worker_extra_args: Vec::new(),
            fallback_threshold: 128,
        }
    }
}

/// Which executor a session builds, plus its worker cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// [`ThreadedExecutor`] — the default.
    #[default]
    Threaded,
    /// [`SequentialExecutor`].
    Sequential,
    /// [`ProcessExecutor`]: the grid is sharded across worker
    /// *processes* coordinated through a shared cache directory, then
    /// replayed in-process from the merged journal. Requires
    /// [`ExecOptions::process`] configuration and a session with an
    /// on-disk result cache over the same directory.
    Process,
}

/// Declarative executor selection for a
/// [`StudySession`](crate::session::StudySession).
///
/// The default is the threaded backend at available parallelism —
/// exactly what [`ScenarioGrid::run`](crate::study::ScenarioGrid::run)
/// always did. A [`StudySpec::threads`](crate::study::StudySpec::threads)
/// cap on the spec overrides the option's cap for that grid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// The backend to build.
    pub backend: ExecBackend,
    /// Worker cap for the threaded backend (`None` = available
    /// parallelism; ignored by the sequential backend).
    pub threads: Option<usize>,
    /// Process-sharding configuration; required by (and only read by)
    /// [`ExecBackend::Process`]. Behind an `Arc` so cloning the
    /// options stays cheap.
    pub process: Option<Arc<ProcessOptions>>,
}

impl ExecOptions {
    /// The threaded backend at available parallelism (the default).
    pub fn threaded() -> Self {
        Self::default()
    }

    /// The sequential backend.
    pub fn sequential() -> Self {
        Self {
            backend: ExecBackend::Sequential,
            ..Self::default()
        }
    }

    /// The multi-process backend: shard the grid across
    /// `options.workers` worker processes coordinated through
    /// `options.dir`, then replay the merged journal.
    pub fn process(options: ProcessOptions) -> Self {
        Self {
            backend: ExecBackend::Process,
            threads: None,
            process: Some(Arc::new(options)),
        }
    }

    /// Caps the threaded backend's worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the configured executor.
    pub fn build(&self) -> Box<dyn Executor> {
        match self.backend {
            ExecBackend::Sequential => Box::new(SequentialExecutor),
            ExecBackend::Threaded => Box::new(ThreadedExecutor {
                threads: self.threads,
            }),
            ExecBackend::Process => Box::new(ProcessExecutor {
                threads: self.threads,
            }),
        }
    }
}

/// How a record was obtained, as reported to [`ExecObserver::on_record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOrigin {
    /// Simulated and/or model-evaluated in this run (a session-memo
    /// hit on the simulation still counts as computed — the model
    /// evaluation ran).
    Computed,
    /// Replayed from the session's
    /// [`ResultCache`](crate::rescache::ResultCache): neither the
    /// simulator nor the device model ran.
    Cached,
}

/// Streaming progress callbacks for a grid run.
///
/// Callbacks fire from worker threads as scenarios complete, so
/// `on_record` arrival order is not scenario order (the report itself
/// stays in scenario-id order regardless). Implementations must be
/// cheap and must not panic; `done`/`total` make a progress meter
/// one-line to implement.
pub trait ExecObserver: Send + Sync {
    /// A grid run is starting: `total` scenarios under `name`.
    fn on_start(&self, name: &str, total: usize) {
        let _ = (name, total);
    }

    /// One scenario finished (`done` of `total` complete, counting
    /// this one).
    fn on_record(&self, record: &ScenarioRecord, origin: RecordOrigin, done: usize, total: usize) {
        let _ = (record, origin, done, total);
    }

    /// The run completed; `stats` is the owning session's counter
    /// snapshot (cumulative across the session, not per-run).
    fn on_finish(&self, report: &StudyReport, stats: &SessionStats) {
        let _ = (report, stats);
    }

    /// A worker *process* of a distributed run exited and reported its
    /// counters: scenarios it computed and scenarios it replayed from
    /// the shared journal. Fires once per surviving worker, after the
    /// workers finish and before the coordinator's replay pass (a
    /// worker that crashed reports nothing — its finished work is
    /// still in the journal).
    fn on_worker(&self, worker: &str, computed: usize, cached: usize) {
        let _ = (worker, computed, cached);
    }

    /// The session changed how it will execute and the user should
    /// know why — e.g. a small grid fell back from the process backend
    /// to the threaded one ([`ProcessOptions::fallback_threshold`]).
    /// Never fires on the result path: a notice changes *where* work
    /// runs, not what it produces.
    fn on_notice(&self, message: &str) {
        let _ = message;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn sequential_runs_in_order() {
        let seen = Mutex::new(Vec::new());
        SequentialExecutor.execute(5, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn threaded_runs_every_index_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        ThreadedExecutor::with_threads(4).execute(64, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn one_worker_degenerates_to_sequential() {
        let seen = Mutex::new(Vec::new());
        ThreadedExecutor::with_threads(1).execute(4, &|i| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn options_build_the_named_backend() {
        assert_eq!(ExecOptions::sequential().build().name(), "sequential");
        assert_eq!(ExecOptions::threaded().build().name(), "threaded");
        let process = ExecOptions::process(ProcessOptions::new(
            "/tmp/grid",
            2,
            WorkerCommand::new("study", ["--quiet".to_string()]),
        ));
        assert_eq!(process.build().name(), "process");
        assert_eq!(process.process.as_ref().unwrap().workers, 2);
        assert_eq!(
            ExecOptions::threaded().with_threads(2),
            ExecOptions {
                backend: ExecBackend::Threaded,
                threads: Some(2),
                process: None,
            }
        );
    }

    #[test]
    fn empty_grids_are_a_no_op() {
        ThreadedExecutor::new().execute(0, &|_| panic!("no tasks to run"));
        SequentialExecutor.execute(0, &|_| panic!("no tasks to run"));
    }
}
