//! Error type for the architectural (core) crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the partitioned-cache architecture and its
/// experiment pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A structural parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// An underlying cache-simulator error.
    Sim(cache_sim::SimError),
    /// An underlying NBTI-model error.
    Nbti(nbti_model::NbtiError),
    /// An underlying power-model error.
    Power(sram_power::PowerError),
    /// The aging pipeline exceeded its search horizon without a failure.
    HorizonExceeded {
        /// The horizon that was searched, in years.
        horizon_years: f64,
    },
    /// A policy name was not found in the registry.
    UnknownPolicy {
        /// The unresolved name.
        name: String,
        /// Comma-separated list of registered names.
        known: String,
    },
    /// A policy name was registered twice.
    DuplicatePolicy {
        /// The colliding name.
        name: String,
    },
    /// A workload key resolved to nothing in the registry.
    UnknownWorkload {
        /// The unresolved key.
        name: String,
        /// Comma-separated list of registered names.
        known: String,
    },
    /// A workload name was registered twice.
    DuplicateWorkload {
        /// The colliding name.
        name: String,
    },
    /// A model key resolved to nothing in the registry.
    UnknownModel {
        /// The unresolved key.
        name: String,
        /// Comma-separated list of registered names.
        known: String,
    },
    /// A model name was registered twice.
    DuplicateModel {
        /// The colliding name.
        name: String,
    },
    /// A parameterized model key failed to parse.
    InvalidModelKey {
        /// The offending key.
        key: String,
        /// What went wrong.
        message: String,
    },
    /// A trace source failed to open or decode.
    Trace(trace_synth::TraceError),
    /// A study report failed to serialize or deserialize.
    Report {
        /// What went wrong.
        message: String,
    },
    /// A worker thread of the parallel grid runner panicked.
    WorkerPanicked,
    /// A scenario task panicked; the payload is captured so the
    /// offending grid point and message survive the unwind.
    ScenarioPanicked {
        /// Grid id of the scenario whose task panicked.
        scenario: usize,
        /// The downcast panic message.
        message: String,
    },
    /// A result-cache operation failed, or a journaled entry was
    /// corrupted (the message names the entry's fingerprint).
    Cache {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid (expected {expected})"
            ),
            CoreError::Sim(e) => write!(f, "cache simulator error: {e}"),
            CoreError::Nbti(e) => write!(f, "NBTI model error: {e}"),
            CoreError::Power(e) => write!(f, "power model error: {e}"),
            CoreError::HorizonExceeded { horizon_years } => {
                write!(f, "no bank failed within the {horizon_years}-year horizon")
            }
            CoreError::UnknownPolicy { name, known } => {
                write!(f, "unknown policy `{name}` (registered: {known})")
            }
            CoreError::DuplicatePolicy { name } => {
                write!(f, "policy `{name}` is already registered")
            }
            CoreError::UnknownWorkload { name, known } => {
                write!(
                    f,
                    "unknown workload `{name}` (registered: {known}; file-backed \
                     workloads use `csv:`, `din:`, `lackey:` or `file:` keys, \
                     pinned profiles use `profile:s0,s1,…`)"
                )
            }
            CoreError::DuplicateWorkload { name } => {
                write!(f, "workload `{name}` is already registered")
            }
            CoreError::UnknownModel { name, known } => {
                write!(
                    f,
                    "unknown model `{name}` (registered: {known}; parameterized \
                     keys use `nbti:temp=…,vlow=…,sleep=…,fail=…`, \
                     `variation:<sigma-mv>` or `drv:vlow=…`)"
                )
            }
            CoreError::DuplicateModel { name } => {
                write!(f, "model `{name}` is already registered")
            }
            CoreError::InvalidModelKey { key, message } => {
                write!(f, "invalid model key `{key}`: {message}")
            }
            CoreError::Trace(e) => write!(f, "trace error: {e}"),
            CoreError::Report { message } => write!(f, "study report error: {message}"),
            CoreError::WorkerPanicked => write!(f, "a study worker thread panicked"),
            CoreError::ScenarioPanicked { scenario, message } => {
                write!(f, "scenario {scenario} panicked: {message}")
            }
            CoreError::Cache { message } => write!(f, "result cache error: {message}"),
        }
    }
}

impl From<crate::json::JsonError> for CoreError {
    fn from(e: crate::json::JsonError) -> Self {
        CoreError::Report {
            message: e.to_string(),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Nbti(e) => Some(e),
            CoreError::Power(e) => Some(e),
            CoreError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cache_sim::SimError> for CoreError {
    fn from(e: cache_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<nbti_model::NbtiError> for CoreError {
    fn from(e: nbti_model::NbtiError) -> Self {
        CoreError::Nbti(e)
    }
}

impl From<sram_power::PowerError> for CoreError {
    fn from(e: sram_power::PowerError) -> Self {
        CoreError::Power(e)
    }
}

impl From<trace_synth::TraceError> for CoreError {
    fn from(e: trace_synth::TraceError) -> Self {
        CoreError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = CoreError::from(nbti_model::NbtiError::SolverDiverged { context: "x" });
        assert!(e.source().is_some());
        let e = CoreError::HorizonExceeded {
            horizon_years: 50.0,
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
