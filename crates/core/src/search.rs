//! The search layer: declarative scenario spaces and adaptive
//! `study optimize` drivers over the Study API.
//!
//! Grids enumerate; the questions the paper's results feed are
//! optimization problems — *"the cheapest update period meeting a
//! 7-year lifetime at 85 °C"*. This module turns a study from a sweep
//! into a search without changing anything below it:
//!
//! * [`ScenarioSpace`] — a small algebra over scenario sets. A space
//!   is a [`StudySpec`] Cartesian closure ([`ScenarioSpace::grid`]),
//!   a filtered space ([`ScenarioSpace::filter`], a predicate over
//!   the expanded [`Scenario`] axis values), or a union of spaces
//!   ([`ScenarioSpace::union`], deduplicated by the full scenario
//!   identity including seeds). [`steps`] and [`log_steps`] build
//!   linearly and logarithmically spaced numeric axes to feed the
//!   spec builders. Expansion is lazy — nothing is enumerated until a
//!   driver (or `study check`) asks — and lands in an ordinary
//!   [`ScenarioGrid`] of fully fingerprinted scenarios, so coverage,
//!   static checks and the result cache work unchanged.
//! * [`Objective`] / [`Constraint`] — minimize or maximize any
//!   [`crate::analysis::Query`]-visible metric subject to
//!   `metric ≥ bound` / `metric ≤ bound` constraints. The decision statistic is the
//!   seed-ensemble mean ± its 95% confidence half-width
//!   ([`Reduce::CiHalfWidth95`]): a candidate only *decisively* beats
//!   the incumbent when the confidence brackets separate, so noise
//!   cannot flip the answer; statistical ties keep the earlier
//!   (lower-index) candidate, which keeps every driver deterministic.
//! * [`Driver`] — the probe-scheduling strategies, registered in the
//!   machine-readable [`DRIVERS`] table: `exhaustive` probes the
//!   whole space (the reference answer for small spaces), `bisect`
//!   binary-searches one monotone axis (the model properties pinned
//!   by `tests/model_props.rs` — hotter ages faster, more sleep lives
//!   longer, laxer failure criteria live longer — are exactly the
//!   monotonicity this driver exploits; it asserts the assumption
//!   from its own probes and falls back to exhaustive when violated),
//!   and `refine` runs coarse-to-fine around the incumbent for spaces
//!   with no proven structure.
//! * [`Search`] — the front door: space + objective + constraints +
//!   driver + probe budget, run through an ordinary
//!   [`StudySession`]. Every probe
//!   batch goes through [`StudySession::run_grid`] — threaded or
//!   process-sharded, journaled in the content-addressed result
//!   cache — so a warm re-run of the same search replays the
//!   identical [`SearchReport`] with **zero** simulations, and probes
//!   land in the same journal plain sweeps use: search and grids
//!   compound.
//!
//! The output is a [`SearchReport`]: the full trace of probe batches,
//! the incumbent, and the probes as an embedded [`StudyReport`] so
//! the result renders through [`render`](crate::render) and diffs
//! through [`ReportDiff`](crate::analysis::ReportDiff) like any other
//! study.
//!
//! # Determinism
//!
//! Spaces expand in canonical grid order; every driver schedules
//! probes purely from probe outcomes already in its trace; ties are
//! broken toward the lower canonical index; this module never reads
//! the wall clock. Same space + same budget ⇒ byte-identical
//! `SearchReport`, cold or warm (pinned by `tests/search_props.rs`).
//!
//! ```no_run
//! use aging_cache::search::{Constraint, Driver, Objective, ScenarioSpace, Search};
//! use aging_cache::session::StudySession;
//! use aging_cache::study::StudySpec;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let space = ScenarioSpace::grid(
//!     StudySpec::new("update-period search")
//!         .update_days(aging_cache::search::steps(1.0, 16.0, 1.0)?)
//!         .workload_names(["sha"])?,
//! );
//! let session = StudySession::new();
//! let report = Search::new(space, Objective::maximize("lt_years"))
//!     .constraint(Constraint::at_least("esav", 0.3)?)
//!     .driver(Driver::Bisect)
//!     .run(&session)?;
//! println!("{}", report.table());
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::analysis::{metric_value, scenario_key, Axis, AxisValue, Reduce};
use crate::error::CoreError;
use crate::json::Json;
use crate::registry::PolicyRegistry;
use crate::report::Table;
use crate::session::StudySession;
use crate::study::{Scenario, ScenarioGrid, ScenarioRecord, StudyReport, StudySpec};
use crate::workload::Workload;

/// Spacing between the derived trace seeds of seed-ensemble members.
///
/// Member `k` of a candidate runs at `trace_seed + k · STRIDE`
/// (wrapping). The stride is a prime far larger than any plausible
/// workload-axis length, so ensemble members can never collide with
/// the `base_seed + workload_index` trace seeds of the candidates
/// themselves.
pub const ENSEMBLE_STRIDE: u64 = 1_000_003;

/// Every metric name the search layer can validate statically: the
/// measured simulation outputs resolved by
/// [`analysis::metric_value`](crate::analysis::metric_value) plus the
/// named metrics of the built-in model families (`nbti`, `variation`,
/// `drv`). `study check` rejects objectives and constraints naming
/// anything else — a custom [`AgingModel`](crate::model::AgingModel)
/// emitting custom metrics must be searched with a metric the check
/// cannot vet, in which case skip the static check and let the first
/// probe surface the missing metric as a typed error.
pub const KNOWN_METRICS: [&str; 14] = [
    "esav",
    "miss_rate",
    "sim_cycles",
    "useful_idleness",
    "sleep_fractions",
    "sleep_fraction_l2",
    "lt_years",
    "lt_years_l2",
    "lt0_years",
    "lt0_q10_years",
    "drv_fresh_v",
    "drv_aged_v",
    "drv_margin_fresh_v",
    "drv_margin_aged_v",
];

/// Relative tolerance for the bisection driver's monotonicity audit:
/// two probe values within `MONO_EPS · max(1, |a|, |b|)` count as
/// equal, so floating-point plateaus are not misread as violations.
const MONO_EPS: f64 = 1e-9;

fn report_err<T>(message: impl Into<String>) -> Result<T, CoreError> {
    Err(CoreError::Report {
        message: message.into(),
    })
}

/// Linearly spaced axis values: `lo, lo+step, …` up to and including
/// `hi` (within a half-step tolerance, so `steps(1.0, 16.0, 1.0)`
/// ends at 16 despite rounding).
///
/// # Errors
///
/// Returns [`CoreError::Report`] for a non-positive or non-finite
/// step, a reversed range, or a range that would expand to more than
/// 100 000 points.
pub fn steps(lo: f64, hi: f64, step: f64) -> Result<Vec<f64>, CoreError> {
    if !(lo.is_finite() && hi.is_finite() && step.is_finite()) || step <= 0.0 {
        return report_err(format!(
            "steps({lo}, {hi}, {step}): bounds must be finite and the step positive"
        ));
    }
    if hi < lo {
        return report_err(format!("steps({lo}, {hi}, {step}): range is reversed"));
    }
    let count = ((hi - lo) / step).floor() + 1.0;
    if count > 100_000.0 {
        return report_err(format!(
            "steps({lo}, {hi}, {step}): {count:.0} points is past the 100000-point guard"
        ));
    }
    let mut values = Vec::new();
    let mut k = 0u32;
    loop {
        let v = lo + f64::from(k) * step;
        if v > hi + step * 0.5 {
            break;
        }
        values.push(v.min(hi));
        k += 1;
    }
    Ok(values)
}

/// Logarithmically spaced axis values: `points` values from `lo` to
/// `hi` inclusive, equal ratios between neighbours — the natural
/// spacing for axes spanning decades (trace horizons, update
/// periods).
///
/// # Errors
///
/// Returns [`CoreError::Report`] unless `0 < lo ≤ hi`, both finite,
/// and `2 ≤ points ≤ 100000` (`points == 1` is allowed when
/// `lo == hi`).
pub fn log_steps(lo: f64, hi: f64, points: usize) -> Result<Vec<f64>, CoreError> {
    if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
        return report_err(format!(
            "log_steps({lo}, {hi}, {points}): needs finite bounds with 0 < lo <= hi"
        ));
    }
    if points > 100_000 {
        return report_err(format!(
            "log_steps({lo}, {hi}, {points}): past the 100000-point guard"
        ));
    }
    if points == 0 || (points == 1 && hi > lo) {
        return report_err(format!(
            "log_steps({lo}, {hi}, {points}): a single point cannot span lo < hi"
        ));
    }
    if points == 1 {
        return Ok(vec![lo]);
    }
    let ratio = (hi / lo).ln() / (points - 1) as f64;
    let values = (0..points)
        .map(|k| {
            if k + 1 == points {
                hi // land exactly on the endpoint, no rounding drift
            } else {
                lo * (k as f64 * ratio).exp()
            }
        })
        .collect();
    Ok(values)
}

/// A declarative set of scenarios: a grid, a filtered space, or a
/// union of spaces. See the [module docs](self) for the algebra.
///
/// Spaces are cheap descriptions; nothing expands until
/// [`ScenarioSpace::expand`] (called lazily by [`Search::run`] and
/// `study check`) flattens the composition into an ordinary
/// [`ScenarioGrid`] in canonical order.
#[derive(Clone)]
pub struct ScenarioSpace {
    node: SpaceNode,
}

#[derive(Clone)]
enum SpaceNode {
    Grid(Box<StudySpec>),
    Filter {
        inner: Box<SpaceNode>,
        #[allow(clippy::type_complexity)]
        pred: Arc<dyn Fn(&Scenario) -> bool + Send + Sync>,
    },
    Union(Box<SpaceNode>, Box<SpaceNode>),
}

impl std::fmt::Debug for ScenarioSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn shape(node: &SpaceNode, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match node {
                SpaceNode::Grid(spec) => write!(f, "grid({})", spec.name()),
                SpaceNode::Filter { inner, .. } => {
                    write!(f, "filter(")?;
                    shape(inner, f)?;
                    write!(f, ")")
                }
                SpaceNode::Union(l, r) => {
                    write!(f, "union(")?;
                    shape(l, f)?;
                    write!(f, ", ")?;
                    shape(r, f)?;
                    write!(f, ")")
                }
            }
        }
        write!(f, "ScenarioSpace[")?;
        shape(&self.node, f)?;
        write!(f, "]")
    }
}

impl ScenarioSpace {
    /// The Cartesian closure of a [`StudySpec`] — the base case every
    /// composition bottoms out in.
    pub fn grid(spec: StudySpec) -> Self {
        Self {
            node: SpaceNode::Grid(Box::new(spec)),
        }
    }

    /// Keeps only the scenarios the predicate accepts.
    ///
    /// The predicate sees fully derived [`Scenario`]s (axis values,
    /// seeds, geometry), and surviving scenarios keep their ids and
    /// seeds from the underlying grid expansion — filtering never
    /// changes what a surviving point *measures*, so its cache
    /// fingerprint (and any journaled result) carries over.
    pub fn filter(self, pred: impl Fn(&Scenario) -> bool + Send + Sync + 'static) -> Self {
        Self {
            node: SpaceNode::Filter {
                inner: Box::new(self.node),
                pred: Arc::new(pred),
            },
        }
    }

    /// The union of two spaces, left operand first, deduplicated by
    /// the full scenario identity (axes, seeds, trace provenance —
    /// [`analysis::scenario_key`](crate::analysis::scenario_key)
    /// plus nothing, since the key already covers seeds).
    ///
    /// The right operand's workload axis is merged into the left's by
    /// workload name, and its policies must resolve in the left
    /// operand's policy registry.
    pub fn union(self, other: ScenarioSpace) -> Self {
        Self {
            node: SpaceNode::Union(Box::new(self.node), Box::new(other.node)),
        }
    }

    /// Every [`StudySpec`] at the leaves of the composition, in
    /// left-to-right order — what `study check` validates
    /// axis-by-axis before anything expands.
    pub(crate) fn specs(&self) -> Vec<&StudySpec> {
        fn walk<'a>(node: &'a SpaceNode, out: &mut Vec<&'a StudySpec>) {
            match node {
                SpaceNode::Grid(spec) => out.push(spec),
                SpaceNode::Filter { inner, .. } => walk(inner, out),
                SpaceNode::Union(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.node, &mut out);
        out
    }

    /// Expands the composition to a flat [`ScenarioGrid`] in
    /// canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for an invalid underlying spec,
    /// a union whose right operand uses a policy the left registry
    /// does not know, or a space that expands to nothing.
    pub fn expand(&self) -> Result<ScenarioGrid, CoreError> {
        let parts = expand_node(&self.node)?;
        if parts.scenarios.is_empty() {
            return report_err(format!(
                "scenario space `{}` expands to no scenarios (filters removed everything?)",
                parts.name
            ));
        }
        Ok(ScenarioGrid::from_parts(
            parts.name,
            parts.scenarios,
            parts.workloads,
            parts.registry,
            parts.replacement_registry,
        ))
    }
}

/// Expanded space parts before the empty check (an empty *branch* of
/// a union is legal; an empty *result* is not).
struct SpaceParts {
    name: String,
    scenarios: Vec<Scenario>,
    workloads: Vec<Arc<dyn Workload>>,
    registry: PolicyRegistry,
    replacement_registry: cache_sim::ReplacementRegistry,
}

fn expand_node(node: &SpaceNode) -> Result<SpaceParts, CoreError> {
    match node {
        SpaceNode::Grid(spec) => {
            let grid = spec.expand()?;
            Ok(SpaceParts {
                name: grid.name().to_string(),
                scenarios: grid.scenarios().to_vec(),
                workloads: grid.workloads().to_vec(),
                registry: grid.policy_registry().clone(),
                replacement_registry: grid.replacement_registry().clone(),
            })
        }
        SpaceNode::Filter { inner, pred } => {
            let mut parts = expand_node(inner)?;
            parts.scenarios.retain(|s| pred(s));
            Ok(parts)
        }
        SpaceNode::Union(l, r) => {
            let mut left = expand_node(l)?;
            let right = expand_node(r)?;
            // Merge the right workload axis by name so workload_index
            // stays valid on remapped scenarios.
            let mut remap = Vec::with_capacity(right.workloads.len());
            for w in &right.workloads {
                let at = left.workloads.iter().position(|lw| lw.name() == w.name());
                remap.push(match at {
                    Some(i) => i,
                    None => {
                        left.workloads.push(Arc::clone(w));
                        left.workloads.len() - 1
                    }
                });
            }
            let mut seen: Vec<String> = left.scenarios.iter().map(scenario_key).collect();
            for s in &right.scenarios {
                if left.registry.get(&s.policy).is_none() {
                    return report_err(format!(
                        "union: right operand policy `{}` is unknown to the left \
                         operand's policy registry",
                        s.policy
                    ));
                }
                if left.replacement_registry.get(&s.replacement).is_none() {
                    return report_err(format!(
                        "union: right operand replacement policy `{}` is unknown to \
                         the left operand's replacement registry",
                        s.replacement
                    ));
                }
                let mut s = s.clone();
                s.workload_index = remap.get(s.workload_index).copied().unwrap_or_else(|| {
                    // A scenario pointing past its own workload axis
                    // cannot come out of expand(); keep it harmless.
                    left.workloads.len().saturating_sub(1)
                });
                let key = scenario_key(&s);
                if !seen.contains(&key) {
                    seen.push(key);
                    left.scenarios.push(s);
                }
            }
            left.name = format!("{}+{}", left.name, right.name);
            Ok(left)
        }
    }
}

/// Which way the objective metric should move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better.
    Minimize,
    /// Larger is better.
    Maximize,
}

/// What the search optimizes: a named metric and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Any metric [`analysis::metric_value`](crate::analysis::metric_value)
    /// resolves (`lt_years`, `esav`, `miss_rate`, …).
    pub metric: String,
    /// Minimize or maximize.
    pub direction: Direction,
}

impl Objective {
    /// Minimizes `metric`.
    pub fn minimize(metric: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            direction: Direction::Minimize,
        }
    }

    /// Maximizes `metric`.
    pub fn maximize(metric: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            direction: Direction::Maximize,
        }
    }

    /// Parses the CLI spelling: `max:lt_years`, `min:esav`
    /// (`maximize:` / `minimize:` also accepted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for a missing direction prefix
    /// or an empty metric name.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let text = text.trim();
        let (dir, metric) = match text.split_once(':') {
            Some((d, m)) => (d.trim(), m.trim()),
            None => {
                return report_err(format!(
                    "objective `{text}`: expected `max:<metric>` or `min:<metric>`"
                ))
            }
        };
        if metric.is_empty() {
            return report_err(format!("objective `{text}`: empty metric name"));
        }
        match dir.to_ascii_lowercase().as_str() {
            "max" | "maximize" => Ok(Objective::maximize(metric)),
            "min" | "minimize" => Ok(Objective::minimize(metric)),
            other => report_err(format!(
                "objective `{text}`: unknown direction `{other}` (use max: or min:)"
            )),
        }
    }

    /// True when `a` is strictly better than `b` under the direction.
    /// NaN is never better than anything.
    fn better(&self, a: f64, b: f64) -> bool {
        match self.direction {
            Direction::Minimize => a < b,
            Direction::Maximize => a > b,
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = match self.direction {
            Direction::Minimize => "min",
            Direction::Maximize => "max",
        };
        write!(f, "{dir}:{}", self.metric)
    }
}

/// The sense of a constraint bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The metric's ensemble mean must be `≥ bound`.
    AtLeast,
    /// The metric's ensemble mean must be `≤ bound`.
    AtMost,
}

/// A feasibility constraint on a candidate: the seed-ensemble mean of
/// a named metric must clear a bound. A NaN mean never satisfies a
/// constraint — "not measured" is not feasible.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The constrained metric.
    pub metric: String,
    /// `≥` or `≤`.
    pub kind: BoundKind,
    /// The bound value.
    pub bound: f64,
}

impl Constraint {
    /// `metric ≥ bound`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for a non-finite bound.
    pub fn at_least(metric: impl Into<String>, bound: f64) -> Result<Self, CoreError> {
        Self::build(metric.into(), BoundKind::AtLeast, bound)
    }

    /// `metric ≤ bound`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for a non-finite bound.
    pub fn at_most(metric: impl Into<String>, bound: f64) -> Result<Self, CoreError> {
        Self::build(metric.into(), BoundKind::AtMost, bound)
    }

    fn build(metric: String, kind: BoundKind, bound: f64) -> Result<Self, CoreError> {
        if !bound.is_finite() {
            return report_err(format!("constraint bound on `{metric}` must be finite"));
        }
        if metric.is_empty() {
            return report_err("constraint: empty metric name");
        }
        Ok(Self {
            metric,
            kind,
            bound,
        })
    }

    /// Parses the CLI spelling: `lt_years>=7`, `esav<=0.4`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] when neither `>=` nor `<=` is
    /// present or the bound is not a finite number.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let text = text.trim();
        let (metric, kind, bound) = if let Some((m, b)) = text.split_once(">=") {
            (m, BoundKind::AtLeast, b)
        } else if let Some((m, b)) = text.split_once("<=") {
            (m, BoundKind::AtMost, b)
        } else {
            return report_err(format!(
                "constraint `{text}`: expected `<metric>>=<bound>` or `<metric><=<bound>`"
            ));
        };
        let bound: f64 = match bound.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                return report_err(format!(
                    "constraint `{text}`: bound `{}` is not a number",
                    bound.trim()
                ))
            }
        };
        Self::build(metric.trim().to_string(), kind, bound)
    }

    /// Whether a measured ensemble mean satisfies the constraint.
    fn satisfied(&self, value: f64) -> bool {
        match self.kind {
            BoundKind::AtLeast => value >= self.bound,
            BoundKind::AtMost => value <= self.bound,
        }
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.kind {
            BoundKind::AtLeast => ">=",
            BoundKind::AtMost => "<=",
        };
        write!(f, "{}{op}{}", self.metric, self.bound)
    }
}

/// One row of the driver table: registry key and one-line help.
#[derive(Debug, Clone, Copy)]
pub struct DriverInfo {
    /// The key [`Driver::parse`] accepts (`--driver` on the CLI).
    pub key: &'static str,
    /// One-line description for usage text and docs.
    pub help: &'static str,
}

const fn register_fn(key: &'static str, help: &'static str) -> DriverInfo {
    DriverInfo { key, help }
}

/// The machine-readable driver table — every probe-scheduling
/// strategy the search layer knows, in the order `study optimize
/// --help` lists them.
pub const DRIVERS: [DriverInfo; 3] = [
    register_fn(
        "exhaustive",
        "probe every point of the space (the reference answer for small spaces)",
    ),
    register_fn(
        "bisect",
        "binary-search one monotone axis; asserts monotonicity from its own probes \
         and falls back to exhaustive when violated",
    ),
    register_fn(
        "refine",
        "coarse-to-fine refinement around the incumbent, for spaces with no proven \
         structure",
    ),
];

/// A probe-scheduling strategy. See [`DRIVERS`] for the contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Probe the entire space.
    Exhaustive,
    /// Binary search on a single monotone axis.
    Bisect,
    /// Coarse-to-fine refinement around the incumbent.
    Refine,
}

impl Driver {
    /// The canonical registry key (the [`DRIVERS`] entry).
    pub fn key(self) -> &'static str {
        match self {
            Driver::Exhaustive => "exhaustive",
            Driver::Bisect => "bisect",
            Driver::Refine => "refine",
        }
    }

    /// Parses a driver key (`bisection` is accepted as an alias of
    /// `bisect`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] naming the known drivers.
    pub fn parse(key: &str) -> Result<Driver, CoreError> {
        match key.trim().to_ascii_lowercase().as_str() {
            "exhaustive" => Ok(Driver::Exhaustive),
            "bisect" | "bisection" => Ok(Driver::Bisect),
            "refine" => Ok(Driver::Refine),
            other => {
                let known: Vec<&str> = DRIVERS.iter().map(|d| d.key).collect();
                report_err(format!(
                    "unknown driver `{other}` (known: {})",
                    known.join(", ")
                ))
            }
        }
    }
}

/// The axes that take more than one distinct value across a grid, in
/// canonical axis order — what the bisection driver calls "the
/// varying axis" when there is exactly one.
pub(crate) fn varying_axes(grid: &ScenarioGrid) -> Vec<Axis> {
    Axis::ALL
        .into_iter()
        .filter(|axis| {
            let mut distinct: Vec<AxisValue> = Vec::new();
            for s in grid.scenarios() {
                let v = axis.value_of(s);
                if !distinct.contains(&v) {
                    distinct.push(v);
                    if distinct.len() > 1 {
                        return true;
                    }
                }
            }
            false
        })
        .collect()
}

/// One evaluated candidate: the canonical scenario, its seed-ensemble
/// decision statistic, and its feasibility under the search's
/// constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeOutcome {
    /// Position in the expanded space's canonical order.
    pub index: usize,
    /// The canonical (ensemble member 0) scenario.
    pub scenario: Scenario,
    /// Seed-ensemble mean of the objective metric.
    pub value: f64,
    /// 95% confidence half-width of the mean ([`Reduce::CiHalfWidth95`];
    /// `0.0` for a singleton ensemble).
    pub ci95: f64,
    /// Whether every constraint's ensemble mean clears its bound.
    pub feasible: bool,
    /// The ensemble mean of each constraint metric, in constraint
    /// order.
    pub bounds: Vec<f64>,
}

impl ProbeOutcome {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::Num(self.index as f64)),
            ("scenario", self.scenario.to_json()),
            ("value", Json::Num(self.value)),
            ("ci95", Json::Num(self.ci95)),
            ("feasible", Json::Bool(self.feasible)),
            ("bounds", Json::nums(&self.bounds)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, CoreError> {
        let bounds = v
            .field("bounds")?
            .as_arr("bounds")?
            .iter()
            .map(|b| b.as_num("bound"))
            .collect::<Result<Vec<_>, _>>()?;
        let feasible = match v.field("feasible")? {
            Json::Bool(b) => *b,
            _ => return report_err("probe outcome: `feasible` is not a bool"),
        };
        Ok(Self {
            index: v.field("index")?.as_num("index")? as usize,
            scenario: Scenario::from_json(v.field("scenario")?)?,
            value: v.field("value")?.as_num("value")?,
            ci95: v.field("ci95")?.as_num("ci95")?,
            feasible,
            bounds,
        })
    }
}

/// One driver step: a label (`"bisect step 3"`) and the candidates it
/// evaluated, in probe order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeBatch {
    /// What the driver was doing (endpoint probe, bisection step,
    /// refinement stride, fallback…).
    pub label: String,
    /// The outcomes of this batch's candidates.
    pub probes: Vec<ProbeOutcome>,
}

impl ProbeBatch {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            (
                "probes",
                Json::Arr(self.probes.iter().map(ProbeOutcome::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, CoreError> {
        let probes = v
            .field("probes")?
            .as_arr("probes")?
            .iter()
            .map(ProbeOutcome::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            label: v.field("label")?.as_str("label")?.to_string(),
            probes,
        })
    }
}

/// The deterministic result of a search: the probe trace, the
/// incumbent, and every probed record as an embedded [`StudyReport`]
/// so the search renders and diffs like any other study.
///
/// Cache-hit and simulation counts deliberately live **outside** this
/// report (read them from
/// [`StudySession::stats`](crate::session::StudySession::stats)): a
/// cold run computes and a warm run replays, and the report must be
/// byte-identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    name: String,
    driver: Driver,
    objective: Objective,
    constraints: Vec<Constraint>,
    space_len: usize,
    budget: usize,
    ensemble: usize,
    batches: Vec<ProbeBatch>,
    incumbent: Option<ProbeOutcome>,
    notes: Vec<String>,
    probed: StudyReport,
}

impl SearchReport {
    /// The space (study) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver that scheduled the probes.
    pub fn driver(&self) -> Driver {
        self.driver
    }

    /// The objective the search optimized.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The feasibility constraints, in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Cardinality of the fully expanded space.
    pub fn space_len(&self) -> usize {
        self.space_len
    }

    /// The probe budget the drivers ran under.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Seed-ensemble size per candidate.
    pub fn ensemble(&self) -> usize {
        self.ensemble
    }

    /// The probe trace, in schedule order.
    pub fn batches(&self) -> &[ProbeBatch] {
        &self.batches
    }

    /// Distinct candidates evaluated (each cost `ensemble`
    /// scenario evaluations).
    pub fn probes_issued(&self) -> usize {
        self.batches.iter().map(|b| b.probes.len()).sum()
    }

    /// The winning candidate, if any feasible point was probed.
    pub fn incumbent(&self) -> Option<&ProbeOutcome> {
        self.incumbent.as_ref()
    }

    /// Driver notes: budget truncations, monotonicity violations,
    /// fallbacks.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Every probed record (all ensemble members) as a study report —
    /// the input for [`ReportDiff`](crate::analysis::ReportDiff) and
    /// for re-analysis with [`Query`](crate::analysis::Query).
    pub fn probed(&self) -> &StudyReport {
        &self.probed
    }

    /// Serializes to deterministic compact JSON (round-trips through
    /// [`SearchReport::from_json`]).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("driver", Json::Str(self.driver.key().to_string())),
            ("objective", Json::Str(self.objective.to_string())),
            (
                "constraints",
                Json::Arr(
                    self.constraints
                        .iter()
                        .map(|c| Json::Str(c.to_string()))
                        .collect(),
                ),
            ),
            ("space", Json::Num(self.space_len as f64)),
            ("budget", Json::Num(self.budget as f64)),
            ("ensemble", Json::Num(self.ensemble as f64)),
            (
                "batches",
                Json::Arr(self.batches.iter().map(ProbeBatch::to_json).collect()),
            ),
            (
                "incumbent",
                match &self.incumbent {
                    Some(o) => o.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "probed",
                Json::Arr(
                    self.probed
                        .records()
                        .iter()
                        .map(ScenarioRecord::to_json)
                        .collect(),
                ),
            ),
        ])
        .emit()
    }

    /// Parses a report back from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let v = Json::parse(text)?;
        let name = v.field("name")?.as_str("name")?.to_string();
        let constraints = v
            .field("constraints")?
            .as_arr("constraints")?
            .iter()
            .map(|c| Constraint::parse(c.as_str("constraint")?))
            .collect::<Result<Vec<_>, _>>()?;
        let batches = v
            .field("batches")?
            .as_arr("batches")?
            .iter()
            .map(ProbeBatch::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let incumbent = match v.field("incumbent")? {
            Json::Null => None,
            other => Some(ProbeOutcome::from_json(other)?),
        };
        let notes = v
            .field("notes")?
            .as_arr("notes")?
            .iter()
            .map(|n| Ok(n.as_str("note")?.to_string()))
            .collect::<Result<Vec<_>, CoreError>>()?;
        let records = v
            .field("probed")?
            .as_arr("probed")?
            .iter()
            .map(ScenarioRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            probed: StudyReport::from_records(name.clone(), records),
            name,
            driver: Driver::parse(v.field("driver")?.as_str("driver")?)?,
            objective: Objective::parse(v.field("objective")?.as_str("objective")?)?,
            constraints,
            space_len: v.field("space")?.as_num("space")? as usize,
            budget: v.field("budget")?.as_num("budget")? as usize,
            ensemble: v.field("ensemble")?.as_num("ensemble")? as usize,
            batches,
            incumbent,
            notes,
        })
    }

    /// The probe trace as a renderable [`Table`] (the text / Markdown
    /// / CSV view; `--format json` emits [`SearchReport::to_json`]
    /// instead).
    pub fn table(&self) -> Table {
        // Label candidates by the axes that actually vary across the
        // probed set, so a one-axis bisection reads as a single
        // column instead of seven.
        let scenarios: Vec<&Scenario> = self
            .batches
            .iter()
            .flat_map(|b| b.probes.iter().map(|p| &p.scenario))
            .collect();
        let mut varying: Vec<Axis> = Axis::ALL
            .into_iter()
            .filter(|axis| {
                let mut first: Option<AxisValue> = None;
                scenarios.iter().any(|s| {
                    let v = axis.value_of(s);
                    match &first {
                        None => {
                            first = Some(v);
                            false
                        }
                        Some(f) => *f != v,
                    }
                })
            })
            .collect();
        if varying.is_empty() {
            varying.push(Axis::Workload);
        }
        let label = |s: &Scenario| -> String {
            varying
                .iter()
                .map(|a| format!("{}={}", a.name(), a.value_of(s)))
                .collect::<Vec<_>>()
                .join(" ")
        };

        let mut headers = vec![
            "batch".to_string(),
            "candidate".to_string(),
            self.objective.metric.clone(),
            "ci95".to_string(),
            "feasible".to_string(),
        ];
        for c in &self.constraints {
            headers.push(c.to_string());
        }
        let mut table = Table::new(format!("search: {}", self.name), headers);
        for batch in &self.batches {
            for p in &batch.probes {
                let mut row = vec![
                    batch.label.clone(),
                    label(&p.scenario),
                    format!("{:.6}", p.value),
                    format!("{:.6}", p.ci95),
                    if p.feasible { "yes" } else { "no" }.to_string(),
                ];
                for b in &p.bounds {
                    row.push(format!("{b:.6}"));
                }
                while row.len() < 5 + self.constraints.len() {
                    row.push(String::new());
                }
                table.push_row(row);
            }
        }
        table.push_note(format!(
            "objective {} over {} candidates (space {}, budget {}, ensemble {}, driver {})",
            self.objective,
            self.probes_issued(),
            self.space_len,
            self.budget,
            self.ensemble,
            self.driver.key()
        ));
        match &self.incumbent {
            Some(inc) => table.push_note(format!(
                "incumbent: {} -> {} = {:.6} (±{:.6})",
                label(&inc.scenario),
                self.objective.metric,
                inc.value,
                inc.ci95
            )),
            None => table.push_note("incumbent: none (no feasible candidate probed)".to_string()),
        }
        for note in &self.notes {
            table.push_note(note.clone());
        }
        table
    }
}

impl std::fmt::Display for SearchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// A configured search: space + objective + constraints + driver +
/// budget, run through a [`StudySession`].
#[derive(Debug, Clone)]
pub struct Search {
    space: ScenarioSpace,
    objective: Objective,
    constraints: Vec<Constraint>,
    driver: Driver,
    budget: Option<usize>,
    ensemble: usize,
}

impl Search {
    /// A search over `space` optimizing `objective`, with no
    /// constraints, the `exhaustive` driver, an unlimited budget and
    /// a singleton seed ensemble.
    pub fn new(space: ScenarioSpace, objective: Objective) -> Self {
        Self {
            space,
            objective,
            constraints: Vec::new(),
            driver: Driver::Exhaustive,
            budget: None,
            ensemble: 1,
        }
    }

    /// Adds a feasibility constraint (candidates failing any
    /// constraint can never become the incumbent).
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Selects the probe-scheduling driver.
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Caps the number of distinct candidates probed (default: the
    /// space cardinality). The cap is hard — a driver that wants more
    /// stops early and says so in the report notes.
    pub fn budget(mut self, probes: usize) -> Self {
        self.budget = Some(probes);
        self
    }

    /// Seed-ensemble size per candidate: each candidate is measured
    /// at `n` trace seeds spaced [`ENSEMBLE_STRIDE`] apart and scored
    /// by the ensemble mean ± 95% CI half-width. Clamped to at least
    /// 1; member 0 is the canonical scenario, byte-identical to what
    /// a plain sweep would measure.
    pub fn ensemble(mut self, n: usize) -> Self {
        self.ensemble = n.max(1);
        self
    }

    /// The search objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// The feasibility constraints, in declaration order.
    pub fn constraints_list(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The selected driver.
    pub fn driver_kind(&self) -> Driver {
        self.driver
    }

    /// The probe budget, if capped.
    pub fn budget_cap(&self) -> Option<usize> {
        self.budget
    }

    /// The seed-ensemble size.
    pub fn ensemble_size(&self) -> usize {
        self.ensemble
    }

    /// The scenario space (for static checks; expansion is lazy).
    pub fn space(&self) -> &ScenarioSpace {
        &self.space
    }

    /// Runs the search: expands the space, lets the driver schedule
    /// probe batches through the session's executor and result cache,
    /// and assembles the deterministic [`SearchReport`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for an empty or invalid space, a
    /// driver/space mismatch (bisection needs exactly one varying,
    /// non-categorical axis), a metric missing from a probed record,
    /// or any simulation/evaluation error from the session.
    pub fn run(&self, session: &StudySession) -> Result<SearchReport, CoreError> {
        let grid = self.space.expand()?;
        let n = grid.len();
        let budget = self.budget.unwrap_or(n);
        if budget == 0 {
            return report_err("search budget is 0: nothing can be probed");
        }
        let mut prober = Prober {
            session,
            grid: &grid,
            objective: &self.objective,
            constraints: &self.constraints,
            ensemble: self.ensemble,
            budget,
            issued: 0,
            outcomes: vec![None; n],
            records: Vec::new(),
            batches: Vec::new(),
            notes: Vec::new(),
        };
        match self.driver {
            Driver::Exhaustive => drive_exhaustive(&mut prober)?,
            Driver::Bisect => drive_bisect(&mut prober)?,
            Driver::Refine => drive_refine(&mut prober)?,
        }
        let incumbent = prober.best();
        if incumbent.is_none() {
            prober
                .notes
                .push("no feasible candidate among the probes".to_string());
        }
        Ok(SearchReport {
            name: grid.name().to_string(),
            driver: self.driver,
            objective: self.objective.clone(),
            constraints: self.constraints.clone(),
            space_len: n,
            budget,
            ensemble: self.ensemble,
            batches: prober.batches,
            incumbent,
            notes: prober.notes,
            probed: StudyReport::from_records(grid.name().to_string(), prober.records),
        })
    }
}

/// Driver-side probe bookkeeping: issues batches through the session,
/// memoizes outcomes per canonical index, enforces the budget, and
/// accumulates the trace.
struct Prober<'a> {
    session: &'a StudySession,
    grid: &'a ScenarioGrid,
    objective: &'a Objective,
    constraints: &'a [Constraint],
    ensemble: usize,
    budget: usize,
    issued: usize,
    outcomes: Vec<Option<ProbeOutcome>>,
    records: Vec<ScenarioRecord>,
    batches: Vec<ProbeBatch>,
    notes: Vec<String>,
}

impl Prober<'_> {
    fn scenario_at(&self, i: usize) -> Result<&Scenario, CoreError> {
        self.grid
            .scenarios()
            .get(i)
            .ok_or_else(|| CoreError::Report {
                message: format!("probe index {i} out of space (len {})", self.grid.len()),
            })
    }

    fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.issued)
    }

    fn value_of(&self, i: usize) -> Option<f64> {
        self.outcomes
            .get(i)
            .and_then(|o| o.as_ref())
            .map(|o| o.value)
    }

    fn feasible_at(&self, i: usize) -> Option<bool> {
        self.outcomes
            .get(i)
            .and_then(|o| o.as_ref())
            .map(|o| o.feasible)
    }

    /// Evaluates the not-yet-probed candidates among `indices` as one
    /// batch, in the given order, truncating at the budget (with a
    /// note). Already-evaluated candidates are skipped silently —
    /// re-requesting a point is free and keeps driver code simple.
    fn probe(
        &mut self,
        label: impl Into<String>,
        indices: impl IntoIterator<Item = usize>,
    ) -> Result<(), CoreError> {
        let mut fresh: Vec<usize> = Vec::new();
        for i in indices {
            let seen = self.outcomes.get(i).map(|o| o.is_some()).unwrap_or(true);
            if !seen && !fresh.contains(&i) {
                fresh.push(i);
            }
        }
        let label = label.into();
        let room = self.remaining();
        if fresh.len() > room {
            fresh.truncate(room);
            self.notes.push(format!(
                "budget {} exhausted during `{label}`: later candidates unprobed",
                self.budget
            ));
        }
        if fresh.is_empty() {
            return Ok(());
        }

        let n = self.grid.len();
        let mut members: Vec<Scenario> = Vec::with_capacity(fresh.len() * self.ensemble);
        for &i in &fresh {
            let canonical = self.scenario_at(i)?.clone();
            for k in 0..self.ensemble {
                let mut m = canonical.clone();
                m.id += k * n;
                m.trace_seed = m
                    .trace_seed
                    .wrapping_add((k as u64).wrapping_mul(ENSEMBLE_STRIDE));
                members.push(m);
            }
        }
        let batch_grid = ScenarioGrid::from_parts(
            self.grid.name().to_string(),
            members,
            self.grid.workloads().to_vec(),
            self.grid.policy_registry().clone(),
            self.grid.replacement_registry().clone(),
        );
        let report = self.session.run_grid(&batch_grid)?;

        let mut probes = Vec::with_capacity(fresh.len());
        for (&i, chunk) in fresh.iter().zip(report.records().chunks(self.ensemble)) {
            let outcome = self.score(i, chunk)?;
            if let Some(slot) = self.outcomes.get_mut(i) {
                *slot = Some(outcome.clone());
            }
            self.records.extend(chunk.iter().cloned());
            probes.push(outcome);
        }
        self.issued += fresh.len();
        self.batches.push(ProbeBatch { label, probes });
        Ok(())
    }

    /// Scores one candidate from its ensemble member records.
    fn score(&self, i: usize, chunk: &[ScenarioRecord]) -> Result<ProbeOutcome, CoreError> {
        let metric_over = |metric: &str| -> Result<Vec<f64>, CoreError> {
            chunk
                .iter()
                .map(|r| {
                    metric_value(r, metric).ok_or_else(|| CoreError::Report {
                        message: format!(
                            "record for `{}` (model `{}`) lacks metric `{metric}`",
                            r.scenario.workload, r.scenario.model
                        ),
                    })
                })
                .collect()
        };
        let values = metric_over(&self.objective.metric)?;
        let value = Reduce::Mean.apply(&values)?;
        let ci95 = Reduce::CiHalfWidth95.apply(&values)?;
        let mut bounds = Vec::with_capacity(self.constraints.len());
        let mut feasible = true;
        for c in self.constraints {
            let mean = Reduce::Mean.apply(&metric_over(&c.metric)?)?;
            feasible = feasible && c.satisfied(mean);
            bounds.push(mean);
        }
        Ok(ProbeOutcome {
            index: i,
            scenario: self.scenario_at(i)?.clone(),
            value,
            ci95,
            feasible,
            bounds,
        })
    }

    /// The incumbent among everything probed so far: the first
    /// feasible candidate in canonical order, replaced only by a
    /// *decisively* better one — better ensemble mean with the 95%
    /// confidence brackets separated. Statistical ties keep the
    /// earlier candidate, which makes the selection deterministic.
    fn best(&self) -> Option<ProbeOutcome> {
        let mut best: Option<&ProbeOutcome> = None;
        for o in self.outcomes.iter().flatten() {
            if !o.feasible {
                continue;
            }
            best = match best {
                None => Some(o),
                Some(b) => {
                    if self.objective.better(o.value, b.value)
                        && (o.value - b.value).abs() > o.ci95 + b.ci95
                    {
                        Some(o)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.cloned()
    }
}

/// Probes every point, in canonical order.
fn drive_exhaustive(p: &mut Prober<'_>) -> Result<(), CoreError> {
    p.probe("exhaustive", 0..p.grid.len())
}

/// Binary search on the single varying axis. The objective (and any
/// constraint metric) is assumed monotone along it; the driver audits
/// the assumption against its own probes and falls back to exhaustive
/// when violated, so a wrong assumption costs probes, never a wrong
/// answer.
fn drive_bisect(p: &mut Prober<'_>) -> Result<(), CoreError> {
    let varying = varying_axes(p.grid);
    let axis = match varying.as_slice() {
        [axis] => *axis,
        [] => {
            return report_err(
                "bisect: no axis varies across the space; there is nothing to search \
                 (use exhaustive)",
            )
        }
        many => {
            let names: Vec<&str> = many.iter().map(|a| a.name()).collect();
            return report_err(format!(
                "bisect: needs exactly one varying axis, space has {}: {} \
                 (use refine or exhaustive)",
                many.len(),
                names.join(", ")
            ));
        }
    };
    if matches!(axis, Axis::Policy | Axis::Workload) {
        return report_err(format!(
            "bisect: axis `{}` is categorical — no order, no monotonicity \
             (use exhaustive)",
            axis.name()
        ));
    }

    // Rank every scenario along the axis: numeric axes by value,
    // the model axis by first-appearance order of its keys (the
    // declared order of a parameter family is the asserted monotone
    // order). Ties (e.g. seed-duplicates from a union) break toward
    // the lower canonical index.
    let mut model_order: Vec<AxisValue> = Vec::new();
    let ranks: Vec<f64> = p
        .grid
        .scenarios()
        .iter()
        .map(|s| match axis.value_of(s) {
            AxisValue::Num(v) => v,
            v @ AxisValue::Str(_) => {
                let at = match model_order.iter().position(|m| *m == v) {
                    Some(i) => i,
                    None => {
                        model_order.push(v);
                        model_order.len() - 1
                    }
                };
                at as f64
            }
        })
        .collect();
    let rank = |i: usize| ranks.get(i).copied().unwrap_or(f64::INFINITY);
    let mut order: Vec<usize> = (0..p.grid.len()).collect();
    order.sort_by(|&a, &b| rank(a).total_cmp(&rank(b)).then(a.cmp(&b)));

    let (Some(&first), Some(&last)) = (order.first(), order.last()) else {
        return report_err("bisect: empty space");
    };
    if first == last {
        return p.probe("bisect endpoints", [first]);
    }

    // Endpoints fix the direction; the midpoint is the cheapest
    // monotonicity witness.
    p.probe("bisect endpoints", [first, last])?;
    let mid = order.get(order.len() / 2).copied().unwrap_or(first);
    p.probe("bisect midpoint", [mid])?;

    let (Some(v_first), Some(v_last)) = (p.value_of(first), p.value_of(last)) else {
        // Budget ran out inside the opening batches; report what we
        // have.
        return Ok(());
    };
    let rising = v_last >= v_first;
    let better_end_last = p.objective.better(v_last, v_first);

    // Audit: every probed point so far, in axis order, must move the
    // endpoint direction (within tolerance).
    if !audit_monotone(p, &order, rising) {
        p.notes.push(format!(
            "bisect: `{}` is not monotone along `{}` at the probed points; \
             falling back to exhaustive",
            p.objective.metric,
            axis.name()
        ));
        return p.probe("exhaustive fallback", order.iter().copied());
    }

    if p.constraints.is_empty() {
        // Monotone objective, no constraints: the better endpoint is
        // the optimum; both are already probed.
        return Ok(());
    }

    // With constraints the optimum sits at the feasibility boundary
    // nearest the better end. Positions are into `order`.
    let better_pos = if better_end_last { order.len() - 1 } else { 0 };
    let worse_pos = if better_end_last { 0 } else { order.len() - 1 };
    let at = |pos: usize| order.get(pos).copied().unwrap_or(first);

    if p.feasible_at(at(better_pos)).unwrap_or(false) {
        return Ok(()); // the unconstrained optimum is feasible
    }
    if !p.feasible_at(at(worse_pos)).unwrap_or(false) {
        p.notes.push(
            "bisect: both endpoints infeasible; the feasible set (if any) is interior — \
             falling back to exhaustive"
                .to_string(),
        );
        return p.probe("exhaustive fallback", order.iter().copied());
    }

    // Invariant: `lo` feasible, `hi` infeasible; shrink to adjacency.
    let (mut lo, mut hi) = (worse_pos, better_pos);
    let mut step = 0usize;
    while lo.abs_diff(hi) > 1 && p.remaining() > 0 {
        step += 1;
        let mid_pos = lo.midpoint(hi);
        p.probe(format!("bisect step {step}"), [at(mid_pos)])?;
        match p.feasible_at(at(mid_pos)) {
            Some(true) => lo = mid_pos,
            Some(false) => hi = mid_pos,
            None => break, // budget ran out
        }
    }
    if !audit_monotone(p, &order, rising) {
        p.notes.push(format!(
            "bisect: `{}` is not monotone along `{}` at the probed points; \
             falling back to exhaustive",
            p.objective.metric,
            axis.name()
        ));
        return p.probe("exhaustive fallback", order.iter().copied());
    }
    Ok(())
}

/// Checks that the objective values probed so far are monotone along
/// the axis order (non-strict, with [`MONO_EPS`] slack).
fn audit_monotone(p: &Prober<'_>, order: &[usize], rising: bool) -> bool {
    let mut prev: Option<f64> = None;
    for &i in order {
        let Some(v) = p.value_of(i) else { continue };
        if v.is_nan() {
            return false;
        }
        if let Some(pv) = prev {
            let eps = MONO_EPS * 1.0_f64.max(pv.abs()).max(v.abs());
            let ok = if rising { v >= pv - eps } else { v <= pv + eps };
            if !ok {
                return false;
            }
        }
        prev = Some(v);
    }
    true
}

/// Coarse-to-fine refinement over the canonical order: probe a
/// power-of-two-strided skeleton plus the endpoints, then repeatedly
/// halve the stride and probe the incumbent's neighbours. Finds the
/// optimum of any unimodal landscape in `O(log n)` batches and a good
/// point of any landscape, always within budget.
fn drive_refine(p: &mut Prober<'_>) -> Result<(), CoreError> {
    let n = p.grid.len();
    if n <= 2 {
        return p.probe("refine coarse", 0..n);
    }
    let mut stride = 1usize;
    while stride * 2 < n {
        stride *= 2;
    }
    let coarse: Vec<usize> = (0..n).step_by(stride).chain([n - 1]).collect();
    p.probe(format!("refine coarse (stride {stride})"), coarse)?;
    while stride > 1 && p.remaining() > 0 {
        stride /= 2;
        let Some(inc) = p.best() else { break };
        let around = [
            inc.index.checked_sub(stride),
            inc.index.checked_add(stride).filter(|&i| i < n),
        ];
        p.probe(
            format!("refine stride {stride}"),
            around.into_iter().flatten(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_hits_both_endpoints() {
        assert_eq!(steps(1.0, 4.0, 1.0).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(steps(2.0, 2.0, 0.5).unwrap(), vec![2.0]);
        // 0.1 steps accumulate rounding; the endpoint must survive.
        let v = steps(0.0, 1.0, 0.1).unwrap();
        assert_eq!(v.len(), 11);
        assert_eq!(v.last().copied().unwrap(), 1.0);
        assert!(steps(4.0, 1.0, 1.0).is_err());
        assert!(steps(0.0, 1.0, 0.0).is_err());
        assert!(steps(0.0, 1e9, 1e-3).is_err(), "point-count guard");
    }

    #[test]
    fn log_steps_are_equal_ratio() {
        let v = log_steps(1.0, 100.0, 3).unwrap();
        assert_eq!(v.len(), 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert_eq!(v[2], 100.0, "endpoint is exact");
        assert_eq!(log_steps(5.0, 5.0, 1).unwrap(), vec![5.0]);
        assert!(log_steps(0.0, 10.0, 4).is_err());
        assert!(log_steps(1.0, 10.0, 1).is_err());
    }

    #[test]
    fn objective_and_constraint_parse_and_print() {
        let o = Objective::parse("max:lt_years").unwrap();
        assert_eq!(o, Objective::maximize("lt_years"));
        assert_eq!(o.to_string(), "max:lt_years");
        assert_eq!(
            Objective::parse(" minimize:esav ").unwrap(),
            Objective::minimize("esav")
        );
        assert!(Objective::parse("lt_years").is_err());
        assert!(Objective::parse("best:lt_years").is_err());

        let c = Constraint::parse("lt_years>=7").unwrap();
        assert_eq!(c, Constraint::at_least("lt_years", 7.0).unwrap());
        assert_eq!(c.to_string(), "lt_years>=7");
        assert!(c.satisfied(7.0) && !c.satisfied(6.9));
        assert!(!c.satisfied(f64::NAN), "NaN is never feasible");
        let c = Constraint::parse("esav<=0.4").unwrap();
        assert_eq!(c.to_string(), "esav<=0.4");
        assert!(Constraint::parse("esav=0.4").is_err());
        assert!(Constraint::parse("esav<=lots").is_err());
        assert!(Constraint::at_least("x", f64::INFINITY).is_err());
    }

    #[test]
    fn driver_table_and_parse_agree() {
        for info in DRIVERS {
            assert_eq!(Driver::parse(info.key).unwrap().key(), info.key);
        }
        assert_eq!(Driver::parse("bisection").unwrap(), Driver::Bisect);
        let e = Driver::parse("anneal").unwrap_err();
        assert!(e.to_string().contains("exhaustive"), "{e}");
    }

    #[test]
    fn space_debug_shows_the_shape() {
        let s = ScenarioSpace::grid(StudySpec::new("a"))
            .filter(|_| true)
            .union(ScenarioSpace::grid(StudySpec::new("b")));
        assert_eq!(
            format!("{s:?}"),
            "ScenarioSpace[union(filter(grid(a)), grid(b))]"
        );
    }
}
