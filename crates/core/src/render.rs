//! The renderer family: one table or report, many output formats.
//!
//! Every table view in [`crate::views`] produces a
//! [`Table`]; this module is where a table (or the whole
//! [`StudyReport`] behind it) turns into bytes:
//!
//! * [`Format::Text`] — the historic aligned plain-text layout
//!   (`Table`'s `Display`), byte-identical to what the table binaries
//!   have always printed;
//! * [`Format::Markdown`] — paper-style GitHub-flavoured Markdown
//!   ([`Table::to_markdown`]);
//! * [`Format::Csv`] — RFC-4180 data rows ([`Table::to_csv`]): headers
//!   then rows, quoted only where needed, no title or notes — data,
//!   not presentation;
//! * [`Format::Json`] — the canonical deterministic report JSON
//!   ([`StudyReport::to_json`]), which parses back and re-renders in
//!   any other format without re-running anything.
//!
//! All four are deterministic: same report, same bytes, pinned by the
//! golden fixtures in `tests/render_goldens.rs`.
//!
//! # Examples
//!
//! Render one report three ways without re-measuring:
//!
//! ```
//! use aging_cache::render::{self, Format};
//! use aging_cache::report::Table;
//!
//! let mut t = Table::new("Demo", vec!["bench".into(), "LT".into()]);
//! t.push_row(vec!["sha".into(), "4.31".into()]);
//! assert!(render::table(&t, Format::Text).starts_with("=== Demo ==="));
//! assert!(render::table(&t, Format::Markdown).contains("| sha | 4.31 |"));
//! assert_eq!(render::table(&t, Format::Csv), "bench,LT\nsha,4.31\n");
//! ```

use crate::error::CoreError;
use crate::json::Json;
use crate::report::Table;
use crate::study::StudyReport;

/// An output format for tables and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned plain text — the historic stdout of the table binaries.
    Text,
    /// GitHub-flavoured Markdown, paper-table style.
    Markdown,
    /// RFC-4180 CSV: headers and data rows only.
    Csv,
    /// The canonical deterministic report JSON.
    Json,
}

impl Format {
    /// Every format, in display order.
    pub const ALL: [Format; 4] = [Format::Text, Format::Markdown, Format::Csv, Format::Json];

    /// The canonical format name (the `--format` flag's vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Markdown => "md",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    /// Parses a format name (`text`/`txt`, `md`/`markdown`, `csv`,
    /// `json`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] naming the known formats.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_cache::render::Format;
    ///
    /// assert_eq!(Format::parse("md").unwrap(), Format::Markdown);
    /// assert_eq!(Format::parse("markdown").unwrap(), Format::Markdown);
    /// assert!(Format::parse("pdf").is_err());
    /// ```
    pub fn parse(key: &str) -> Result<Format, CoreError> {
        match key.trim().to_ascii_lowercase().as_str() {
            "text" | "txt" | "plain" => Ok(Format::Text),
            "md" | "markdown" => Ok(Format::Markdown),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(CoreError::Report {
                message: format!(
                    "unknown format `{other}` (known: {})",
                    Format::ALL.map(Format::name).join(", ")
                ),
            }),
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders one table. [`Format::Json`] emits the table *structure*
/// (title, headers, rows, notes) as deterministic JSON — use
/// [`report`] when the canonical full-report JSON is wanted instead.
pub fn table(t: &Table, format: Format) -> String {
    match format {
        Format::Text => t.to_string(),
        Format::Markdown => t.to_markdown(),
        Format::Csv => t.to_csv(),
        Format::Json => Json::obj(vec![
            ("title", Json::Str(t.title().to_string())),
            (
                "headers",
                Json::Arr(t.headers().iter().map(|h| Json::Str(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    t.rows()
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(t.notes().iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ])
        .emit(),
    }
}

/// Renders a report through a table view — the one function behind
/// every table binary's `--format` flag. [`Format::Json`] bypasses the
/// view and emits the canonical [`StudyReport::to_json`] (so the
/// output can be parsed back and re-rendered any other way);
/// the table formats render `view(report)`.
///
/// # Errors
///
/// Propagates the view's shape errors.
///
/// # Examples
///
/// ```
/// use aging_cache::render::{self, Format};
/// use aging_cache::report::Table;
/// use aging_cache::study::StudyReport;
///
/// # fn main() -> Result<(), aging_cache::CoreError> {
/// let report = StudyReport::from_records("demo", vec![]);
/// let view = |r: &StudyReport| {
///     Ok(Table::new(r.name(), vec!["records".into()]))
/// };
/// let json = render::report(&report, view, Format::Json)?;
/// assert_eq!(StudyReport::from_json(&json)?.name(), "demo");
/// assert!(render::report(&report, view, Format::Csv)?.starts_with("records"));
/// # Ok(())
/// # }
/// ```
pub fn report(
    r: &StudyReport,
    view: impl FnOnce(&StudyReport) -> Result<Table, CoreError>,
    format: Format,
) -> Result<String, CoreError> {
    if format == Format::Json {
        return Ok(r.to_json());
    }
    Ok(table(&view(r)?, format))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", vec!["a".into(), "b,c".into()]);
        t.push_row(vec!["1".into(), "x\"y\"".into()]);
        t.push_note("hello");
        t
    }

    #[test]
    fn format_parse_roundtrip() {
        for f in Format::ALL {
            assert_eq!(Format::parse(f.name()).unwrap(), f);
        }
        assert!(Format::parse("yaml").is_err());
    }

    #[test]
    fn table_formats_dispatch() {
        let t = sample();
        assert!(table(&t, Format::Text).contains("=== T ==="));
        assert!(table(&t, Format::Markdown).contains("|---|"));
        assert_eq!(table(&t, Format::Csv), "a,\"b,c\"\n1,\"x\"\"y\"\"\"\n");
        let json = table(&t, Format::Json);
        assert!(json.contains("\"title\":\"T\""), "{json}");
        assert!(json.contains("\"notes\":[\"hello\"]"), "{json}");
    }

    #[test]
    fn report_json_bypasses_the_view() {
        let r = StudyReport::from_records("x", vec![]);
        let out = report(
            &r,
            |_| {
                Err(CoreError::Report {
                    message: "view must not run for json".into(),
                })
            },
            Format::Json,
        )
        .unwrap();
        assert_eq!(out, r.to_json());
    }
}
