//! The analysis layer: typed queries, aggregations, baseline joins and
//! cell-by-cell diffs over [`StudyReport`]s.
//!
//! The paper's contribution is ultimately *comparative* — lifetime gain
//! of partitioned + rotating configurations over a plain direct-mapped
//! baseline, across geometry, policy and workload axes — and after the
//! input side of the engine opened (policies, workloads, models,
//! execution), this module opens the output side:
//!
//! * [`Query`] filters and groups records over any scenario [`Axis`]
//!   and reduces any named metric ([`Reduce`]: mean / min / max /
//!   geomean / count);
//! * [`Query::gain_vs`] computes *derived baseline-relative metrics*
//!   by joining scenarios that differ only on the compared axis — e.g.
//!   lifetime gain of every policy over `identity` (the conventional
//!   modulo-indexed cache the paper compares against);
//! * [`ReportDiff`] compares two reports — or a report against a
//!   result-cache journal ([`crate::rescache`]) — cell by cell with a
//!   numeric tolerance, naming every diverging scenario by its
//!   position-independent key ([`scenario_key`]);
//! * the renderer family lives next door in [`crate::render`], so a
//!   query result (or a whole report) prints as aligned text,
//!   paper-style Markdown, CSV, or the canonical JSON.
//!
//! Everything here is pure: reports in, values out. A report parsed
//! back from JSON (or replayed from a cache) analyzes exactly like a
//! live run.
//!
//! # Examples
//!
//! Group a sweep by policy and reduce lifetimes:
//!
//! ```
//! use aging_cache::analysis::{Axis, Query, Reduce};
//! use aging_cache::study::StudyReport;
//!
//! # fn demo(report: &StudyReport) -> Result<(), aging_cache::CoreError> {
//! let rows = Query::new(report)
//!     .filter(Axis::Banks, 4u32)
//!     .group_by([Axis::Policy])
//!     .reduce("lt_years", Reduce::Mean)?;
//! for row in &rows {
//!     println!("{}: {:.2} y", row.key[0], row.value);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Baseline-relative gain — the paper's headline number — as a join
//! over the policy axis:
//!
//! ```
//! use aging_cache::analysis::{Axis, Query};
//! use aging_cache::study::StudyReport;
//!
//! # fn demo(report: &StudyReport) -> Result<(), aging_cache::CoreError> {
//! for gain in Query::new(report).gain_vs(Axis::Policy, "identity", "lt_years")? {
//!     println!(
//!         "{} on {}: {:.2}x the identity lifetime",
//!         gain.record.scenario.policy, gain.record.scenario.workload, gain.gain
//!     );
//! }
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::report::{pct, years, Table};
use crate::rescache::{CachedMeasurement, Fingerprint, ResultCache};
use crate::study::{Scenario, ScenarioRecord, StudyReport};
use crate::workload::WorkloadRegistry;
use std::fmt;
use std::fmt::Write as _;

/// A scenario axis of the evaluation grid — everything a
/// [`crate::study::StudySpec`] can sweep, as a typed, queryable key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Cache capacity in bytes.
    CacheBytes,
    /// Line size in bytes.
    LineBytes,
    /// Bank count `M`.
    Banks,
    /// Set-associative ways per set (`1` = direct-mapped).
    Ways,
    /// Replacement-policy registry name.
    Replacement,
    /// L2 capacity in bytes (`0` = no L2).
    L2CacheBytes,
    /// L2 ways per set.
    L2Ways,
    /// Days between re-indexing updates.
    UpdateDays,
    /// Indexing-policy registry name.
    Policy,
    /// Workload name (suite name, trace key or pinned profile).
    Workload,
    /// Canonical device-model key.
    Model,
}

impl Axis {
    /// Every axis, in canonical grid order (outermost first).
    pub const ALL: [Axis; 11] = [
        Axis::CacheBytes,
        Axis::LineBytes,
        Axis::Banks,
        Axis::Ways,
        Axis::Replacement,
        Axis::L2CacheBytes,
        Axis::L2Ways,
        Axis::UpdateDays,
        Axis::Policy,
        Axis::Workload,
        Axis::Model,
    ];

    /// The canonical axis name (what [`Axis::parse`] accepts, among
    /// aliases).
    pub fn name(self) -> &'static str {
        match self {
            Axis::CacheBytes => "cache_bytes",
            Axis::LineBytes => "line_bytes",
            Axis::Banks => "banks",
            Axis::Ways => "ways",
            Axis::Replacement => "replacement",
            Axis::L2CacheBytes => "l2_cache_bytes",
            Axis::L2Ways => "l2_ways",
            Axis::UpdateDays => "update_days",
            Axis::Policy => "policy",
            Axis::Workload => "workload",
            Axis::Model => "model",
        }
    }

    /// Parses an axis from its canonical name or a common alias
    /// (`cache`, `size`, `line`, `update`, …) — the grammar behind the
    /// `study --group-by` flag.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] naming the known axes for an
    /// unrecognized key.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_cache::analysis::Axis;
    ///
    /// assert_eq!(Axis::parse("policy").unwrap(), Axis::Policy);
    /// assert_eq!(Axis::parse("cache-kb").unwrap(), Axis::CacheBytes);
    /// assert!(Axis::parse("warp").is_err());
    /// ```
    pub fn parse(key: &str) -> Result<Axis, CoreError> {
        match key.trim().to_ascii_lowercase().as_str() {
            "cache_bytes" | "cache-bytes" | "cache" | "cache_kb" | "cache-kb" | "size" => {
                Ok(Axis::CacheBytes)
            }
            "line_bytes" | "line-bytes" | "line" => Ok(Axis::LineBytes),
            "banks" | "m" => Ok(Axis::Banks),
            "ways" | "assoc" | "associativity" => Ok(Axis::Ways),
            "replacement" | "repl" => Ok(Axis::Replacement),
            "l2_cache_bytes" | "l2-cache-bytes" | "l2" | "l2_kb" | "l2-kb" => {
                Ok(Axis::L2CacheBytes)
            }
            "l2_ways" | "l2-ways" | "l2w" => Ok(Axis::L2Ways),
            "update_days" | "update-days" | "update" => Ok(Axis::UpdateDays),
            "policy" | "policies" => Ok(Axis::Policy),
            "workload" | "workloads" | "bench" => Ok(Axis::Workload),
            "model" | "models" => Ok(Axis::Model),
            other => Err(CoreError::Report {
                message: format!(
                    "unknown axis `{other}` (known: {})",
                    Axis::ALL.map(Axis::name).join(", ")
                ),
            }),
        }
    }

    /// The axis value of one scenario.
    pub fn value_of(self, s: &Scenario) -> AxisValue {
        match self {
            Axis::CacheBytes => AxisValue::Num(s.cache_bytes as f64),
            Axis::LineBytes => AxisValue::Num(s.line_bytes as f64),
            Axis::Banks => AxisValue::Num(s.banks as f64),
            Axis::Ways => AxisValue::Num(s.ways as f64),
            Axis::Replacement => AxisValue::Str(s.replacement.clone()),
            Axis::L2CacheBytes => AxisValue::Num(s.l2_cache_bytes as f64),
            Axis::L2Ways => AxisValue::Num(s.l2_ways as f64),
            Axis::UpdateDays => AxisValue::Num(s.update_days),
            Axis::Policy => AxisValue::Str(s.policy.clone()),
            Axis::Workload => AxisValue::Str(s.workload.clone()),
            Axis::Model => AxisValue::Str(s.model.clone()),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One value on an [`Axis`]: numeric for geometry axes, string for the
/// registry-keyed ones. Integral numbers display without a decimal
/// point (`8192`, not `8192.0`), so group labels read like the CLI
/// flags that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A numeric axis value (sizes, bank counts, update periods).
    Num(f64),
    /// A string axis value (policy, workload and model keys).
    Str(String),
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Num(v) if v.fract() == 0.0 && v.abs() < 1e15 => {
                write!(f, "{}", *v as i64)
            }
            AxisValue::Num(v) => write!(f, "{v}"),
            AxisValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<f64> for AxisValue {
    fn from(v: f64) -> Self {
        AxisValue::Num(v)
    }
}

impl From<u64> for AxisValue {
    fn from(v: u64) -> Self {
        AxisValue::Num(v as f64)
    }
}

impl From<u32> for AxisValue {
    fn from(v: u32) -> Self {
        AxisValue::Num(v as f64)
    }
}

impl From<&str> for AxisValue {
    fn from(v: &str) -> Self {
        AxisValue::Str(v.to_string())
    }
}

impl From<String> for AxisValue {
    fn from(v: String) -> Self {
        AxisValue::Str(v)
    }
}

/// A reduction over a named metric within each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Geometric mean (the natural reduction for ratio metrics such as
    /// baseline-relative gains; requires strictly positive values).
    Geomean,
    /// Number of records in the group (ignores the metric's values but
    /// still requires the metric to be present on every record, so a
    /// count never silently includes records a mean would reject).
    Count,
    /// Half-width of the 95% confidence interval on the group mean
    /// (`1.96 · s / √n` with the sample standard deviation `s`), the
    /// decision statistic of the seed-ensemble search drivers
    /// ([`search`](crate::search)): `mean ± ci95` brackets where the
    /// true mean plausibly lies, so two configurations only count as
    /// *really* different when their brackets separate. A singleton
    /// group reduces to `0.0` — one observation constrains nothing,
    /// and the driver's tie-breaking handles the rest.
    CiHalfWidth95,
}

impl Reduce {
    /// The canonical reduction name.
    pub fn name(self) -> &'static str {
        match self {
            Reduce::Mean => "mean",
            Reduce::Min => "min",
            Reduce::Max => "max",
            Reduce::Geomean => "geomean",
            Reduce::Count => "count",
            Reduce::CiHalfWidth95 => "ci95",
        }
    }

    /// Parses a reduction name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] naming the known reductions.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_cache::analysis::Reduce;
    ///
    /// assert_eq!(Reduce::parse("geomean").unwrap(), Reduce::Geomean);
    /// assert!(Reduce::parse("median").is_err());
    /// ```
    pub fn parse(key: &str) -> Result<Reduce, CoreError> {
        match key.trim().to_ascii_lowercase().as_str() {
            "mean" | "avg" | "average" => Ok(Reduce::Mean),
            "min" => Ok(Reduce::Min),
            "max" => Ok(Reduce::Max),
            "geomean" => Ok(Reduce::Geomean),
            "count" | "n" => Ok(Reduce::Count),
            "ci95" | "ci" | "ci-half-width" => Ok(Reduce::CiHalfWidth95),
            other => Err(CoreError::Report {
                message: format!(
                    "unknown reduction `{other}` (known: mean, min, max, geomean, count, ci95)"
                ),
            }),
        }
    }

    /// Applies the reduction to a non-empty value slice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] for an empty slice, or for
    /// non-positive values under [`Reduce::Geomean`].
    pub fn apply(self, values: &[f64]) -> Result<f64, CoreError> {
        if values.is_empty() {
            return Err(CoreError::Report {
                message: format!("reduction `{}` over an empty group", self.name()),
            });
        }
        // f64::min/max silently drop NaN operands (IEEE minNum), which
        // would fabricate ±inf for an all-NaN group; propagate NaN the
        // way Mean's sum does instead, so "not measured" stays visible.
        let has_nan = values.iter().any(|v| v.is_nan());
        Ok(match self {
            Reduce::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Reduce::Min if has_nan => f64::NAN,
            Reduce::Max if has_nan => f64::NAN,
            Reduce::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Reduce::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Reduce::Geomean => {
                for &v in values {
                    if v <= 0.0 || v.is_nan() {
                        return Err(CoreError::Report {
                            message: format!("geomean needs strictly positive values, got {v}"),
                        });
                    }
                }
                (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
            }
            Reduce::Count => values.len() as f64,
            Reduce::CiHalfWidth95 => ci_half_width_95(values),
        })
    }
}

/// `1.96 · s / √n`: the half-width of the normal-approximation 95%
/// confidence interval on the mean, with the sample (n−1) standard
/// deviation `s`. Empty slices are rejected by [`Reduce::apply`]
/// before this runs; a singleton group returns `0.0` (one observation
/// constrains nothing); NaN inputs propagate through the sums.
fn ci_half_width_95(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    1.96 * (var / n).sqrt()
}

/// The value of a named metric on one record.
///
/// Resolves the three measured simulation outputs (`esav`,
/// `miss_rate`, `sim_cycles`), the per-bank vectors reduced to their
/// bank average (`useful_idleness`, `sleep_fractions`), and any named
/// model metric from the record's [`Metrics`](crate::model::Metrics)
/// map (`lt_years`, `lt0_years`, `drv_margin_aged_v`, …). `None` if
/// the record's model does not emit the metric.
pub fn metric_value(r: &ScenarioRecord, metric: &str) -> Option<f64> {
    match metric {
        "esav" => Some(r.esav),
        "miss_rate" => Some(r.miss_rate),
        "sim_cycles" => Some(r.sim_cycles as f64),
        "useful_idleness" => Some(r.avg_useful_idleness()),
        "sleep_fractions" => {
            Some(r.sleep_fractions.iter().sum::<f64>() / r.sleep_fractions.len() as f64)
        }
        named => r.metric(named),
    }
}

fn require_metric(r: &ScenarioRecord, metric: &str) -> Result<f64, CoreError> {
    metric_value(r, metric).ok_or_else(|| CoreError::Report {
        message: format!(
            "record for `{}` (model `{}`) lacks metric `{metric}`",
            r.scenario.workload, r.scenario.model
        ),
    })
}

/// Distinct values of a key over a report, in order of first
/// appearance — the ordering every table view and group-by shares.
pub fn distinct_by<'a, K: PartialEq>(
    records: impl IntoIterator<Item = &'a ScenarioRecord>,
    key: impl Fn(&'a ScenarioRecord) -> K,
) -> Vec<K> {
    let mut out: Vec<K> = Vec::new();
    for r in records {
        let k = key(r);
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

/// One group of a [`Query::groups`] partition: the group's key values
/// (one per `group_by` axis) and its records in report order.
#[derive(Debug, Clone)]
pub struct Group<'a> {
    /// The group's value on each grouping axis, in `group_by` order.
    pub key: Vec<AxisValue>,
    /// The group's records, preserving report order.
    pub records: Vec<&'a ScenarioRecord>,
}

impl Group<'_> {
    /// The group key as a single display label (` / `-separated).
    pub fn label(&self) -> String {
        self.key
            .iter()
            .map(AxisValue::to_string)
            .collect::<Vec<_>>()
            .join(" / ")
    }
}

/// One row of a reduced query: a group key and the reduced value.
#[derive(Debug, Clone)]
pub struct Row {
    /// The group's value on each grouping axis, in `group_by` order.
    pub key: Vec<AxisValue>,
    /// The reduced metric value.
    pub value: f64,
}

/// One baseline-relative join result from [`Query::gain_vs`].
#[derive(Debug, Clone)]
pub struct Gain<'a> {
    /// The record being compared (off-baseline on the compared axis).
    pub record: &'a ScenarioRecord,
    /// Its baseline partner (same everywhere but the compared axis).
    pub baseline: &'a ScenarioRecord,
    /// The metric on `record`.
    pub value: f64,
    /// The metric on `baseline`.
    pub base: f64,
    /// `value / base` — the derived baseline-relative metric.
    pub gain: f64,
}

/// A filtered, optionally grouped view over a [`StudyReport`].
///
/// Construction is free and nothing is copied: filters and groupings
/// are applied lazily when [`Query::records`], [`Query::groups`],
/// [`Query::reduce`] or [`Query::gain_vs`] walk the report.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    report: &'a StudyReport,
    filters: Vec<(Axis, AxisValue)>,
    groups: Vec<Axis>,
}

impl<'a> Query<'a> {
    /// A query over every record of `report`.
    pub fn new(report: &'a StudyReport) -> Self {
        Self {
            report,
            filters: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Keeps only records whose `axis` value equals `value`. Filters
    /// on different axes compose as AND.
    #[must_use]
    pub fn filter(mut self, axis: Axis, value: impl Into<AxisValue>) -> Self {
        self.filters.push((axis, value.into()));
        self
    }

    /// Sets the grouping axes (replacing any previous grouping). An
    /// empty grouping treats the whole selection as one group.
    #[must_use]
    pub fn group_by(mut self, axes: impl IntoIterator<Item = Axis>) -> Self {
        self.groups = axes.into_iter().collect();
        self
    }

    /// The filtered records, preserving report order.
    pub fn records(&self) -> Vec<&'a ScenarioRecord> {
        self.report
            .records()
            .iter()
            .filter(|r| {
                self.filters
                    .iter()
                    .all(|(axis, want)| axis.value_of(&r.scenario) == *want)
            })
            .collect()
    }

    /// Distinct values of `axis` over the filtered records, in order
    /// of first appearance.
    pub fn distinct(&self, axis: Axis) -> Vec<AxisValue> {
        distinct_by(self.records(), |r| axis.value_of(&r.scenario))
    }

    /// Partitions the filtered records by the grouping axes, groups in
    /// order of first appearance.
    pub fn groups(&self) -> Vec<Group<'a>> {
        let records = self.records();
        let keys = distinct_by(records.iter().copied(), |r| {
            self.groups
                .iter()
                .map(|a| a.value_of(&r.scenario))
                .collect::<Vec<_>>()
        });
        keys.into_iter()
            .map(|key| Group {
                records: records
                    .iter()
                    .copied()
                    .filter(|r| {
                        self.groups
                            .iter()
                            .zip(&key)
                            .all(|(a, want)| a.value_of(&r.scenario) == *want)
                    })
                    .collect(),
                key,
            })
            .collect()
    }

    /// Reduces a named metric within each group: one [`Row`] per
    /// group, in group order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] if the selection is empty, a
    /// record lacks the metric (naming the record), or the reduction
    /// itself rejects its inputs (geomean of a non-positive value).
    pub fn reduce(&self, metric: &str, how: Reduce) -> Result<Vec<Row>, CoreError> {
        let groups = self.groups();
        if groups.is_empty() {
            return Err(CoreError::Report {
                message: format!("reduce `{metric}`: the query selected no records"),
            });
        }
        groups
            .into_iter()
            .map(|g| {
                let values = g
                    .records
                    .iter()
                    .map(|r| require_metric(r, metric))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Row {
                    value: how.apply(&values).map_err(|e| CoreError::Report {
                        message: format!("group `{}`: {e}", g.label()),
                    })?,
                    key: g.key,
                })
            })
            .collect()
    }

    /// Joins each off-baseline record with the baseline record that
    /// matches it on *every other* axis, and derives the
    /// baseline-relative metric `value / base` — e.g. lifetime gain of
    /// every policy over the conventional `identity` (modulo-indexed)
    /// cache, or of every model operating point over the reference.
    ///
    /// The join deliberately ignores seeds derived from the compared
    /// axis (`policy_seed` for [`Axis::Policy`], `trace_seed` and
    /// provenance for [`Axis::Workload`]): two scenarios that differ
    /// only there are the *same experiment* under a different setting
    /// of the compared knob.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] if no record sits at the baseline
    /// value, a record has no (or more than one) baseline partner, or
    /// a joined record lacks the metric.
    pub fn gain_vs(
        &self,
        axis: Axis,
        baseline: impl Into<AxisValue>,
        metric: &str,
    ) -> Result<Vec<Gain<'a>>, CoreError> {
        let baseline = baseline.into();
        let records = self.records();
        // Index the baseline side once: join keys are multi-field
        // strings, and rebuilding or rescanning them per off-baseline
        // record would make a wide sweep quadratic. BTreeMap keeps
        // every walk over the index deterministic.
        let mut base_index: std::collections::BTreeMap<String, Vec<&ScenarioRecord>> =
            std::collections::BTreeMap::new();
        let mut any_baseline = false;
        for r in records.iter().copied() {
            if axis.value_of(&r.scenario) == baseline {
                any_baseline = true;
                base_index
                    .entry(join_key(&r.scenario, axis))
                    .or_default()
                    .push(r);
            }
        }
        if !any_baseline {
            return Err(CoreError::Report {
                message: format!("gain_vs: no records at baseline {axis}={baseline}"),
            });
        }
        let mut out = Vec::new();
        for r in records {
            if axis.value_of(&r.scenario) == baseline {
                continue;
            }
            let key = join_key(&r.scenario, axis);
            let partners = base_index.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            let [partner] = partners else {
                if partners.is_empty() {
                    return Err(CoreError::Report {
                        message: format!(
                            "gain_vs: no {axis}={baseline} partner for scenario `{key}`"
                        ),
                    });
                }
                return Err(CoreError::Report {
                    message: format!(
                        "gain_vs: multiple {axis}={baseline} partners for scenario `{key}`"
                    ),
                });
            };
            let partner = *partner;
            let value = require_metric(r, metric)?;
            let base = require_metric(partner, metric)?;
            out.push(Gain {
                record: r,
                baseline: partner,
                value,
                base,
                gain: value / base,
            });
        }
        Ok(out)
    }
}

/// The position-independent identity of a scenario as a join key over
/// every axis *except* `exclude` (and the seeds that axis derives).
fn join_key(s: &Scenario, exclude: Axis) -> String {
    let mut key = String::new();
    for axis in Axis::ALL {
        if axis == exclude {
            continue;
        }
        let _ = write!(key, "{}={};", axis.name(), axis.value_of(s));
    }
    let _ = write!(key, "cycles={}", s.trace_cycles);
    if exclude != Axis::Policy {
        let _ = write!(key, ";pseed={}", s.policy_seed);
    }
    if exclude != Axis::Workload {
        let _ = write!(key, ";tseed={}", s.trace_seed);
        if let Some(src) = &s.workload_source {
            let _ = write!(key, ";src={}:{}", src.format, src.hash);
        }
    }
    key
}

/// The full position-independent identity of a scenario — every axis
/// value, both seeds, the horizon and (for file-backed workloads) the
/// trace's content hash, but *not* the grid id: the key a scenario
/// keeps when its study is widened or reordered. [`ReportDiff`]
/// matches records across reports by this string and names diverging
/// scenarios with it.
///
/// # Examples
///
/// ```
/// use aging_cache::analysis::scenario_key;
/// # use aging_cache::study::{StudySpec};
/// let grid = StudySpec::new("demo").workload_names(["sha"]).unwrap().expand().unwrap();
/// let key = scenario_key(&grid.scenarios()[0]);
/// assert!(key.contains("policy=probing"));
/// assert!(key.contains("workload=sha"));
/// ```
pub fn scenario_key(s: &Scenario) -> String {
    let mut key = String::new();
    for axis in Axis::ALL {
        let _ = write!(key, "{}={};", axis.name(), axis.value_of(s));
    }
    let _ = write!(
        key,
        "cycles={};pseed={};tseed={}",
        s.trace_cycles, s.policy_seed, s.trace_seed
    );
    if let Some(src) = &s.workload_source {
        let _ = write!(key, ";src={}:{}", src.format, src.hash);
    }
    key
}

/// Whether two measured cells agree: exact for the same bit pattern,
/// `NaN` equals `NaN` (the honest "not measured" marker for
/// pinned-profile scenarios must not diverge from itself), otherwise
/// within `tol` absolutely.
fn cells_agree(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    a == b || (a - b).abs() <= tol
}

/// One diverging cell of a [`ReportDiff`]: which scenario, which
/// field, and both values.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// The diverging scenario's position-independent key
    /// ([`scenario_key`]).
    pub scenario: String,
    /// The diverging field (`esav`, `useful_idleness[2]`,
    /// `lt_years`, …).
    pub field: String,
    /// The value on the left side.
    pub left: f64,
    /// The value on the right side.
    pub right: f64,
}

/// A cell-by-cell comparison of two studies (or a study against a
/// result-cache journal): every scenario matched by its
/// position-independent key, every measured field compared with
/// tolerance, every divergence named.
///
/// # Examples
///
/// A report always diffs empty against itself:
///
/// ```
/// use aging_cache::analysis::ReportDiff;
/// use aging_cache::study::StudyReport;
///
/// let report = StudyReport::from_records("empty", vec![]);
/// let diff = ReportDiff::between(&report, &report, 0.0);
/// assert!(diff.is_empty());
/// assert_eq!(diff.matched(), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    tolerance: f64,
    matched: usize,
    divergent: Vec<CellDiff>,
    only_left: Vec<String>,
    only_right: Vec<String>,
}

impl ReportDiff {
    /// Compares two reports cell by cell with absolute tolerance
    /// `tolerance` (`0.0` demands bit-identical values; `NaN` always
    /// equals `NaN`). Records are matched by [`scenario_key`], so grid
    /// position is irrelevant: a widened or reordered study diffs
    /// clean against the original on every scenario they share.
    pub fn between(left: &StudyReport, right: &StudyReport, tolerance: f64) -> ReportDiff {
        // Index the right side so the match is O(n log n), not a
        // linear key-string scan per left record (reports are
        // routinely thousands of scenarios). Buckets hold duplicates
        // in report order; matching pops the earliest unmatched twin.
        // BTreeMap makes the leftover walk below insertion-order-free.
        let mut right_index: std::collections::BTreeMap<String, Vec<&ScenarioRecord>> =
            std::collections::BTreeMap::new();
        for r in right.records() {
            right_index
                .entry(scenario_key(&r.scenario))
                .or_default()
                .push(r);
        }
        let mut diff = ReportDiff {
            tolerance,
            matched: 0,
            divergent: Vec::new(),
            only_left: Vec::new(),
            only_right: Vec::new(),
        };
        for l in left.records() {
            let key = scenario_key(&l.scenario);
            let partner = right_index
                .get_mut(&key)
                .and_then(|bucket| (!bucket.is_empty()).then(|| bucket.remove(0)));
            let Some(r) = partner else {
                diff.only_left.push(key);
                continue;
            };
            diff.matched += 1;
            diff.compare_measurement(&key, l, &CachedMeasurement::of_record(r));
        }
        diff.only_right = right_index
            .into_iter()
            .flat_map(|(k, bucket)| std::iter::repeat_n(k, bucket.len()))
            .collect();
        // Already key-ordered by the BTreeMap walk; kept explicit so
        // the sorted-output contract survives an index change.
        diff.only_right.sort_unstable();
        diff
    }

    /// The same diff seen from the other side: left/right values of
    /// every diverging cell and the one-sided scenario lists swap;
    /// matched count and tolerance are symmetric. Lets a caller who
    /// compared `(journal, report)` present the result in the operand
    /// order the user actually wrote.
    #[must_use]
    pub fn swapped(mut self) -> ReportDiff {
        std::mem::swap(&mut self.only_left, &mut self.only_right);
        for d in &mut self.divergent {
            std::mem::swap(&mut d.left, &mut d.right);
        }
        self
    }

    /// Compares a report against a result-cache journal
    /// ([`crate::rescache`]): each record's scenario is fingerprinted
    /// (resolving its workload through `workloads` for provenance and
    /// `p0`, exactly as the grid runner does) and looked up — **no
    /// simulation and no model evaluation runs**. A scenario absent
    /// from the journal counts as "only left"; journal entries the
    /// report never asks about are not visited (a journal is a
    /// superset of many studies, so unvisited entries are not a
    /// divergence).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownWorkload`] / [`CoreError::Trace`]
    /// when a record's workload key no longer resolves (e.g. a moved
    /// trace file), or [`CoreError::Cache`] on journal backend
    /// failures.
    pub fn against_cache(
        report: &StudyReport,
        cache: &dyn ResultCache,
        workloads: &WorkloadRegistry,
        tolerance: f64,
    ) -> Result<ReportDiff, CoreError> {
        let mut diff = ReportDiff {
            tolerance,
            matched: 0,
            divergent: Vec::new(),
            only_left: Vec::new(),
            only_right: Vec::new(),
        };
        // One resolve per distinct workload key, not per record:
        // file-backed keys (`csv:path`, …) re-read and re-hash the
        // whole trace on every resolve, and a sweep typically crosses
        // one workload with many geometry/policy points.
        let mut resolved: std::collections::BTreeMap<
            String,
            std::sync::Arc<dyn crate::workload::Workload>,
        > = std::collections::BTreeMap::new();
        for l in report.records() {
            let key = scenario_key(&l.scenario);
            let workload = match resolved.get(&l.scenario.workload) {
                Some(w) => std::sync::Arc::clone(w),
                None => {
                    let w = workloads.resolve(&l.scenario.workload)?;
                    resolved.insert(l.scenario.workload.clone(), std::sync::Arc::clone(&w));
                    w
                }
            };
            let fp = Fingerprint::for_scenario(&l.scenario, workload.as_ref());
            match cache.lookup(&fp)? {
                None => diff.only_left.push(key),
                Some(cached) => {
                    diff.matched += 1;
                    diff.compare_measurement(&key, l, &cached);
                }
            }
        }
        Ok(diff)
    }

    fn compare_cell(&mut self, scenario: &str, field: impl Into<String>, left: f64, right: f64) {
        if !cells_agree(left, right, self.tolerance) {
            self.divergent.push(CellDiff {
                scenario: scenario.to_string(),
                field: field.into(),
                left,
                right,
            });
        }
    }

    /// Compares every measured cell of a record against a (cached or
    /// record-extracted) measurement.
    fn compare_measurement(&mut self, key: &str, l: &ScenarioRecord, r: &CachedMeasurement) {
        self.compare_cell(key, "sim_cycles", l.sim_cycles as f64, r.sim_cycles as f64);
        self.compare_cell(key, "esav", l.esav, r.esav);
        self.compare_cell(key, "miss_rate", l.miss_rate, r.miss_rate);
        for (name, left, right) in [
            ("useful_idleness", &l.useful_idleness, &r.useful_idleness),
            ("sleep_fractions", &l.sleep_fractions, &r.sleep_fractions),
        ] {
            if left.len() != right.len() {
                self.compare_cell(
                    key,
                    format!("{name}.len"),
                    left.len() as f64,
                    right.len() as f64,
                );
                continue;
            }
            for (i, (&a, &b)) in left.iter().zip(right.iter()).enumerate() {
                self.compare_cell(key, format!("{name}[{i}]"), a, b);
            }
        }
        // A metric missing on one side is a divergence *uncondition-
        // ally* — routing it through compare_cell with a NaN stand-in
        // would silently agree when the present side's value is itself
        // NaN, and "the journal dropped the metric" must never pass a
        // regression gate. The NaN appears only as the display value.
        for (metric, a) in l.metrics.iter() {
            match r.metrics.get(metric) {
                Some(b) => self.compare_cell(key, metric, a, b),
                None => self.divergent.push(CellDiff {
                    scenario: key.to_string(),
                    field: metric.to_string(),
                    left: a,
                    right: f64::NAN,
                }),
            }
        }
        for (metric, b) in r.metrics.iter() {
            if l.metrics.get(metric).is_none() {
                self.divergent.push(CellDiff {
                    scenario: key.to_string(),
                    field: metric.to_string(),
                    left: f64::NAN,
                    right: b,
                });
            }
        }
    }

    /// Whether the two sides agree completely: every scenario matched,
    /// every cell within tolerance.
    pub fn is_empty(&self) -> bool {
        self.divergent.is_empty() && self.only_left.is_empty() && self.only_right.is_empty()
    }

    /// Scenarios present on both sides.
    pub fn matched(&self) -> usize {
        self.matched
    }

    /// The diverging cells, in left-report order.
    pub fn divergent(&self) -> &[CellDiff] {
        &self.divergent
    }

    /// Keys of scenarios only the left side has.
    pub fn only_left(&self) -> &[String] {
        &self.only_left
    }

    /// Keys of scenarios only the right side has.
    pub fn only_right(&self) -> &[String] {
        &self.only_right
    }

    /// The comparison tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl fmt::Display for ReportDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compare: {} scenarios matched, {} diverging cells, {} only left, {} only right (tol {})",
            self.matched,
            self.divergent.len(),
            self.only_left.len(),
            self.only_right.len(),
            self.tolerance
        )?;
        for d in &self.divergent {
            writeln!(
                f,
                "  != {}: {} left {} right {}",
                d.scenario, d.field, d.left, d.right
            )?;
        }
        for key in &self.only_left {
            writeln!(f, "  <  {key}")?;
        }
        for key in &self.only_right {
            writeln!(f, "  >  {key}")?;
        }
        Ok(())
    }
}

/// Per-record baseline gains (`lt_years` vs the baseline policy),
/// keyed by scenario id; records *at* the baseline have no entry.
///
/// Records whose model emits no `lt_years` (e.g. the retention-margin
/// `drv` model in a mixed-model sweep) are excluded from the join
/// before it runs — they render `-`, like every other missing metric
/// in the summary table, instead of aborting the render. Within the
/// lifetime-bearing subset a missing baseline partner is still a real
/// error (the grid lacks the comparison the user asked for).
fn baseline_gains(
    report: &StudyReport,
    baseline: &str,
    // aging-lint: allow(no-unordered-iter) keyed gain map, only ever probed by scenario id
) -> Result<std::collections::HashMap<usize, f64>, CoreError> {
    // A sweep with no baseline scenarios at all cannot answer the
    // comparison the user asked for — that is a misconfiguration to
    // report, not a column of dashes.
    if !report
        .records()
        .iter()
        .any(|r| r.scenario.policy == baseline)
    {
        return Err(CoreError::Report {
            message: format!(
                "--baseline: the sweep contains no `{baseline}` scenarios \
                 (add it to --policies)"
            ),
        });
    }
    let with_lt: Vec<_> = report
        .records()
        .iter()
        .filter(|r| r.metric("lt_years").is_some())
        .cloned()
        .collect();
    let has_baseline = with_lt.iter().any(|r| r.scenario.policy == baseline);
    if with_lt.is_empty() || !has_baseline {
        // aging-lint: allow(no-unordered-iter) keyed gain map, only ever probed by scenario id
        return Ok(std::collections::HashMap::new()); // every row renders `-`
    }
    let lifetimes = StudyReport::from_records(report.name(), with_lt);
    Ok(Query::new(&lifetimes)
        .gain_vs(Axis::Policy, baseline, "lt_years")?
        .into_iter()
        .map(|g| (g.record.scenario.id, g.gain))
        .collect())
}

/// The one-row-per-scenario summary table (the `study` CLI's and the
/// study server's shared default view), with an `LT x<baseline>` gain
/// column appended when `baseline` is given.
fn per_record_table(report: &StudyReport, baseline: Option<&str>) -> Result<Table, CoreError> {
    let gains = baseline
        .map(|base| baseline_gains(report, base))
        .transpose()?;
    let metric = |v: Option<f64>| match v {
        Some(v) => years(v),
        None => "-".into(),
    };
    let mut headers = vec![
        "kB".into(),
        "line".into(),
        "M".into(),
        "model".into(),
        "policy".into(),
        "workload".into(),
        "Esav%".into(),
        "idl%".into(),
        "LT0".into(),
        "LT".into(),
    ];
    if let Some(base) = baseline {
        headers.push(format!("LT x{base}"));
    }
    let mut t = Table::new(
        format!("study: {} scenarios", report.records().len()),
        headers,
    );
    for r in report.records() {
        let mut row = vec![
            (r.scenario.cache_bytes / 1024).to_string(),
            r.scenario.line_bytes.to_string(),
            r.scenario.banks.to_string(),
            r.scenario.model.clone(),
            r.scenario.policy.clone(),
            r.scenario.workload.clone(),
            pct(r.esav),
            pct(r.avg_useful_idleness()),
            metric(r.metric("lt0_years")),
            metric(r.metric("lt_years")),
        ];
        if let Some(gains) = &gains {
            row.push(match gains.get(&r.scenario.id) {
                Some(gain) => format!("{gain:.2}x"),
                None => "-".into(), // the baseline row itself
            });
        }
        t.push_row(row);
    }
    Ok(t)
}

/// The group-by aggregation: one row per group, mean metrics over
/// the group's records, plus the geomean baseline-relative lifetime
/// gain when `baseline` is given.
fn grouped_table(
    report: &StudyReport,
    group_by: &[Axis],
    baseline: Option<&str>,
) -> Result<Table, CoreError> {
    let gains = baseline
        .map(|base| baseline_gains(report, base))
        .transpose()?;
    let query = Query::new(report).group_by(group_by.iter().copied());
    let mut headers: Vec<String> = group_by.iter().map(|a| a.name().to_string()).collect();
    headers.extend([
        "n".into(),
        "Esav%".into(),
        "idl%".into(),
        "LT0".into(),
        "LT".into(),
    ]);
    if let Some(base) = baseline {
        headers.push(format!("LT x{base}"));
    }
    let groups = query.groups();
    let mut t = Table::new(
        format!(
            "study: {} scenarios in {} groups",
            report.records().len(),
            groups.len()
        ),
        headers,
    );
    for group in groups {
        // Mean over the records that carry the metric, `-` when none
        // do — the grouped counterpart of the per-record table's `-`
        // for a missing metric (a mixed-model sweep must render, not
        // abort).
        let mean = |metric: &str, fmt: fn(f64) -> String| -> Result<String, CoreError> {
            let values: Vec<f64> = group
                .records
                .iter()
                .filter_map(|r| metric_value(r, metric))
                .collect();
            if values.is_empty() {
                return Ok("-".into());
            }
            Ok(fmt(Reduce::Mean.apply(&values)?))
        };
        let mut row: Vec<String> = group.key.iter().map(ToString::to_string).collect();
        row.push(group.records.len().to_string());
        row.push(mean("esav", pct)?);
        row.push(mean("useful_idleness", pct)?);
        row.push(mean("lt0_years", years)?);
        row.push(mean("lt_years", years)?);
        if let Some(gains) = &gains {
            let group_gains: Vec<f64> = group
                .records
                .iter()
                .filter_map(|r| gains.get(&r.scenario.id).copied())
                .collect();
            row.push(if group_gains.is_empty() {
                "-".into() // entirely at the baseline, or no lifetimes
            } else {
                format!("{:.2}x", Reduce::Geomean.apply(&group_gains)?)
            });
        }
        t.push_row(row);
    }
    Ok(t)
}

/// The shared summary view behind the `study` CLI's default output
/// *and* the study server's `/render` and `/query` endpoints: one row
/// per scenario (empty `group_by`), or one row per group with mean
/// metrics. `baseline` appends the `LT x<baseline>` gain column
/// (per-record, or geomean within each group) derived by a
/// [`Query::gain_vs`] join over the policy axis.
///
/// Both front ends calling this one function is what makes the served
/// bytes and the CLI bytes provably identical for the same report.
///
/// # Errors
///
/// Returns [`CoreError::Report`] when the baseline policy has no
/// scenarios in the report, and propagates reduction errors.
pub fn summary_table(
    report: &StudyReport,
    group_by: &[Axis],
    baseline: Option<&str>,
) -> Result<Table, CoreError> {
    if group_by.is_empty() {
        per_record_table(report, baseline)
    } else {
        grouped_table(report, group_by, baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Metrics;

    fn record(workload: &str, kb: u64, banks: u32, policy: &str, lt: f64) -> ScenarioRecord {
        ScenarioRecord {
            scenario: Scenario {
                id: 0,
                cache_bytes: kb * 1024,
                line_bytes: 16,
                banks,
                ways: 1,
                replacement: "lru".into(),
                l2_cache_bytes: 0,
                l2_ways: 1,
                update_days: 1.0,
                policy: policy.into(),
                workload: workload.into(),
                workload_index: 0,
                workload_source: None,
                model: "nbti-45nm".into(),
                trace_cycles: 1000,
                trace_seed: 1000,
                policy_seed: 1,
            },
            sim_cycles: 1000,
            esav: 0.4,
            miss_rate: 0.05,
            useful_idleness: vec![0.4; banks as usize],
            sleep_fractions: vec![0.35; banks as usize],
            metrics: Metrics::from_pairs([("lt0_years", 3.0), ("lt_years", lt)]),
        }
    }

    fn sample() -> StudyReport {
        StudyReport::from_records(
            "sample",
            vec![
                record("sha", 8, 4, "identity", 3.0),
                record("sha", 8, 4, "probing", 4.2),
                record("CRC32", 8, 4, "identity", 3.5),
                record("CRC32", 8, 4, "probing", 4.9),
                record("sha", 16, 4, "identity", 3.1),
                record("sha", 16, 4, "probing", 4.5),
            ],
        )
    }

    #[test]
    fn filter_group_reduce() {
        let report = sample();
        let rows = Query::new(&report)
            .filter(Axis::CacheBytes, 8u64 * 1024)
            .group_by([Axis::Policy])
            .reduce("lt_years", Reduce::Mean)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key[0], AxisValue::Str("identity".into()));
        assert!((rows[0].value - 3.25).abs() < 1e-12);
        assert!((rows[1].value - 4.55).abs() < 1e-12);
    }

    #[test]
    fn reduce_count_and_minmax() {
        let report = sample();
        let q = Query::new(&report).group_by([Axis::Workload]);
        let counts = q.reduce("lt_years", Reduce::Count).unwrap();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].value, 4.0, "sha appears at both sizes x policies");
        assert_eq!(counts[1].value, 2.0);
        let min = q.reduce("lt_years", Reduce::Min).unwrap();
        assert_eq!(min[0].value, 3.0);
        let max = q.reduce("lt_years", Reduce::Max).unwrap();
        assert_eq!(max[0].value, 4.5);
    }

    #[test]
    fn ci95_half_width_brackets_the_mean() {
        // Known closed form: {1, 2, 3} has mean 2, sample stddev 1, so
        // the half-width is 1.96 / √3.
        let ci = Reduce::CiHalfWidth95.apply(&[1.0, 2.0, 3.0]).unwrap();
        assert!((ci - 1.96 / 3.0_f64.sqrt()).abs() < 1e-12, "{ci}");
        // A singleton constrains nothing and an identical ensemble is
        // perfectly certain; both collapse to zero width.
        assert_eq!(Reduce::CiHalfWidth95.apply(&[7.0]).unwrap(), 0.0);
        assert_eq!(Reduce::CiHalfWidth95.apply(&[2.0, 2.0, 2.0]).unwrap(), 0.0);
        // Empty groups are rejected like every other reduction; NaN
        // propagates instead of vanishing.
        assert!(Reduce::CiHalfWidth95.apply(&[]).is_err());
        assert!(Reduce::CiHalfWidth95
            .apply(&[1.0, f64::NAN])
            .unwrap()
            .is_nan());
        // And it parses from the CLI spellings.
        assert_eq!(Reduce::parse("ci95").unwrap(), Reduce::CiHalfWidth95);
        assert_eq!(Reduce::parse("ci").unwrap(), Reduce::CiHalfWidth95);
        assert_eq!(Reduce::CiHalfWidth95.name(), "ci95");
    }

    #[test]
    fn min_max_propagate_nan_instead_of_dropping_it() {
        // f64::min/max would silently skip NaN and fabricate ±inf for
        // an all-NaN group; the reduction must keep "not measured"
        // visible, like Mean does.
        assert!(Reduce::Min.apply(&[1.0, f64::NAN]).unwrap().is_nan());
        assert!(Reduce::Max.apply(&[f64::NAN]).unwrap().is_nan());
        assert_eq!(Reduce::Min.apply(&[2.0, 1.0]).unwrap(), 1.0);
        assert_eq!(Reduce::Max.apply(&[2.0, 1.0]).unwrap(), 2.0);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        let report = StudyReport::from_records("z", vec![record("sha", 8, 4, "probing", 0.0)]);
        let e = Query::new(&report)
            .reduce("lt_years", Reduce::Geomean)
            .unwrap_err();
        assert!(e.to_string().contains("strictly positive"), "{e}");
    }

    #[test]
    fn empty_selection_is_an_error_not_nan() {
        let report = sample();
        let e = Query::new(&report)
            .filter(Axis::Policy, "warp-drive")
            .reduce("lt_years", Reduce::Mean)
            .unwrap_err();
        assert!(e.to_string().contains("selected no records"), "{e}");
    }

    #[test]
    fn missing_metric_names_the_record() {
        let report = sample();
        let e = Query::new(&report)
            .reduce("no_such_metric", Reduce::Mean)
            .unwrap_err();
        assert!(
            e.to_string().contains("lacks metric `no_such_metric`"),
            "{e}"
        );
    }

    #[test]
    fn gain_vs_joins_on_all_other_axes() {
        let report = sample();
        let gains = Query::new(&report)
            .gain_vs(Axis::Policy, "identity", "lt_years")
            .unwrap();
        assert_eq!(gains.len(), 3, "one join per off-baseline record");
        let g = &gains[0];
        assert_eq!(g.record.scenario.workload, "sha");
        assert_eq!(g.baseline.scenario.policy, "identity");
        assert!((g.gain - 4.2 / 3.0).abs() < 1e-12);
        // The 16 kB sha point joins the 16 kB identity, not the 8 kB one.
        let g16 = gains
            .iter()
            .find(|g| g.record.scenario.cache_bytes == 16 * 1024)
            .unwrap();
        assert!((g16.gain - 4.5 / 3.1).abs() < 1e-12);
    }

    #[test]
    fn gain_vs_ignores_policy_seed_across_the_policy_axis() {
        let mut base = record("sha", 8, 4, "identity", 3.0);
        base.scenario.policy_seed = 77;
        let probing = record("sha", 8, 4, "probing", 4.5);
        let report = StudyReport::from_records("seeds", vec![base, probing]);
        let gains = Query::new(&report)
            .gain_vs(Axis::Policy, "identity", "lt_years")
            .unwrap();
        assert_eq!(gains.len(), 1);
        assert!((gains[0].gain - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gain_vs_without_baseline_or_partner_is_an_error() {
        let report = sample();
        let e = Query::new(&report)
            .gain_vs(Axis::Policy, "gray", "lt_years")
            .unwrap_err();
        assert!(e.to_string().contains("no records at baseline"), "{e}");

        let lonely = StudyReport::from_records(
            "lonely",
            vec![
                record("sha", 8, 4, "identity", 3.0),
                record("CRC32", 8, 4, "probing", 4.0),
            ],
        );
        let e = Query::new(&lonely)
            .gain_vs(Axis::Policy, "identity", "lt_years")
            .unwrap_err();
        assert!(e.to_string().contains("no policy=identity partner"), "{e}");
    }

    #[test]
    fn diff_of_identical_reports_is_empty() {
        let report = sample();
        let diff = ReportDiff::between(&report, &report, 0.0);
        assert!(diff.is_empty(), "{diff}");
        assert_eq!(diff.matched(), 6);
    }

    #[test]
    fn diff_matches_by_identity_not_position() {
        let report = sample();
        let mut shuffled: Vec<ScenarioRecord> = report.records().to_vec();
        shuffled.reverse();
        for (i, r) in shuffled.iter_mut().enumerate() {
            r.scenario.id = i; // grid position must be irrelevant
        }
        let reordered = StudyReport::from_records("reordered", shuffled);
        let diff = ReportDiff::between(&report, &reordered, 0.0);
        assert!(diff.is_empty(), "{diff}");
    }

    #[test]
    fn diff_names_diverging_cells_and_respects_tolerance() {
        let report = sample();
        let mut tweaked: Vec<ScenarioRecord> = report.records().to_vec();
        tweaked[1].metrics = Metrics::from_pairs([("lt0_years", 3.0), ("lt_years", 4.2 + 1e-6)]);
        let right = StudyReport::from_records("tweaked", tweaked);
        let exact = ReportDiff::between(&report, &right, 0.0);
        assert_eq!(exact.divergent().len(), 1);
        let d = &exact.divergent()[0];
        assert_eq!(d.field, "lt_years");
        assert!(d.scenario.contains("policy=probing"), "{}", d.scenario);
        assert!(d.scenario.contains("workload=sha"), "{}", d.scenario);
        let tolerant = ReportDiff::between(&report, &right, 1e-3);
        assert!(tolerant.is_empty(), "{tolerant}");
    }

    #[test]
    fn diff_reports_one_sided_scenarios() {
        let report = sample();
        let narrow = StudyReport::from_records("narrow", report.records()[..4].to_vec());
        let diff = ReportDiff::between(&report, &narrow, 0.0);
        assert_eq!(diff.matched(), 4);
        assert_eq!(diff.only_left().len(), 2);
        assert!(diff.only_right().is_empty());
        let reverse = ReportDiff::between(&narrow, &report, 0.0);
        assert_eq!(reverse.only_right().len(), 2);
    }

    #[test]
    fn swapped_mirrors_sides_exactly() {
        let report = sample();
        let narrow = StudyReport::from_records("narrow", report.records()[..4].to_vec());
        let mut tweaked: Vec<ScenarioRecord> = narrow.records().to_vec();
        tweaked[0].esav = 0.9;
        let narrow = StudyReport::from_records("narrow", tweaked);
        let diff = ReportDiff::between(&report, &narrow, 0.0).swapped();
        let mirror = ReportDiff::between(&narrow, &report, 0.0);
        assert_eq!(diff.matched(), mirror.matched());
        assert_eq!(diff.only_left(), mirror.only_left());
        assert_eq!(diff.only_right(), mirror.only_right());
        assert_eq!(diff.divergent()[0].left, mirror.divergent()[0].left);
        assert_eq!(diff.divergent()[0].right, mirror.divergent()[0].right);
    }

    #[test]
    fn diff_treats_nan_as_equal_to_nan() {
        let mut a = record("sha", 8, 4, "probing", 4.0);
        a.esav = f64::NAN;
        a.miss_rate = f64::NAN;
        let report = StudyReport::from_records("nan", vec![a]);
        assert!(ReportDiff::between(&report, &report, 0.0).is_empty());
    }

    #[test]
    fn diff_flags_metrics_missing_on_one_side() {
        let left = StudyReport::from_records("l", vec![record("sha", 8, 4, "probing", 4.0)]);
        let mut stripped = record("sha", 8, 4, "probing", 4.0);
        stripped.metrics = Metrics::from_pairs([("lt0_years", 3.0)]);
        let right = StudyReport::from_records("r", vec![stripped]);
        let diff = ReportDiff::between(&left, &right, 0.0);
        assert_eq!(diff.divergent().len(), 1);
        assert_eq!(diff.divergent()[0].field, "lt_years");
        assert!(diff.divergent()[0].right.is_nan());
    }

    #[test]
    fn a_dropped_metric_diverges_even_when_its_value_was_nan() {
        // "Present as NaN" and "absent" are different facts: a journal
        // that drops a NaN-valued metric must not pass a regression
        // gate just because the NaN stand-in equals NaN.
        let mut with_nan = record("sha", 8, 4, "probing", 4.0);
        with_nan.metrics = Metrics::from_pairs([("lt0_years", 3.0), ("odd_metric", f64::NAN)]);
        let left = StudyReport::from_records("l", vec![with_nan]);
        let mut stripped = record("sha", 8, 4, "probing", 4.0);
        stripped.metrics = Metrics::from_pairs([("lt0_years", 3.0)]);
        let right = StudyReport::from_records("r", vec![stripped]);
        let diff = ReportDiff::between(&left, &right, 0.0);
        assert_eq!(diff.divergent().len(), 1, "{diff}");
        assert_eq!(diff.divergent()[0].field, "odd_metric");
        // …while the same metric present as NaN on both sides agrees.
        assert!(ReportDiff::between(&left, &left, 0.0).is_empty());
    }

    #[test]
    fn axis_roundtrip_and_values() {
        for axis in Axis::ALL {
            assert_eq!(Axis::parse(axis.name()).unwrap(), axis);
        }
        let r = record("sha", 8, 4, "probing", 4.0);
        assert_eq!(Axis::CacheBytes.value_of(&r.scenario).to_string(), "8192");
        assert_eq!(Axis::Policy.value_of(&r.scenario).to_string(), "probing");
        assert_eq!(AxisValue::Num(1.5).to_string(), "1.5");
    }

    #[test]
    fn metric_value_resolves_builtins_and_named() {
        let r = record("sha", 8, 4, "probing", 4.0);
        assert_eq!(metric_value(&r, "esav"), Some(0.4));
        assert_eq!(metric_value(&r, "sim_cycles"), Some(1000.0));
        assert_eq!(metric_value(&r, "useful_idleness"), Some(0.4));
        assert_eq!(metric_value(&r, "lt_years"), Some(4.0));
        assert_eq!(metric_value(&r, "nope"), None);
    }
}
