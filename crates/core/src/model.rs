//! The open device/aging-model axis: the [`AgingModel`] trait,
//! parameterized model keys, and the string-keyed [`ModelRegistry`] —
//! the third registry of the trilogy ([`crate::registry`] opened the
//! policy axis, [`crate::workload`] the workload axis).
//!
//! The paper's results hinge on one device model: a 45 nm 6T cell
//! calibrated so the always-on balanced cell lives 2.93 years at 85 °C,
//! dying when its read SNM degrades 20 %. Related work varies exactly
//! this axis — BTI interacts with process variation (Heidary & Joardar)
//! and rejuvenation studies sweep stress/recovery conditions per
//! structure (Gürsoy et al.) — so the model axis is open:
//!
//! * an [`AgingModel`] is a named factory whose [`AgingModel::calibrate`]
//!   runs the expensive solve once and returns a shared
//!   [`CalibratedModel`];
//! * a [`CalibratedModel`] maps one scenario's measurements (per-bank
//!   sleep fractions, `p0`, the update period, the indexing policy) to
//!   an ordered, string-keyed [`Metrics`] map;
//! * the [`ModelRegistry`] resolves registered names and dynamic
//!   parameterized keys; the [`ModelContext`] memoizes calibration per
//!   distinct canonical key, so a grid calibrates each model exactly
//!   once no matter how many scenarios share it.
//!
//! # Built-in model keys
//!
//! | key | model |
//! |---|---|
//! | `nbti-45nm` | the paper's calibrated reference cell (bit-for-bit the historic numbers) |
//! | `nbti:temp=85,vlow=0.7,sleep=gated,fail=15` | the reference drift model at an overridden operating point |
//! | `variation:30` (`variation:<sigma-mv>[,cells=N,q=Q]`) | extreme-value process-variation wrapper over [`VariationModel`] |
//! | `drv[:vlow=0.7,aged=0.08]` | data-retention-voltage margin model for the drowsy state |
//!
//! Parameter semantics: `temp` is the operating temperature in °C,
//! `vlow` the drowsy rail in volts, `sleep` the low-power mechanism
//! (`scaled` = state-preserving drowsy sleep, `gated` = power gating),
//! `fail` the SNM-degradation failure criterion in percent. Calibration
//! stays anchored at the reference cell — overrides move the *operating
//! point*, they never re-fit the drift coefficient — so `nbti:temp=45`
//! ages slower and `nbti:temp=125` faster than the 2.93-year anchor,
//! exactly like silicon from one fab lot deployed at different
//! temperatures.
//!
//! # Examples
//!
//! Resolving and calibrating models by key:
//!
//! ```
//! use aging_cache::model::ModelContext;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let ctx = ModelContext::new();
//! let reference = ctx.registry().resolve("nbti-45nm")?;
//! println!("{}", reference.provenance());
//! // Parameterized keys canonicalize: redundant defaults drop away.
//! let same = ctx.registry().resolve("nbti:vlow=0.75")?;
//! assert_eq!(same.name(), "nbti-45nm");
//! let hot = ctx.registry().resolve("nbti:temp=105")?;
//! assert_eq!(hot.name(), "nbti:temp=105");
//! # Ok(())
//! # }
//! ```

use crate::aging::AgingAnalysis;
use crate::error::CoreError;
use cache_sim::{BankMapping, IdentityMapping};
use nbti_model::{calibration, DrvAnalysis, LifetimeSolver, SleepMode, VariationModel};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Metric name: lifetime under the identity policy (no re-indexing),
/// years — the paper's `LT0`.
pub const METRIC_LT0: &str = "lt0_years";

/// Metric name: lifetime under the scenario's policy, years — the
/// paper's `LT`.
pub const METRIC_LT: &str = "lt_years";

/// The default model key: the paper's calibrated reference cell.
pub const DEFAULT_MODEL: &str = "nbti-45nm";

/// An ordered, string-keyed map of named model outputs.
///
/// Order is the model's emission order and is preserved through JSON,
/// so reports stay byte-deterministic. Values may be non-finite
/// (`variation:<sigma>` emits `+Inf` for a rate-free bank); the report
/// codec round-trips them as tagged strings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    /// An empty metrics map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map from `(name, value)` pairs, in order.
    pub fn from_pairs<S: Into<String>>(pairs: impl IntoIterator<Item = (S, f64)>) -> Self {
        let mut m = Self::new();
        for (name, value) in pairs {
            m.push(name, value);
        }
        m
    }

    /// Appends a metric, replacing the value in place if the name is
    /// already present.
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.entries.push((name, value)),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The metric names, in emission order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Iterates `(name, value)` pairs in emission order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|&(ref n, v)| (n.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One scenario's inputs to a model evaluation: everything the physics
/// layer consumes, already measured by the simulator.
pub struct ModelEval<'a> {
    /// Per-bank sleep fractions measured on the trace.
    pub sleep_fractions: &'a [f64],
    /// Probability that a stored bit is a logic '0'.
    pub p0: f64,
    /// Days between re-indexing updates.
    pub update_days: f64,
    /// Builds a fresh instance of the scenario's indexing policy
    /// (models that rotate stress call it once per evaluation).
    #[allow(clippy::type_complexity)]
    pub policy: &'a dyn Fn() -> Result<Box<dyn BankMapping>, CoreError>,
}

impl std::fmt::Debug for ModelEval<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEval")
            .field("sleep_fractions", &self.sleep_fractions)
            .field("p0", &self.p0)
            .field("update_days", &self.update_days)
            .finish_non_exhaustive()
    }
}

/// A calibrated device model, ready to evaluate scenarios.
///
/// Instances are shared across threads and scenarios (the
/// [`ModelContext`] hands out one `Arc` per distinct model key), so any
/// internal memoization doubles as cross-scenario sharing — the nbti
/// models share their per-`p0` critical-budget solves exactly like the
/// paper's characterization LUT is shared by every simulation.
pub trait CalibratedModel: Send + Sync {
    /// Maps one scenario's measurements to named metrics.
    ///
    /// Metric names must not shadow the record-level JSON fields
    /// ([`ScenarioRecord::RESERVED_FIELDS`](crate::study::ScenarioRecord::RESERVED_FIELDS)
    /// — `esav`, `miss_rate`, …): metrics inline as top-level record
    /// fields, and the grid runner rejects an evaluation that emits a
    /// reserved name.
    ///
    /// # Errors
    ///
    /// Propagates physics-solver failures.
    fn evaluate(&self, eval: &ModelEval<'_>) -> Result<Metrics, CoreError>;
}

/// A named device/aging model — one point on the model axis.
///
/// The split from [`CalibratedModel`] mirrors the cost structure:
/// `name`/`provenance` are cheap metadata, [`AgingModel::calibrate`] is
/// the expensive solve the [`ModelContext`] memoizes per distinct key.
pub trait AgingModel: Send + Sync {
    /// The canonical registry key.
    fn name(&self) -> &str;

    /// One-line human-readable description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// The calibration provenance: which anchor, operating point and
    /// failure criterion produce this model's numbers. Every built-in
    /// spells out its full derivation so a published report names
    /// exactly what was measured.
    fn provenance(&self) -> String;

    /// Runs the expensive calibration.
    ///
    /// # Errors
    ///
    /// Propagates solver failures (e.g. a design with no read margin).
    fn calibrate(&self) -> Result<Arc<dyn CalibratedModel>, CoreError>;
}

// ---------------------------------------------------------------------
// Parameterized model keys
// ---------------------------------------------------------------------

/// Operating-point overrides shared by the built-in model families.
///
/// `None` means "the reference value" — the canonical key only spells
/// out overrides that differ from the reference, so `nbti:vlow=0.75`
/// canonicalizes back to `nbti-45nm`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelParams {
    /// Operating temperature in °C (reference: 84.85 °C ≡ 358 K).
    pub temp_c: Option<f64>,
    /// Drowsy rail in volts (reference: 0.75 V).
    pub vdd_low: Option<f64>,
    /// `true` = power-gated sleep, `false` = voltage-scaled (the
    /// reference mechanism).
    pub sleep_gated: Option<bool>,
    /// SNM-degradation failure criterion in percent (reference: 20 %).
    pub fail_pct: Option<f64>,
}

/// The reference drowsy rail, volts (the paper's 0.75 V choice).
pub const REFERENCE_VLOW: f64 = 0.75;
/// The reference operating temperature in °C (≈ 358 K, the
/// calibration point). Display/grouping fallback only — overrides are
/// compared in kelvin by the solver, never against this constant.
pub const REFERENCE_TEMP_C: f64 = 84.85;
/// The reference failure criterion, percent (20 % SNM degradation).
pub const REFERENCE_FAIL_PCT: f64 = 100.0 * LifetimeSolver::DEFAULT_FAIL_FRACTION;
/// Default cells per bank for the variation wrapper: a 16 kB / M = 4
/// bank (4 kB data + tags ≈ 37k cells).
const DEFAULT_CELLS: u64 = 37_000;
/// Default bank-lifetime quantile for the variation wrapper.
const DEFAULT_QUANTILE: f64 = 0.5;
/// Default end-of-life ΔVth (V) for the aged DRV margin — the
/// approximate critical shift of the reference cell at its 20 %-SNM
/// failure point.
const DEFAULT_AGED_SHIFT: f64 = 0.08;

impl ModelParams {
    /// No overrides: the reference operating point.
    pub const fn none() -> Self {
        Self {
            temp_c: None,
            vdd_low: None,
            sleep_gated: None,
            fail_pct: None,
        }
    }

    /// Whether every parameter is at its reference value.
    pub fn is_reference(&self) -> bool {
        *self == Self::none()
    }

    /// Merges `over` on top of `self` (`Some` values in `over` win).
    #[must_use]
    pub fn merged(self, over: ModelParams) -> Self {
        Self {
            temp_c: over.temp_c.or(self.temp_c),
            vdd_low: over.vdd_low.or(self.vdd_low),
            sleep_gated: over.sleep_gated.or(self.sleep_gated),
            fail_pct: over.fail_pct.or(self.fail_pct),
        }
    }

    /// Drops overrides that equal the reference value, so keys
    /// canonicalize by value (`nbti:vlow=0.75` ≡ `nbti-45nm`).
    fn normalized(mut self) -> Self {
        if self.vdd_low == Some(REFERENCE_VLOW) {
            self.vdd_low = None;
        }
        if self.sleep_gated == Some(false) {
            self.sleep_gated = None;
        }
        if self.fail_pct == Some(REFERENCE_FAIL_PCT) {
            self.fail_pct = None;
        }
        self
    }

    fn push_canonical(&self, parts: &mut Vec<String>) {
        if let Some(t) = self.temp_c {
            parts.push(format!("temp={t}"));
        }
        if let Some(v) = self.vdd_low {
            parts.push(format!("vlow={v}"));
        }
        if self.sleep_gated == Some(true) {
            parts.push("sleep=gated".into());
        }
        if let Some(f) = self.fail_pct {
            parts.push(format!("fail={f}"));
        }
    }
}

/// A parsed built-in model key: family plus overrides.
///
/// [`ModelKey::parse`] returns `Ok(None)` for keys that are not
/// built-in families (user-registered names pass through the registry
/// untouched); [`ModelKey::canonical`] re-emits the normalized key all
/// memoization and reports use.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelKey {
    /// The family name: `"nbti"`, `"variation"` or `"drv"`.
    pub family: String,
    /// Operating-point overrides.
    pub params: ModelParams,
    /// Pair-mismatch sigma in mV (`variation` family only).
    pub sigma_mv: Option<f64>,
    /// Cells per bank (`variation` family; default 37 000).
    pub cells: Option<u64>,
    /// Bank-lifetime quantile (`variation` family; default 0.5).
    pub quantile: Option<f64>,
    /// End-of-life ΔVth in volts for the aged DRV margin (`drv`
    /// family; default 0.08 V).
    pub aged_shift: Option<f64>,
}

fn key_err(key: &str, message: impl Into<String>) -> CoreError {
    CoreError::InvalidModelKey {
        key: key.to_string(),
        message: message.into(),
    }
}

fn parse_f64(key: &str, name: &str, value: &str) -> Result<f64, CoreError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| {
            key_err(
                key,
                format!("parameter `{name}` is not a finite number: `{value}`"),
            )
        })
}

impl ModelKey {
    /// Parses a built-in model key; `Ok(None)` for non-family keys.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidModelKey`] for a family key with
    /// malformed or unsupported parameters.
    pub fn parse(key: &str) -> Result<Option<Self>, CoreError> {
        let (head, tail) = match key.split_once(':') {
            Some((h, t)) => (h, Some(t)),
            None => (key, None),
        };
        let family = match head {
            "nbti-45nm" if tail.is_none() => "nbti",
            "nbti" => "nbti",
            "drv" => "drv",
            "variation" => "variation",
            _ => return Ok(None),
        };
        let mut parsed = Self {
            family: family.to_string(),
            params: ModelParams::none(),
            sigma_mv: None,
            cells: None,
            quantile: None,
            aged_shift: None,
        };
        let Some(tail) = tail else {
            if family == "variation" {
                return Err(key_err(
                    key,
                    "the variation family needs a sigma: `variation:<sigma-mv>`",
                ));
            }
            return Ok(Some(parsed));
        };
        for (i, part) in tail.split(',').enumerate() {
            let part = part.trim();
            let Some((name, value)) = part.split_once('=') else {
                // The variation sigma is positional: `variation:30,...`.
                if family == "variation" && i == 0 {
                    let sigma = parse_f64(key, "sigma", part)?;
                    parsed.sigma_mv = Some(sigma);
                    continue;
                }
                return Err(key_err(key, format!("expected `name=value`, got `{part}`")));
            };
            match name {
                "temp" => parsed.params.temp_c = Some(parse_f64(key, name, value)?),
                "vlow" => parsed.params.vdd_low = Some(parse_f64(key, name, value)?),
                "fail" => parsed.params.fail_pct = Some(parse_f64(key, name, value)?),
                "sleep" => {
                    parsed.params.sleep_gated = Some(match value {
                        "gated" => true,
                        "scaled" | "drowsy" => false,
                        other => {
                            return Err(key_err(
                                key,
                                format!(
                                    "parameter `sleep` must be `gated` or `scaled`, got `{other}`"
                                ),
                            ))
                        }
                    })
                }
                "sigma" if family == "variation" => {
                    parsed.sigma_mv = Some(parse_f64(key, name, value)?)
                }
                "cells" if family == "variation" => {
                    parsed.cells = Some(value.parse::<u64>().map_err(|_| {
                        key_err(
                            key,
                            format!("parameter `cells` is not an integer: `{value}`"),
                        )
                    })?)
                }
                "q" if family == "variation" => {
                    parsed.quantile = Some(parse_f64(key, name, value)?)
                }
                "aged" if family == "drv" => parsed.aged_shift = Some(parse_f64(key, name, value)?),
                other => {
                    return Err(key_err(
                        key,
                        format!("unknown parameter `{other}` for the `{family}` family"),
                    ))
                }
            }
        }
        if family == "variation" && parsed.sigma_mv.is_none() {
            return Err(key_err(
                key,
                "the variation family needs a sigma: `variation:<sigma-mv>`",
            ));
        }
        Ok(Some(parsed))
    }

    /// The canonical key: overrides equal to the reference value are
    /// dropped, parameters are ordered, and a parameterless `nbti` key
    /// collapses to `nbti-45nm`.
    pub fn canonical(&self) -> String {
        let params = self.params.normalized();
        let mut parts = Vec::new();
        if let Some(sigma) = self.sigma_mv {
            parts.push(format!("{sigma}"));
        }
        if self.cells.is_some_and(|c| c != DEFAULT_CELLS) {
            parts.push(format!("cells={}", self.cells.expect("checked")));
        }
        if let Some(q) = self.quantile.filter(|&q| q != DEFAULT_QUANTILE) {
            parts.push(format!("q={q}"));
        }
        params.push_canonical(&mut parts);
        if let Some(a) = self.aged_shift.filter(|&a| a != DEFAULT_AGED_SHIFT) {
            parts.push(format!("aged={a}"));
        }
        match (self.family.as_str(), parts.is_empty()) {
            ("nbti", true) => DEFAULT_MODEL.to_string(),
            (family, true) => family.to_string(),
            (family, false) => format!("{family}:{}", parts.join(",")),
        }
    }
}

/// Canonicalizes a model key: built-in family keys normalize by value,
/// anything else (a registered custom name) passes through untouched.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModelKey`] for a malformed family key.
pub fn canonicalize(key: &str) -> Result<String, CoreError> {
    Ok(match ModelKey::parse(key)? {
        Some(parsed) => parsed.canonical(),
        None => key.to_string(),
    })
}

/// Applies axis overrides (temperature / drowsy rail / failure
/// criterion) to a model key, producing the canonical composed key —
/// the expansion step behind
/// [`StudySpec::temps_c`](crate::study::StudySpec::temps_c) and
/// friends.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModelKey`] if the key is malformed, or
/// if overrides are requested on a custom (non-family) model name.
pub fn compose(key: &str, over: ModelParams) -> Result<String, CoreError> {
    if over == ModelParams::none() {
        return canonicalize(key);
    }
    match ModelKey::parse(key)? {
        Some(mut parsed) => {
            parsed.params = parsed.params.merged(over);
            Ok(parsed.canonical())
        }
        None => Err(key_err(
            key,
            "custom models do not accept temperature/voltage/failure overrides",
        )),
    }
}

// ---------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------

/// Builds the solver for a parameterized operating point: the drift
/// model stays the reference calibration, the design moves.
fn derived_solver(params: &ModelParams) -> Result<LifetimeSolver, CoreError> {
    let reference = calibration::reference_45nm();
    let mut design = reference.design().clone();
    if let Some(t) = params.temp_c {
        design = design.with_temperature(t + 273.15)?;
    }
    if let Some(v) = params.vdd_low {
        design = design.with_vdd_low(v)?;
    }
    let mut solver = reference.at_operating_point(design)?;
    if let Some(pct) = params.fail_pct {
        solver = solver.with_fail_fraction(pct / 100.0)?;
    }
    Ok(solver)
}

fn sleep_mode(params: &ModelParams) -> SleepMode {
    if params.sleep_gated == Some(true) {
        SleepMode::power_gated()
    } else {
        SleepMode::VoltageScaled
    }
}

fn operating_point_provenance(params: &ModelParams) -> String {
    let temp = match params.temp_c {
        Some(t) => format!("{t}"),
        None => REFERENCE_TEMP_C.to_string(), // ≈ 358 K, the calibration point
    };
    format!(
        "{temp} °C, Vdd 1.1 V, Vdd_low {} V, {} sleep, SNM -{} % failure",
        params.vdd_low.unwrap_or(REFERENCE_VLOW),
        if params.sleep_gated == Some(true) {
            "power-gated"
        } else {
            "voltage-scaled"
        },
        params.fail_pct.unwrap_or(REFERENCE_FAIL_PCT),
    )
}

const ANCHOR_PROVENANCE: &str =
    "drift calibrated so the always-on balanced 45 nm cell lives 2.93 y at 85 °C (paper §IV-B1)";

/// The `nbti` family: the paper's reference cell, optionally moved to
/// another operating point.
struct NbtiModel {
    key: String,
    params: ModelParams,
}

impl NbtiModel {
    fn new(params: ModelParams) -> Self {
        let key = ModelKey {
            family: "nbti".into(),
            params,
            sigma_mv: None,
            cells: None,
            quantile: None,
            aged_shift: None,
        }
        .canonical();
        Self { key, params }
    }
}

impl AgingModel for NbtiModel {
    fn name(&self) -> &str {
        &self.key
    }

    fn description(&self) -> &str {
        if self.key == DEFAULT_MODEL {
            "the paper's calibrated 45 nm reference cell"
        } else {
            "the reference drift model at an overridden operating point"
        }
    }

    fn provenance(&self) -> String {
        format!(
            "45 nm 6T cell at {}; {}",
            operating_point_provenance(&self.params),
            ANCHOR_PROVENANCE
        )
    }

    fn calibrate(&self) -> Result<Arc<dyn CalibratedModel>, CoreError> {
        let aging =
            AgingAnalysis::new(derived_solver(&self.params)?).with_mode(sleep_mode(&self.params));
        Ok(Arc::new(NbtiCalibrated {
            aging,
            lt0_memo: Mutex::new(HashMap::new()), // aging-lint: allow(no-unordered-iter) keyed memo
        }))
    }
}

/// `(sleep bits, p0 bits, update-days bits)` — every input the LT0
/// baseline depends on.
type Lt0Key = (Vec<u64>, u64, u64);

struct NbtiCalibrated {
    aging: AgingAnalysis,
    /// The LT0 baseline is policy-independent, so scenarios differing
    /// only in policy share one solve through this memo (racing
    /// double-computes store identical values).
    lt0_memo: Mutex<HashMap<Lt0Key, f64>>, // aging-lint: allow(no-unordered-iter) keyed memo
}

impl CalibratedModel for NbtiCalibrated {
    fn evaluate(&self, eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
        // Reuse the calibrated analysis directly when the scenario's
        // update interval matches; clone-with-interval otherwise.
        let matches = (eval.update_days - self.aging.update_interval_days()).abs() < 1e-12;
        let aging_storage = (!matches).then(|| {
            self.aging
                .clone()
                .with_update_interval_days(eval.update_days)
        });
        let aging = aging_storage.as_ref().unwrap_or(&self.aging);

        let lt0_key: Lt0Key = (
            eval.sleep_fractions.iter().map(|s| s.to_bits()).collect(),
            eval.p0.to_bits(),
            eval.update_days.to_bits(),
        );
        let cached = self
            .lt0_memo
            .lock()
            .expect("lt0 memo poisoned")
            .get(&lt0_key)
            .copied();
        let lt0 = match cached {
            Some(v) => v,
            None => {
                let mut identity = IdentityMapping;
                let v = aging.cache_lifetime_with(eval.sleep_fractions, eval.p0, &mut identity)?;
                self.lt0_memo
                    .lock()
                    .expect("lt0 memo poisoned")
                    .insert(lt0_key, v);
                v
            }
        };
        let mut mapping = (eval.policy)()?;
        let lt = aging.cache_lifetime_with(eval.sleep_fractions, eval.p0, mapping.as_mut())?;
        Ok(Metrics::from_pairs([(METRIC_LT0, lt0), (METRIC_LT, lt)]))
    }
}

/// The `variation` family: extreme-value process variation over the
/// derived nbti solver.
struct VariationAgingModel {
    key: String,
    params: ModelParams,
    sigma_mv: f64,
    cells: u64,
    quantile: f64,
}

impl VariationAgingModel {
    fn new(parsed: &ModelKey) -> Self {
        Self {
            key: parsed.canonical(),
            params: parsed.params,
            sigma_mv: parsed.sigma_mv.expect("variation keys carry a sigma"),
            cells: parsed.cells.unwrap_or(DEFAULT_CELLS),
            quantile: parsed.quantile.unwrap_or(DEFAULT_QUANTILE),
        }
    }
}

impl AgingModel for VariationAgingModel {
    fn name(&self) -> &str {
        &self.key
    }

    fn description(&self) -> &str {
        "extreme-value Vth-mismatch wrapper (bank dies with its worst cell)"
    }

    fn provenance(&self) -> String {
        format!(
            "worst cell of {} per bank, pair-mismatch sigma {} mV, bank quantile {}; \
             45 nm 6T cell at {}; {}",
            self.cells,
            self.sigma_mv,
            self.quantile,
            operating_point_provenance(&self.params),
            ANCHOR_PROVENANCE
        )
    }

    fn calibrate(&self) -> Result<Arc<dyn CalibratedModel>, CoreError> {
        let solver = derived_solver(&self.params)?;
        let variation = VariationModel::new(self.sigma_mv / 1000.0, self.cells)?;
        let table = variation.characterize(&solver)?;
        // Rate 1 turns the quantile into the bare effective-stress
        // budget the worst cell of a bank can absorb.
        let budget_q = variation.bank_lifetime_quantile(&table, 1.0, self.quantile);
        let budget_q10 = variation.bank_lifetime_quantile(&table, 1.0, 0.10);
        let aging = AgingAnalysis::new(solver).with_mode(sleep_mode(&self.params));
        Ok(Arc::new(VariationCalibrated {
            aging,
            budget_q,
            budget_q10,
        }))
    }
}

struct VariationCalibrated {
    aging: AgingAnalysis,
    budget_q: f64,
    budget_q10: f64,
}

impl CalibratedModel for VariationCalibrated {
    fn evaluate(&self, eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
        // Analytic extreme-value model: the worst cell of the
        // first-exhausted bank spends the characterized budget at that
        // bank's *long-run* stress rate — no update-period
        // quantization. The identity baseline is pinned by the busiest
        // bank; the policy's lifetime samples the actual mapping over
        // whole rotation cycles, so `identity` reports its true (no
        // gain) rate, `probing`/`gray` average every bank exactly, and
        // scrambled mappings approach the mean statistically.
        let rates = eval
            .sleep_fractions
            .iter()
            .map(|&s| self.aging.bank_rate(s, eval.p0))
            .collect::<Result<Vec<f64>, _>>()?;
        let max_rate = rates.iter().copied().fold(0.0f64, f64::max);
        let banks = rates.len();
        let mut mapping = (eval.policy)()?;
        // Long-run average rate per physical bank under the mapping:
        // a multiple of the bank count covers the cyclic policies'
        // full period exactly; 256 cycles bound the sampling error of
        // pseudo-random (LFSR) policies.
        let updates = 256 * banks;
        let mut accumulated = vec![0.0f64; banks];
        for _ in 0..updates {
            for (logical, &rate) in rates.iter().enumerate() {
                let phys = mapping.map_bank(logical as u32, banks as u32) as usize;
                accumulated[phys] += rate;
            }
            mapping.update();
        }
        let policy_rate = accumulated
            .iter()
            .map(|sum| sum / updates as f64)
            .fold(0.0f64, f64::max);
        let at = |budget: f64, rate: f64| {
            if rate <= 0.0 {
                f64::INFINITY
            } else {
                budget / rate
            }
        };
        Ok(Metrics::from_pairs([
            (METRIC_LT0, at(self.budget_q, max_rate)),
            (METRIC_LT, at(self.budget_q, policy_rate)),
            ("lt0_q10_years", at(self.budget_q10, max_rate)),
        ]))
    }
}

/// The `drv` family: data-retention-voltage margins for the drowsy
/// state, fresh and at end of life.
struct DrvModel {
    key: String,
    params: ModelParams,
    aged_shift: f64,
}

impl DrvModel {
    fn new(parsed: &ModelKey) -> Self {
        Self {
            key: parsed.canonical(),
            params: parsed.params,
            aged_shift: parsed.aged_shift.unwrap_or(DEFAULT_AGED_SHIFT),
        }
    }
}

impl AgingModel for DrvModel {
    fn name(&self) -> &str {
        &self.key
    }

    fn description(&self) -> &str {
        "data-retention-voltage margin of the drowsy state, fresh and aged"
    }

    fn provenance(&self) -> String {
        format!(
            "hold-SNM retention analysis (40 mV margin requirement), aged state ΔVth {} V; \
             45 nm 6T cell at {}; {}",
            self.aged_shift,
            operating_point_provenance(&self.params),
            ANCHOR_PROVENANCE
        )
    }

    fn calibrate(&self) -> Result<Arc<dyn CalibratedModel>, CoreError> {
        let solver = derived_solver(&self.params)?;
        let drv = DrvAnalysis::new(solver.design().clone());
        let fresh = drv.min_retention_voltage(0.0, 0.0)?;
        let aged = drv.min_retention_voltage(self.aged_shift, self.aged_shift)?;
        let vlow = solver.design().vdd_low();
        Ok(Arc::new(FixedMetrics(Metrics::from_pairs([
            ("drv_fresh_v", fresh),
            ("drv_aged_v", aged),
            ("drv_margin_fresh_v", vlow - fresh),
            ("drv_margin_aged_v", vlow - aged),
        ]))))
    }
}

/// A calibrated model whose metrics are scenario-independent.
struct FixedMetrics(Metrics);

impl CalibratedModel for FixedMetrics {
    fn evaluate(&self, _eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
        Ok(self.0.clone())
    }
}

// ---------------------------------------------------------------------
// Registry and context
// ---------------------------------------------------------------------

struct FnModel<F> {
    name: String,
    description: String,
    provenance: String,
    calibrate: F,
}

impl<F> AgingModel for FnModel<F>
where
    F: Fn() -> Result<Arc<dyn CalibratedModel>, CoreError> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn provenance(&self) -> String {
        self.provenance.clone()
    }

    fn calibrate(&self) -> Result<Arc<dyn CalibratedModel>, CoreError> {
        (self.calibrate)()
    }
}

/// The string-keyed model registry.
///
/// Keys are ordered (a `BTreeMap`), so listings are deterministic
/// regardless of registration order. Parameterized family keys
/// (`nbti:…`, `variation:…`, `drv:…`) resolve dynamically without
/// registration, exactly like file-backed workload keys.
#[derive(Clone, Default)]
pub struct ModelRegistry {
    entries: BTreeMap<String, Arc<dyn AgingModel>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.names())
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry (no models at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The registry with the named built-ins: `nbti-45nm` (the paper's
    /// reference) and `drv` (retention margins at the reference rail).
    /// Parameterized keys resolve dynamically on top.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register(Arc::new(NbtiModel::new(ModelParams::none())))
            .expect("fresh registry");
        r.register(Arc::new(DrvModel::new(
            &ModelKey::parse("drv")
                .expect("static key")
                .expect("family key"),
        )))
        .expect("fresh registry");
        r
    }

    /// A shared, immutable instance of [`ModelRegistry::builtin`] for
    /// listings and hot paths.
    pub fn global() -> &'static ModelRegistry {
        static GLOBAL: std::sync::OnceLock<ModelRegistry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(ModelRegistry::builtin)
    }

    /// Registers a model object. Fails if the name is already taken.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateModel`] on a name collision.
    pub fn register(&mut self, model: Arc<dyn AgingModel>) -> Result<(), CoreError> {
        let name = model.name().to_string();
        if self.entries.contains_key(&name) {
            return Err(CoreError::DuplicateModel { name });
        }
        self.entries.insert(name, model);
        Ok(())
    }

    /// Registers a model from a calibration closure — the one-liner
    /// path for user code and examples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateModel`] on a name collision.
    pub fn register_fn<F>(
        &mut self,
        name: &str,
        description: &str,
        provenance: &str,
        calibrate: F,
    ) -> Result<(), CoreError>
    where
        F: Fn() -> Result<Arc<dyn CalibratedModel>, CoreError> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnModel {
            name: name.to_string(),
            description: description.to_string(),
            provenance: provenance.to_string(),
            calibrate,
        }))
    }

    /// Looks up a registered model by exact name (no dynamic family
    /// resolution; see [`ModelRegistry::resolve`]).
    pub fn get(&self, name: &str) -> Option<&Arc<dyn AgingModel>> {
        self.entries.get(name)
    }

    /// Resolves a model key: registered names first (before and after
    /// canonicalization), then dynamic parameterized family keys.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownModel`] for an unresolvable key, or
    /// [`CoreError::InvalidModelKey`] for a malformed family key.
    pub fn resolve(&self, key: &str) -> Result<Arc<dyn AgingModel>, CoreError> {
        if let Some(m) = self.entries.get(key) {
            return Ok(Arc::clone(m));
        }
        if let Some(parsed) = ModelKey::parse(key)? {
            let canonical = parsed.canonical();
            if let Some(m) = self.entries.get(&canonical) {
                return Ok(Arc::clone(m));
            }
            return Ok(match parsed.family.as_str() {
                "nbti" => Arc::new(NbtiModel::new(parsed.params)),
                "variation" => Arc::new(VariationAgingModel::new(&parsed)),
                "drv" => Arc::new(DrvModel::new(&parsed)),
                other => unreachable!("ModelKey::parse only emits known families, got {other}"),
            });
        }
        Err(CoreError::UnknownModel {
            name: key.to_string(),
            known: self.names().join(", "),
        })
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, model)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<dyn AgingModel>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// The run context of the Study API: a model registry plus the
/// per-model calibration cache.
///
/// Calibration is the expensive solve, so [`ModelContext::calibrated`]
/// memoizes it per distinct *canonical* key: a grid of a thousand
/// scenarios over two models calibrates exactly twice, and the shared
/// [`CalibratedModel`] instances let scenarios share internal
/// characterization state (the LUT-sharing the paper's flow relies on).
///
/// The legacy
/// [`ExperimentContext`](crate::experiment::ExperimentContext) is a
/// thin shim over this type.
pub struct ModelContext {
    registry: ModelRegistry,
    // aging-lint: allow(no-unordered-iter) calibration memo, only ever probed by key; never iterated
    calibrated: Mutex<HashMap<String, Arc<dyn CalibratedModel>>>,
    calibrations: AtomicUsize,
}

impl std::fmt::Debug for ModelContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelContext")
            .field("registry", &self.registry)
            .field("calibrations", &self.calibration_count())
            .finish_non_exhaustive()
    }
}

impl Clone for ModelContext {
    fn clone(&self) -> Self {
        Self {
            registry: self.registry.clone(),
            calibrated: Mutex::new(self.calibrated.lock().expect("cache poisoned").clone()),
            calibrations: AtomicUsize::new(self.calibrations.load(Ordering::Relaxed)),
        }
    }
}

impl Default for ModelContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelContext {
    /// A context over the built-in registry. Construction is free —
    /// calibration happens lazily, once per distinct model key.
    pub fn new() -> Self {
        Self::with_registry(ModelRegistry::builtin())
    }

    /// A context over a custom registry (to resolve user-registered
    /// models by name).
    pub fn with_registry(registry: ModelRegistry) -> Self {
        Self {
            registry,
            calibrated: Mutex::new(HashMap::new()), // aging-lint: allow(no-unordered-iter) keyed memo
            calibrations: AtomicUsize::new(0),
        }
    }

    /// The registry this context resolves keys through.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Resolves and calibrates a model, memoized per canonical key.
    ///
    /// The calibration lock is held across the solve, so concurrent
    /// callers of the same key never duplicate the work — "once per
    /// distinct model" is a guarantee, not a fast path.
    ///
    /// # Errors
    ///
    /// Propagates resolution and calibration errors.
    pub fn calibrated(&self, key: &str) -> Result<Arc<dyn CalibratedModel>, CoreError> {
        let model = self.registry.resolve(key)?;
        let canonical = model.name().to_string();
        let mut cache = self.calibrated.lock().expect("cache poisoned");
        if let Some(hit) = cache.get(&canonical) {
            return Ok(Arc::clone(hit));
        }
        let built = model.calibrate()?;
        self.calibrations.fetch_add(1, Ordering::Relaxed);
        cache.insert(canonical, Arc::clone(&built));
        Ok(built)
    }

    /// How many calibrations have actually run in this context — the
    /// observable behind the once-per-distinct-model guarantee.
    pub fn calibration_count(&self) -> usize {
        self.calibrations.load(Ordering::Relaxed)
    }
}

impl AsRef<ModelContext> for ModelContext {
    fn as_ref(&self) -> &ModelContext {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::PolicyRegistry;

    fn eval_with<'a>(
        sleep: &'a [f64],
        policy: &'a dyn Fn() -> Result<Box<dyn BankMapping>, CoreError>,
    ) -> ModelEval<'a> {
        ModelEval {
            sleep_fractions: sleep,
            p0: 0.5,
            update_days: 1.0,
            policy,
        }
    }

    fn probing() -> impl Fn() -> Result<Box<dyn BankMapping>, CoreError> {
        || PolicyRegistry::global().build("probing", 4, 1)
    }

    #[test]
    fn metrics_preserve_order_and_replace_in_place() {
        let mut m = Metrics::from_pairs([("b", 1.0), ("a", 2.0)]);
        m.push("b", 3.0);
        assert_eq!(m.names().collect::<Vec<_>>(), vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(3.0));
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn keys_canonicalize_by_value() {
        for (key, canonical) in [
            ("nbti-45nm", "nbti-45nm"),
            ("nbti:vlow=0.75", "nbti-45nm"),
            ("nbti:fail=20", "nbti-45nm"),
            ("nbti:sleep=scaled", "nbti-45nm"),
            ("nbti:temp=85", "nbti:temp=85"),
            ("nbti:vlow=0.7,temp=85", "nbti:temp=85,vlow=0.7"),
            ("nbti:sleep=gated,fail=15", "nbti:sleep=gated,fail=15"),
            ("drv", "drv"),
            ("drv:vlow=0.75,aged=0.08", "drv"),
            ("drv:vlow=0.55", "drv:vlow=0.55"),
            ("variation:30", "variation:30"),
            ("variation:sigma=30,cells=37000,q=0.5", "variation:30"),
            (
                "variation:15,q=0.1,cells=1024",
                "variation:15,cells=1024,q=0.1",
            ),
        ] {
            assert_eq!(canonicalize(key).unwrap(), canonical, "{key}");
        }
        // Custom names pass through.
        assert_eq!(canonicalize("my-model").unwrap(), "my-model");
    }

    #[test]
    fn malformed_keys_are_rejected_with_context() {
        for key in [
            "nbti:temp=warm",
            "nbti:volume=11",
            "nbti:sleep=deep",
            "variation",
            "variation:cells=10",
            "drv:q=0.5",
        ] {
            let e = canonicalize(key).unwrap_err();
            assert!(
                matches!(e, CoreError::InvalidModelKey { .. }),
                "{key}: {e:?}"
            );
            assert!(e.to_string().contains(key), "{key}: {e}");
        }
    }

    #[test]
    fn compose_applies_overrides_and_rejects_custom_names() {
        let over = ModelParams {
            temp_c: Some(105.0),
            ..ModelParams::none()
        };
        assert_eq!(compose("nbti-45nm", over).unwrap(), "nbti:temp=105");
        assert_eq!(
            compose("nbti:vlow=0.7", over).unwrap(),
            "nbti:temp=105,vlow=0.7"
        );
        assert_eq!(
            compose("variation:30", over).unwrap(),
            "variation:30,temp=105"
        );
        assert!(compose("my-model", over).is_err());
        // No overrides: pass through custom names untouched.
        assert_eq!(
            compose("my-model", ModelParams::none()).unwrap(),
            "my-model"
        );
    }

    #[test]
    fn builtin_registry_resolves_families_dynamically() {
        let r = ModelRegistry::builtin();
        assert_eq!(r.names(), vec!["drv", "nbti-45nm"]);
        assert_eq!(r.resolve("nbti:vlow=0.75").unwrap().name(), "nbti-45nm");
        assert_eq!(r.resolve("variation:30").unwrap().name(), "variation:30");
        assert_eq!(r.resolve("drv:vlow=0.6").unwrap().name(), "drv:vlow=0.6");
        let e = r.resolve("quantum-cell").err().expect("must fail");
        assert!(matches!(e, CoreError::UnknownModel { .. }));
        assert!(e.to_string().contains("nbti-45nm"), "{e}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = ModelRegistry::builtin();
        let e = r
            .register(Arc::new(NbtiModel::new(ModelParams::none())))
            .unwrap_err();
        assert!(matches!(e, CoreError::DuplicateModel { .. }));
    }

    #[test]
    fn context_calibrates_once_per_canonical_key() {
        let ctx = ModelContext::new();
        let a = ctx.calibrated("nbti-45nm").unwrap();
        let b = ctx.calibrated("nbti:vlow=0.75").unwrap(); // same canonical key
        assert!(Arc::ptr_eq(&a, &b), "aliases must share the calibration");
        assert_eq!(ctx.calibration_count(), 1);
        ctx.calibrated("nbti:temp=105").unwrap();
        ctx.calibrated("nbti:temp=105").unwrap();
        assert_eq!(ctx.calibration_count(), 2);
    }

    #[test]
    fn reference_model_reports_its_provenance() {
        let model = ModelRegistry::global().resolve("nbti-45nm").unwrap();
        let p = model.provenance();
        assert!(p.contains("2.93"), "{p}");
        assert!(p.contains("0.75"), "{p}");
        let hot = ModelRegistry::global().resolve("nbti:temp=125").unwrap();
        assert!(hot.provenance().contains("125"), "{}", hot.provenance());
    }

    #[test]
    fn hotter_operating_points_age_faster() {
        let ctx = ModelContext::new();
        let sleep = [0.1, 0.8, 0.6, 0.3];
        let policy = probing();
        let eval = eval_with(&sleep, &policy);
        let lt = |key: &str| {
            ctx.calibrated(key)
                .unwrap()
                .evaluate(&eval)
                .unwrap()
                .get(METRIC_LT)
                .unwrap()
        };
        let cool = lt("nbti:temp=45");
        let reference = lt("nbti-45nm");
        let hot = lt("nbti:temp=125");
        assert!(
            cool > reference && reference > hot,
            "LT must fall with temperature: {cool} / {reference} / {hot}"
        );
    }

    #[test]
    fn variation_shortens_lifetimes_but_keeps_the_reindex_gain() {
        let ctx = ModelContext::new();
        let sleep = [0.0, 0.56, 0.56, 0.56];
        let policy = probing();
        let eval = eval_with(&sleep, &policy);
        let nominal = ctx
            .calibrated("variation:0")
            .unwrap()
            .evaluate(&eval)
            .unwrap();
        let varied = ctx
            .calibrated("variation:30")
            .unwrap()
            .evaluate(&eval)
            .unwrap();
        assert!(varied.get(METRIC_LT0).unwrap() < nominal.get(METRIC_LT0).unwrap());
        assert!(varied.get(METRIC_LT).unwrap() > varied.get(METRIC_LT0).unwrap());
        assert!(varied.get("lt0_q10_years").unwrap() <= varied.get(METRIC_LT0).unwrap());
    }

    #[test]
    fn variation_model_honors_the_scenario_policy() {
        // Under the identity policy there is no rotation and no gain:
        // the model must not report the re-indexed mean-rate lifetime.
        let ctx = ModelContext::new();
        let sleep = [0.0, 0.56, 0.56, 0.56];
        let identity: Box<dyn Fn() -> Result<Box<dyn BankMapping>, CoreError>> =
            Box::new(|| PolicyRegistry::global().build("identity", 4, 1));
        let eval = ModelEval {
            sleep_fractions: &sleep,
            p0: 0.5,
            update_days: 1.0,
            policy: identity.as_ref(),
        };
        let m = ctx
            .calibrated("variation:30")
            .unwrap()
            .evaluate(&eval)
            .unwrap();
        let (lt, lt0) = (m.get(METRIC_LT).unwrap(), m.get(METRIC_LT0).unwrap());
        assert!(
            ((lt - lt0) / lt0).abs() < 1e-12,
            "identity must have no re-indexing gain: LT {lt} vs LT0 {lt0}"
        );
        // Probing does rotate — its LT must beat the identity baseline.
        let policy = probing();
        let rotated = ctx
            .calibrated("variation:30")
            .unwrap()
            .evaluate(&eval_with(&sleep, &policy))
            .unwrap();
        assert!(rotated.get(METRIC_LT).unwrap() > rotated.get(METRIC_LT0).unwrap());
    }

    #[test]
    fn drv_margins_shrink_with_the_rail_and_with_age() {
        let ctx = ModelContext::new();
        let sleep = [0.5; 4];
        let policy = probing();
        let eval = eval_with(&sleep, &policy);
        let reference = ctx.calibrated("drv").unwrap().evaluate(&eval).unwrap();
        let low_rail = ctx
            .calibrated("drv:vlow=0.55")
            .unwrap()
            .evaluate(&eval)
            .unwrap();
        let fresh = reference.get("drv_margin_fresh_v").unwrap();
        let aged = reference.get("drv_margin_aged_v").unwrap();
        assert!(aged < fresh, "aging must cost margin: {aged} vs {fresh}");
        assert!(
            low_rail.get("drv_margin_fresh_v").unwrap() < fresh,
            "a lower rail has less margin"
        );
    }

    #[test]
    fn custom_models_register_and_calibrate() {
        let mut registry = ModelRegistry::builtin();
        registry
            .register_fn(
                "constant",
                "emits a constant lifetime",
                "no calibration at all",
                || {
                    Ok(Arc::new(FixedMetrics(Metrics::from_pairs([(
                        "lt_years", 7.0,
                    )]))))
                },
            )
            .unwrap();
        let ctx = ModelContext::with_registry(registry);
        let sleep = [0.5; 4];
        let policy = probing();
        let m = ctx
            .calibrated("constant")
            .unwrap()
            .evaluate(&eval_with(&sleep, &policy))
            .unwrap();
        assert_eq!(m.get("lt_years"), Some(7.0));
        assert_eq!(ctx.calibration_count(), 1);
    }
}
