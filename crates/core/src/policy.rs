//! The dynamic-indexing functions `f()` (paper §III-A3, Fig. 3).
//!
//! Both policies remap only the `p` bank-select MSBs of the cache index;
//! they are bijections at every point in time, so the cache's hit/miss
//! behaviour is untouched between updates (the paper's "no degradation of
//! miss rate" property).
//!
//! * **Probing** (Fig. 3a) "implements the re-mapping of lines of Bank i
//!   to Bank i+1 (modulo M)" — in hardware a `p`-bit counter incremented
//!   by the `update` signal and a `p`-bit adder. Proven in ref. \[7\] to
//!   distribute idleness *perfectly* uniformly once at least `M` updates
//!   have been executed.
//! * **Scrambling** (Fig. 3b) XORs the bank address with an LFSR value
//!   drawn on each `update`. Approaches uniformity asymptotically; the
//!   deviation shrinks as `1/√N` in the number of updates (§IV-B2).
//!
//! Beyond the paper's pair, this module ships two more bijections that
//! prove the policy axis is open — [`GrayRotation`] (Gray-coded
//! rotation) and [`RotateXor`] (a rotation/LFSR hybrid) — and the
//! [`registry`](crate::registry) makes the set extensible from user
//! code without touching this crate.

use crate::error::CoreError;
use crate::lfsr::Lfsr;
use cache_sim::BankMapping;

/// Which indexing function a cache uses — the paper's three, as a
/// closed enum.
///
/// This type is kept as a thin compatibility shim over the open
/// [`PolicyRegistry`](crate::registry::PolicyRegistry): [`PolicyKind::build`]
/// now delegates to the registry, and [`PolicyKind::key`] gives the
/// registry name. New code (and anything that wants the two additional
/// built-ins, [`GrayRotation`] and [`RotateXor`], or custom policies)
/// should use the registry directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No re-indexing: a conventional power-managed partitioned cache
    /// (the paper's `LT0` baseline).
    Identity,
    /// Modular-increment re-indexing (optimal).
    Probing,
    /// LFSR-XOR re-indexing (asymptotically optimal).
    Scrambling,
}

impl PolicyKind {
    /// Instantiates the policy as a [`BankMapping`] for `banks` banks.
    ///
    /// `seed` only affects `Scrambling` (the LFSR seed). This is the
    /// legacy 16-bit-seed entry point; new code should resolve policies
    /// by name through [`PolicyRegistry`](crate::registry::PolicyRegistry),
    /// which takes a full `u64` seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `banks` is not a power
    /// of two of at least 2.
    #[deprecated(
        since = "0.2.0",
        note = "use PolicyRegistry::build(kind.key(), banks, seed) — the registry is open and takes u64 seeds"
    )]
    pub fn build(self, banks: u32, seed: u16) -> Result<Box<dyn BankMapping>, CoreError> {
        crate::registry::PolicyRegistry::global().build(self.key(), banks, seed as u64)
    }

    /// The registry key this legacy variant maps to.
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::Identity => "identity",
            PolicyKind::Probing => "probing",
            PolicyKind::Scrambling => "scrambling",
        }
    }

    /// The three policies, in the paper's presentation order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Identity,
        PolicyKind::Probing,
        PolicyKind::Scrambling,
    ];

    /// Display name (same as the registry key).
    pub fn name(self) -> &'static str {
        self.key()
    }
}

fn validate_banks(banks: u32) -> Result<(), CoreError> {
    if banks < 2 || !banks.is_power_of_two() {
        return Err(CoreError::InvalidParameter {
            name: "banks",
            value: banks as f64,
            expected: "a power of two of at least 2",
        });
    }
    Ok(())
}

/// The Probing policy: `bank' = (bank + c) mod M`, `c` incremented on each
/// update (paper Fig. 3a).
///
/// # Examples
///
/// ```
/// use aging_cache::Probing;
/// use cache_sim::BankMapping;
///
/// // The paper's Example 1: N = 256 lines, M = 4; address 70 lives in
/// // bank 1 and walks through banks 2, 3, 0 on successive updates.
/// let mut f = Probing::new(4)?;
/// assert_eq!(f.map_bank(1, 4), 1);
/// f.update();
/// assert_eq!(f.map_bank(1, 4), 2);
/// f.update();
/// assert_eq!(f.map_bank(1, 4), 3);
/// f.update();
/// assert_eq!(f.map_bank(1, 4), 0);
/// # Ok::<(), aging_cache::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Probing {
    banks: u32,
    offset: u32,
}

impl Probing {
    /// Creates the policy with offset 0 (identity at time zero).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a bad bank count.
    pub fn new(banks: u32) -> Result<Self, CoreError> {
        validate_banks(banks)?;
        Ok(Self { banks, offset: 0 })
    }

    /// The current offset `c`.
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

impl BankMapping for Probing {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        debug_assert_eq!(banks, self.banks);
        // Restricting the adder to p bits realizes the modulo for free
        // (paper: "Modulo M operations are automatically achieved by
        // restricting all signals to p bits").
        (logical + self.offset) & (self.banks - 1)
    }

    fn update(&mut self) {
        self.offset = (self.offset + 1) & (self.banks - 1);
    }

    fn name(&self) -> &str {
        "probing"
    }
}

/// The Scrambling policy: `bank' = bank XOR r`, `r` drawn from an LFSR on
/// each update (paper Fig. 3b).
///
/// The XOR mask starts at 0 (identity at time zero) and becomes the low
/// `p` bits of the LFSR state after each update. The LFSR is wider than
/// `p` by default (16 bits): a maximal-length register never outputs the
/// all-zero *state*, so a `p`-bit register would never produce the
/// identity mask and every bank would systematically skip hosting its own
/// traffic — a measurable uniformity bias (about 14 % of the lifetime
/// gain at M = 4, see the `narrow_lfsr` ablation bench). Taking the low
/// bits of a wide register makes all `M` masks equally likely, which is
/// what lets Scrambling match Probing "de facto" as the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scrambling {
    banks: u32,
    lfsr: Lfsr,
    mask: u32,
}

impl Scrambling {
    /// Default LFSR register width.
    pub const DEFAULT_LFSR_WIDTH: u32 = 16;

    /// Creates the policy with an identity initial mask, the given LFSR
    /// seed and the default 16-bit register.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a bad bank count.
    pub fn new(banks: u32, seed: u16) -> Result<Self, CoreError> {
        Self::with_lfsr_width(banks, Self::DEFAULT_LFSR_WIDTH, seed)
    }

    /// Creates the policy with an explicit LFSR register width (must be
    /// at least `p = log2(banks)`). Width exactly `p` reproduces the
    /// paper's literal Fig. 3b wiring — and its self-exclusion bias.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a bad bank count or a
    /// width below `p` / above 16.
    pub fn with_lfsr_width(banks: u32, width: u32, seed: u16) -> Result<Self, CoreError> {
        validate_banks(banks)?;
        let p = banks.trailing_zeros();
        if width < p {
            return Err(CoreError::InvalidParameter {
                name: "width",
                value: width as f64,
                expected: "an LFSR at least as wide as the bank-select field",
            });
        }
        Ok(Self {
            banks,
            lfsr: Lfsr::new(width, seed)?,
            mask: 0,
        })
    }

    /// The current XOR mask `r`.
    pub fn mask(&self) -> u32 {
        self.mask
    }
}

impl BankMapping for Scrambling {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        debug_assert_eq!(banks, self.banks);
        logical ^ self.mask
    }

    fn update(&mut self) {
        self.mask = self.lfsr.next_value() as u32 & (self.banks - 1);
    }

    fn name(&self) -> &str {
        "scrambling"
    }
}

/// Gray-coded rotation: `bank' = gray((bank + c) mod M)` with the
/// counter `c` incremented on each update, where
/// `gray(x) = x ^ (x >> 1)`.
///
/// Both stages are bijections on the `p` bank-select bits, so the
/// composition is too. Compared to plain Probing, consecutive updates
/// move each logical bank's *physical* location by a single bit flip in
/// the decoder's one-hot stage — the same single-transition property
/// that motivates Gray counters in low-power address decoders (and the
/// rejuvenation-oriented decoder policies of Gürsoy et al.). Over any
/// window of `M` consecutive updates each logical bank still visits
/// every physical bank exactly once, so the idleness-uniformization
/// argument of ref. \[7\] carries over unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GrayRotation {
    banks: u32,
    offset: u32,
}

impl GrayRotation {
    /// Creates the policy with offset 0.
    ///
    /// Note that unlike [`Probing`], the mapping at time zero is the
    /// Gray code itself, not the identity — the policy is a different
    /// fixed bijection between updates, which leaves hit/miss behaviour
    /// untouched (the simulator only cares that it *is* a bijection).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a bad bank count.
    pub fn new(banks: u32) -> Result<Self, CoreError> {
        validate_banks(banks)?;
        Ok(Self { banks, offset: 0 })
    }

    /// The current rotation offset `c`.
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

impl BankMapping for GrayRotation {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        debug_assert_eq!(banks, self.banks);
        let rotated = (logical + self.offset) & (self.banks - 1);
        rotated ^ (rotated >> 1)
    }

    fn update(&mut self) {
        self.offset = (self.offset + 1) & (self.banks - 1);
    }

    fn name(&self) -> &str {
        "gray"
    }
}

/// Rotate-XOR hybrid: `bank' = ((bank + c) mod M) ^ r`, combining
/// Probing's counter with Scrambling's LFSR mask.
///
/// The rotation guarantees the perfect `M`-update fairness window of
/// Probing even when the LFSR stream is unlucky, while the XOR mask
/// decorrelates the *sequence* in which physical banks are visited —
/// useful when the workload's idleness itself drifts with a period close
/// to `M` updates, which makes plain rotation alias. Both stages are
/// bijections on the `p` bank-select bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RotateXor {
    banks: u32,
    offset: u32,
    lfsr: Lfsr,
    mask: u32,
}

impl RotateXor {
    /// Creates the hybrid with offset 0 and an identity initial mask
    /// (so, like [`Probing`], it is the identity at time zero). The LFSR
    /// uses the same wide default register as [`Scrambling`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a bad bank count.
    pub fn new(banks: u32, seed: u16) -> Result<Self, CoreError> {
        validate_banks(banks)?;
        Ok(Self {
            banks,
            offset: 0,
            lfsr: Lfsr::new(Scrambling::DEFAULT_LFSR_WIDTH, seed)?,
            mask: 0,
        })
    }

    /// The current rotation offset `c`.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The current XOR mask `r`.
    pub fn mask(&self) -> u32 {
        self.mask
    }
}

impl BankMapping for RotateXor {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        debug_assert_eq!(banks, self.banks);
        (((logical + self.offset) & (self.banks - 1)) ^ self.mask) & (self.banks - 1)
    }

    fn update(&mut self) {
        self.offset = (self.offset + 1) & (self.banks - 1);
        self.mask = self.lfsr.next_value() as u32 & (self.banks - 1);
    }

    fn name(&self) -> &str {
        "rotate-xor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::mapping::is_bijective;

    #[test]
    fn probing_is_always_bijective() {
        let mut p = Probing::new(8).unwrap();
        for _ in 0..20 {
            assert!(is_bijective(&p, 8));
            p.update();
        }
    }

    #[test]
    fn scrambling_is_always_bijective() {
        let mut s = Scrambling::new(8, 5).unwrap();
        for _ in 0..20 {
            assert!(is_bijective(&s, 8));
            s.update();
        }
    }

    #[test]
    fn probing_visits_every_bank_uniformly() {
        // Ref [7]: perfectly uniform after >= M updates.
        let m = 8u32;
        let mut p = Probing::new(m).unwrap();
        let mut visits = vec![vec![0u32; m as usize]; m as usize];
        for _ in 0..m {
            for l in 0..m {
                visits[l as usize][p.map_bank(l, m) as usize] += 1;
            }
            p.update();
        }
        for (l, row) in visits.iter().enumerate() {
            assert!(
                row.iter().all(|&v| v == 1),
                "logical bank {l} should visit each physical bank exactly once: {row:?}"
            );
        }
    }

    #[test]
    fn scrambling_wide_lfsr_visits_all_banks_nearly_uniformly() {
        let m = 8u32;
        let mut s = Scrambling::new(m, 3).unwrap();
        let n = 8000usize;
        let mut visited = vec![0u32; m as usize];
        for _ in 0..n {
            s.update();
            visited[s.map_bank(2, m) as usize] += 1;
        }
        let ideal = n as f64 / m as f64;
        for (b, &v) in visited.iter().enumerate() {
            let dev = (v as f64 - ideal).abs() / ideal;
            assert!(dev < 0.10, "bank {b} visited {v}, ideal {ideal}");
        }
    }

    #[test]
    fn scrambling_narrow_lfsr_skips_self() {
        // The paper's literal p-bit register (Fig. 3b): the mask is never
        // zero, so a bank never hosts its own traffic — the uniformity
        // bias documented in EXPERIMENTS.md.
        let m = 8u32;
        let mut s = Scrambling::with_lfsr_width(m, 3, 5).unwrap();
        let period = (m - 1) as usize;
        let mut visited = vec![0u32; m as usize];
        for _ in 0..period {
            s.update();
            visited[s.map_bank(2, m) as usize] += 1;
        }
        assert_eq!(visited[2], 0, "a non-zero mask never maps a bank to itself");
        for (b, &v) in visited.iter().enumerate() {
            if b != 2 {
                assert_eq!(v, 1, "bank 2 should visit bank {b} exactly once");
            }
        }
    }

    #[test]
    fn scrambling_rejects_too_narrow_register() {
        assert!(Scrambling::with_lfsr_width(8, 2, 1).is_err());
        assert!(Scrambling::with_lfsr_width(8, 3, 1).is_ok());
    }

    #[test]
    fn identity_at_time_zero_for_both() {
        let p = Probing::new(4).unwrap();
        let s = Scrambling::new(4, 9).unwrap();
        for l in 0..4 {
            assert_eq!(p.map_bank(l, 4), l);
            assert_eq!(s.map_bank(l, 4), l);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn policy_kind_builds_all() {
        for kind in PolicyKind::ALL {
            let m = kind.build(4, 1).unwrap();
            assert!(is_bijective(m.as_ref(), 4), "{} not bijective", kind.name());
        }
        assert!(PolicyKind::Probing.build(3, 1).is_err());
        assert!(PolicyKind::Scrambling.build(1, 1).is_err());
    }

    #[test]
    fn gray_rotation_is_bijective_and_fair() {
        let m = 8u32;
        let mut g = GrayRotation::new(m).unwrap();
        let mut visits = vec![vec![0u32; m as usize]; m as usize];
        for _ in 0..m {
            assert!(is_bijective(&g, m));
            for l in 0..m {
                visits[l as usize][g.map_bank(l, m) as usize] += 1;
            }
            g.update();
        }
        for (l, row) in visits.iter().enumerate() {
            assert!(
                row.iter().all(|&v| v == 1),
                "logical bank {l} must visit each physical bank once per window: {row:?}"
            );
        }
    }

    #[test]
    fn gray_rotation_single_bit_transitions() {
        // The Gray property: one update moves any logical bank's
        // physical location by exactly one bit flip.
        let m = 8u32;
        let mut g = GrayRotation::new(m).unwrap();
        for _ in 0..2 * m {
            let before: Vec<u32> = (0..m).map(|l| g.map_bank(l, m)).collect();
            g.update();
            for (l, &b) in before.iter().enumerate() {
                let after = g.map_bank(l as u32, m);
                assert_eq!(
                    (b ^ after).count_ones(),
                    1,
                    "bank {l}: {b} -> {after} is not a single-bit move"
                );
            }
        }
    }

    #[test]
    fn rotate_xor_is_bijective_under_updates() {
        let mut h = RotateXor::new(8, 0xbeef).unwrap();
        for _ in 0..50 {
            assert!(is_bijective(&h, 8));
            h.update();
        }
    }

    #[test]
    fn rotate_xor_identity_at_time_zero() {
        let h = RotateXor::new(4, 77).unwrap();
        for l in 0..4 {
            assert_eq!(h.map_bank(l, 4), l);
        }
    }

    #[test]
    fn new_policies_reject_bad_bank_counts() {
        assert!(GrayRotation::new(3).is_err());
        assert!(GrayRotation::new(1).is_err());
        assert!(RotateXor::new(6, 1).is_err());
    }

    #[test]
    fn probing_matches_paper_example_walk() {
        // Example 1: address 70 -> bank 1; after updates: 2, 3, 0.
        let mut f = Probing::new(4).unwrap();
        let walk: Vec<u32> = (0..4)
            .map(|_| {
                let b = f.map_bank(1, 4);
                f.update();
                b
            })
            .collect();
        assert_eq!(walk, vec![1, 2, 3, 0]);
    }
}
