//! The serving layer: a long-lived HTTP study server over the warm
//! result cache, with request coalescing.
//!
//! A CLI process per request cannot serve heavy traffic: every
//! invocation re-calibrates models, re-opens the journal, and rebuilds
//! the session memo, only to answer a query the warm cache could have
//! served in microseconds. [`StudyServer`] keeps **one**
//! [`StudySession`] (and therefore one calibration memo, one
//! simulation memo, one [`ResultCache`] handle) alive behind a
//! hand-rolled, dependency-free HTTP/1.1 listener — std
//! [`TcpListener`] plus a small worker pool reusing the executor's
//! self-scheduling shape (idle workers claim the next queued
//! connection; no static partition).
//!
//! Endpoints ([`ENDPOINTS`] is the machine-readable table; `GET /`
//! prints it):
//!
//! * `GET /render` — render a **warm** study through
//!   [`analysis::summary_table`] and [`render::table`]. Query
//!   parameters mirror the `study` CLI flags without the `--` prefix
//!   (`cache-kb=8,16,32&policies=probing&format=md&group-by=policy&
//!   baseline=identity`…); the response `Content-Type` follows the
//!   format (text/md/csv/json) and the body is byte-identical to the
//!   CLI's stdout for the same flags. Cold cells are never computed on
//!   a GET: a partially warm grid answers `409 Conflict` with a
//!   coverage report and a hint to `POST /run` first.
//! * `GET /query` — reduce one metric over a warm study
//!   (`metric=lt_years&reduce=geomean&group-by=policy`) via
//!   [`analysis::Query`]; same warm-only rule.
//! * `POST /run` — expand the spec, compute what is missing (on the
//!   session's executor: sequential/threaded/process all work, they
//!   share the journal), and answer a JSON coverage summary plus the
//!   `/render` location for the finished study.
//! * `POST /compare` — diff a report JSON body cell-by-cell against
//!   the journal ([`ReportDiff::against_cache`]): `200` when the sides
//!   agree within `tol`, `409` with the full diff otherwise.
//! * `GET /stats` — server and session counters as JSON.
//! * `POST /shutdown` — graceful drain, gated by a token (below).
//!
//! **Coalescing.** Concurrent identical work must cost one simulation,
//! not N. The session's cache is wrapped in a `CoalesceCache`: an
//! in-flight claim table keyed by the content-addressed
//! [`Fingerprint`]. The first worker to miss a cell *claims* it and
//! computes; every other worker that misses the same cell blocks until
//! the claimant's `store` lands, then replays the hit. Claims are
//! per-cell, so two overlapping-but-different grids still share the
//! cells they have in common. A claimant that fails releases all of
//! its claims (and a waiter that outlives the backstop steals the
//! claim), so an error never wedges the table — at worst a rare
//! duplicate computation, never a wrong or missing answer.
//!
//! **Determinism.** The server adds no nondeterminism: responses are
//! rendered by the same pure functions the CLI uses, cache replay is
//! byte-identical by construction (pinned by `tests/serve_http.rs`),
//! and this module never reads the wall clock.
//!
//! **Graceful shutdown.** `POST /shutdown?token=…` (enabled by
//! [`ServeOptions::shutdown_token`]) flips the shutdown flag: the
//! accept loop stops, queued connections drain, in-flight requests
//! finish, and [`StudyServer::serve`] flushes the journal before
//! returning — the daemon never leaves a torn tail for the journal's
//! truncation repair to clean up.

use std::collections::{BTreeSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

use crate::analysis::{self, Axis, Query, Reduce, ReportDiff};
use crate::error::CoreError;
use crate::json::Json;
use crate::render::{self, Format};
use crate::rescache::{CachedMeasurement, Fingerprint, ResultCache};
use crate::session::StudySession;
use crate::study::{ScenarioGrid, StudyReport, StudySpec};

/// The report name served specs run under — the same literal the
/// `study` CLI has always used, so `/render?format=json` bodies are
/// byte-identical to `study --json` stdout (the name is embedded in
/// the canonical report JSON).
pub const REPORT_NAME: &str = "cli study";

/// Largest accepted request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Largest accepted request body (a `/compare` report JSON), bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL_MS: u64 = 5;
/// How long an idle worker waits on the queue before re-checking the
/// shutdown flag.
const WORKER_POLL_MS: u64 = 50;

/// One row of the endpoint table: path, method, one-line help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Request path (exact match; no trailing-slash aliasing).
    pub path: &'static str,
    /// The one method the path answers (anything else is a 405).
    pub method: &'static str,
    /// One-line description, printed by `GET /`.
    pub help: &'static str,
}

const fn endpoint(path: &'static str, method: &'static str, help: &'static str) -> Endpoint {
    Endpoint { path, method, help }
}

/// Every route the server answers — the grammar `GET /` prints and the
/// dispatch table the handler walks. Paths here are checked against
/// DESIGN.md by the `registry-doc-coherence` lint.
pub const ENDPOINTS: [Endpoint; 7] = [
    endpoint("/", "GET", "this endpoint table"),
    endpoint("/stats", "GET", "server + session counters as JSON"),
    endpoint(
        "/render",
        "GET",
        "render a warm study (CLI spec params + format/group-by/baseline); 409 when cells are cold",
    ),
    endpoint(
        "/query",
        "GET",
        "reduce one metric over a warm study (metric/reduce/group-by params)",
    ),
    endpoint(
        "/run",
        "POST",
        "compute a spec's missing cells (coalesced) and report coverage",
    ),
    endpoint(
        "/compare",
        "POST",
        "diff a report JSON body against the journal (tol param); 409 on divergence",
    ),
    endpoint(
        "/shutdown",
        "POST",
        "drain in-flight requests, flush the journal, stop (token param; off unless configured)",
    ),
];

/// Recovers the guarded state from a poisoned lock: poisoning only
/// means another worker panicked while holding it, and both guarded
/// structures here (the connection queue, the claim table) stay valid
/// at every step, so recovering beats cascading the panic into every
/// later request.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// What [`Condvar::wait_timeout`] yields: the re-acquired guard plus
/// the timed-out flag.
type TimedWait<'a, T> = (MutexGuard<'a, T>, WaitTimeoutResult);

/// [`relock`] for [`Condvar::wait_timeout`] results.
fn relock_wait<'a, T>(
    r: Result<TimedWait<'a, T>, PoisonError<TimedWait<'a, T>>>,
) -> TimedWait<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The in-flight claim table behind [`CoalesceCache`]: which
/// fingerprints some worker is currently computing.
#[derive(Debug, Default)]
struct Inflight {
    claims: Mutex<BTreeSet<String>>,
    released: Condvar,
    /// How many lookups blocked behind another worker's claim —
    /// the server-side proof that coalescing happened.
    waits: AtomicUsize,
}

impl Inflight {
    /// Claims `key` for the calling worker, or blocks until the
    /// current claimant releases it. Returns `true` when the caller
    /// now owns the claim (and must compute + `store`), `false` when
    /// it waited a release out (and should re-check the cache).
    ///
    /// A wait that exhausts `backstop` without a release *steals* the
    /// claim: the claimant is presumed failed, and a rare duplicate
    /// computation beats a wedged request.
    fn claim_or_wait(&self, key: &str, backstop: Duration) -> bool {
        let mut claims = relock(self.claims.lock());
        if claims.insert(key.to_string()) {
            return true;
        }
        self.waits.fetch_add(1, Ordering::Relaxed);
        loop {
            let (guard, outcome) = relock_wait(self.released.wait_timeout(claims, backstop));
            claims = guard;
            if !claims.contains(key) {
                return false;
            }
            if outcome.timed_out() {
                return true;
            }
        }
    }

    /// Releases one claim (no-op when absent) and wakes every waiter.
    fn release(&self, key: &str) {
        if relock(self.claims.lock()).remove(key) {
            self.released.notify_all();
        }
    }

    /// Releases every claim — the error path: a failed grid run cannot
    /// name which of its claims it got around to storing.
    fn release_all(&self) {
        relock(self.claims.lock()).clear();
        self.released.notify_all();
    }

    fn waits(&self) -> usize {
        self.waits.load(Ordering::Relaxed)
    }
}

/// A [`ResultCache`] decorator that coalesces concurrent identical
/// work: the first worker to miss a fingerprint claims it and
/// computes; later workers block in `lookup` until the claimant's
/// `store` lands, then replay the hit. See the module docs for the
/// failure-path semantics.
struct CoalesceCache {
    inner: Arc<dyn ResultCache>,
    inflight: Arc<Inflight>,
    backstop: Duration,
}

impl ResultCache for CoalesceCache {
    fn lookup(&self, fingerprint: &Fingerprint) -> Result<Option<CachedMeasurement>, CoreError> {
        loop {
            if let Some(hit) = self.inner.lookup(fingerprint)? {
                return Ok(Some(hit));
            }
            if self
                .inflight
                .claim_or_wait(fingerprint.canonical(), self.backstop)
            {
                // Our claim: report the miss so the session computes
                // the cell; `store` below releases it.
                return Ok(None);
            }
            // A claimant released; its measurement is in the inner
            // cache now — replay it.
        }
    }

    fn store(
        &self,
        fingerprint: &Fingerprint,
        measurement: &CachedMeasurement,
    ) -> Result<(), CoreError> {
        // Store before releasing, so a woken waiter's re-lookup hits.
        let stored = self.inner.store(fingerprint, measurement);
        self.inflight.release(fingerprint.canonical());
        stored
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn refresh(&self) -> Result<usize, CoreError> {
        self.inner.refresh()
    }
}

/// How to run the server: bind address, pool size, admin gating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bind address; port `0` asks the OS for a free one (read it back
    /// via [`StudyServer::addr`]). Default `127.0.0.1:0`.
    pub addr: String,
    /// Connection-worker pool size. Default 4. (Grid execution inside
    /// a request has its own executor pool; this only bounds how many
    /// HTTP requests are in flight.)
    pub threads: usize,
    /// Enables `POST /shutdown?token=…` when set; with `None` the
    /// endpoint always answers 403. There is no default token — an
    /// unguessable admin surface must be opted into.
    pub shutdown_token: Option<String>,
    /// Coalescing backstop: how long a waiter blocks behind another
    /// worker's claim before presuming the claimant failed and
    /// stealing the cell. Default 30 000 ms.
    pub coalesce_wait_ms: u64,
    /// Per-read socket patience; a client that stalls mid-request this
    /// long is disconnected. Default 5 000 ms.
    pub read_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            shutdown_token: None,
            coalesce_wait_ms: 30_000,
            read_timeout_ms: 5_000,
        }
    }
}

/// Per-request logging hook — the server core cannot read the wall
/// clock (determinism lint), so timing belongs to the caller's
/// implementation if it wants any.
pub trait ServeLog: Send + Sync {
    /// One finished request: method, decoded path, response status.
    fn request(&self, method: &str, path: &str, status: u16);
}

/// A server-side counter snapshot (see `GET /stats` for the JSON
/// shape, which nests the session's counters too).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (including error responses).
    pub requests: usize,
    /// Responses with status ≥ 400.
    pub errors: usize,
    /// Cache lookups that blocked behind another worker's in-flight
    /// claim — each one is a simulation that coalescing avoided
    /// (or, rarely, deferred to a steal).
    pub coalesced_waits: usize,
}

/// One parsed HTTP request.
struct Request {
    method: String,
    path: String,
    /// Decoded `key=value` pairs, in query-string order.
    query: Vec<(String, String)>,
    /// The raw (undecoded) query string, echoed into `/run` locations.
    raw_query: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// One response about to be written.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

const CT_TEXT: &str = "text/plain; charset=utf-8";
const CT_JSON: &str = "application/json";

fn content_type_for(format: Format) -> &'static str {
    match format {
        Format::Text => CT_TEXT,
        Format::Markdown => "text/markdown; charset=utf-8",
        Format::Csv => "text/csv; charset=utf-8",
        Format::Json => CT_JSON,
    }
}

fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    let mut body = message.into();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    Response {
        status,
        content_type: CT_TEXT,
        body,
    }
}

/// Maps a [`CoreError`] onto a status: infrastructure failures are the
/// server's fault (500), everything else is a bad request (unknown
/// keys, invalid parameters, shape errors — 400).
fn status_for(e: &CoreError) -> u16 {
    match e {
        CoreError::Cache { .. }
        | CoreError::ScenarioPanicked { .. }
        | CoreError::WorkerPanicked => 500,
        _ => 400,
    }
}

fn core_error_response(e: &CoreError) -> Response {
    error_response(status_for(e), e.to_string())
}

/// Percent-decodes one URL component (`%41` → `A`, `+` → space).
/// Malformed escapes pass through literally — a decode must never
/// fail, and the downstream parsers reject garbage with typed errors.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'+' {
            out.push(b' ');
            i += 1;
            continue;
        }
        if b == b'%' {
            let hex = |offset: usize| {
                bytes
                    .get(i + offset)
                    .and_then(|c| (*c as char).to_digit(16))
            };
            if let (Some(hi), Some(lo)) = (hex(1), hex(2)) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded pairs (`a=1&b` →
/// `[("a","1"),("b","")]`).
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(key), percent_decode(value))
        })
        .collect()
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request off the stream. `Ok(None)` is a clean close (EOF
/// or idle timeout between keep-alive requests); `Err` is a malformed
/// or truncated request the caller answers with a 400 before closing.
fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err("connection closed mid-request".to_string());
            }
            Ok(n) => {
                let read = chunk.get(..n).unwrap_or_default();
                buf.extend_from_slice(read);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err("timed out mid-request".to_string());
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    };

    let head = String::from_utf8_lossy(buf.get(..head_len).unwrap_or_default()).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| format!("request line `{request_line}` lacks a target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| format!("bad content-length `{value}`"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds the limit"));
    }

    let mut body: Vec<u8> = buf.get(head_len + 4..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".to_string()),
            Ok(n) => {
                let read = chunk.get(..n).unwrap_or_default();
                body.extend_from_slice(read);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err("timed out mid-body".to_string());
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
    body.truncate(content_length);

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    Ok(Some(Request {
        method,
        path: percent_decode(path_raw),
        query: parse_query(query_raw),
        raw_query: query_raw.to_string(),
        body,
        keep_alive,
    }))
}

fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    // Head and body go out in ONE write: a split write makes the body
    // segment wait out the peer's delayed ACK under Nagle (~40 ms per
    // response on loopback), two orders of magnitude over the warm
    // render itself.
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason_for(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    out.extend_from_slice(response.body.as_bytes());
    stream.write_all(&out).is_ok() && stream.flush().is_ok()
}

fn parse_one<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, CoreError> {
    value.trim().parse::<T>().map_err(|_| CoreError::Report {
        message: format!("serve: invalid value `{value}` for `{key}`"),
    })
}

fn parse_csv<T: std::str::FromStr>(value: &str, key: &str) -> Result<Vec<T>, CoreError> {
    value.split(',').map(|v| parse_one(v, key)).collect()
}

/// A request's study parameters: the [`StudySpec`] assembled from the
/// CLI-mirroring query params, plus the presentation/analysis knobs.
#[derive(Debug)]
struct Params {
    spec: StudySpec,
    format: Format,
    group_by: Vec<Axis>,
    baseline: Option<String>,
    metric: String,
    reduce: Reduce,
    tol: f64,
}

impl Params {
    /// Parses decoded query pairs. Spec params mirror the `study` CLI
    /// flags without the `--` prefix (underscores also accepted);
    /// unknown keys are a hard 400 — a typo must not silently run the
    /// wrong sweep.
    fn from_query(pairs: &[(String, String)]) -> Result<Params, CoreError> {
        let mut spec = StudySpec::new(REPORT_NAME);
        let mut workloads: Option<Vec<String>> = None;
        let mut traces: Vec<String> = Vec::new();
        let mut models: Vec<String> = Vec::new();
        let mut params = Params {
            spec: StudySpec::new(REPORT_NAME),
            format: Format::Text,
            group_by: Vec::new(),
            baseline: None,
            metric: "lt_years".to_string(),
            reduce: Reduce::Mean,
            tol: 0.0,
        };
        for (key, value) in pairs {
            let k = key.replace('_', "-");
            spec = match k.as_str() {
                "cache-kb" => spec.cache_kb(parse_csv::<u64>(value, &k)?),
                "line-bytes" => spec.line_bytes(parse_csv::<u32>(value, &k)?),
                "banks" => spec.banks(parse_csv::<u32>(value, &k)?),
                "ways" => spec.ways(parse_csv::<u32>(value, &k)?),
                "replacement" => spec.replacement(value.split(',').map(str::trim)),
                "l2-kb" => spec.l2_cache_kb(parse_csv::<u64>(value, &k)?),
                "l2-ways" => spec.l2_ways(parse_csv::<u32>(value, &k)?),
                "update-days" => spec.update_days(parse_csv::<f64>(value, &k)?),
                "policies" => spec.policies(value.split(',').map(str::trim)),
                "workloads" if value == "all" => {
                    // The explicit full suite, in suite order, so a
                    // `trace` param appends instead of replacing —
                    // exactly the CLI's `--workloads all` semantics.
                    workloads = Some(
                        trace_synth::suite::mediabench()
                            .iter()
                            .map(|p| p.name().to_string())
                            .collect(),
                    );
                    spec
                }
                "workloads" => {
                    workloads = Some(value.split(',').map(|s| s.trim().to_string()).collect());
                    spec
                }
                "trace" => {
                    traces.push(value.to_string());
                    spec
                }
                "profile" => {
                    traces.push(format!("profile:{}", value.trim()));
                    spec
                }
                "model" => {
                    models.push(value.trim().to_string());
                    spec
                }
                "temp" => spec.temps_c(parse_csv::<f64>(value, &k)?),
                "vlow" => spec.vdd_low(parse_csv::<f64>(value, &k)?),
                "fail" => spec.failure_pct(parse_csv::<f64>(value, &k)?),
                "trace-cycles" => spec.trace_cycles(parse_one::<u64>(value, &k)?),
                "seed" => spec.base_seed(parse_one::<u64>(value, &k)?),
                "threads" => spec.threads(parse_one::<usize>(value, &k)?),
                "format" => {
                    params.format = Format::parse(value)?;
                    spec
                }
                "group-by" => {
                    params.group_by = value
                        .split(',')
                        .map(Axis::parse)
                        .collect::<Result<Vec<_>, _>>()?;
                    spec
                }
                "baseline" => {
                    params.baseline = Some(value.trim().to_string());
                    spec
                }
                "metric" => {
                    params.metric = value.trim().to_string();
                    spec
                }
                "reduce" => {
                    params.reduce = Reduce::parse(value)?;
                    spec
                }
                "tol" => {
                    let tol = parse_one::<f64>(value, &k)?;
                    if tol < 0.0 || tol.is_nan() {
                        return Err(CoreError::Report {
                            message: format!(
                                "serve: `tol` must be a non-negative absolute tolerance, got {tol}"
                            ),
                        });
                    }
                    params.tol = tol;
                    spec
                }
                // The shutdown gate, consumed by its handler.
                "token" => spec,
                _ => {
                    return Err(CoreError::Report {
                        message: format!("serve: unknown query parameter `{key}`"),
                    })
                }
            };
        }
        if !models.is_empty() {
            spec = spec.models(models);
        }
        // `trace`/`profile` append to the `workloads` selection, or
        // replace the default suite when alone — the CLI's merge rule.
        let keys = match (workloads, traces.is_empty()) {
            (Some(mut named), _) => {
                named.extend(traces);
                Some(named)
            }
            (None, false) => Some(traces),
            (None, true) => None,
        };
        if let Some(keys) = keys {
            spec = spec.workload_names(&keys)?;
        }
        params.spec = spec;
        Ok(params)
    }
}

/// The study server: one warm [`StudySession`] behind an HTTP/1.1
/// listener. Construct with [`StudyServer::bind`], read the bound
/// address with [`StudyServer::addr`], then block in
/// [`StudyServer::serve`].
pub struct StudyServer {
    listener: TcpListener,
    local: SocketAddr,
    session: StudySession,
    /// The undecorated cache handle: coverage probes and `/compare`
    /// walks go here, NOT through the session's [`CoalesceCache`] —
    /// a read-only walk must never claim cells it has no intention of
    /// computing.
    inner: Arc<dyn ResultCache>,
    inflight: Arc<Inflight>,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
    requests: AtomicUsize,
    errors: AtomicUsize,
    log: Option<Box<dyn ServeLog>>,
}

impl StudyServer {
    /// Binds a server over `cache` with a default session (global
    /// registries, threaded executor).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] when the address cannot be bound.
    pub fn bind(
        cache: impl ResultCache + 'static,
        options: ServeOptions,
    ) -> Result<StudyServer, CoreError> {
        Self::bind_with(cache, options, |session| session)
    }

    /// [`StudyServer::bind`] with a session-configuration hook: the
    /// CLI uses it to install executor options and observers. The
    /// coalescing cache is attached *after* the hook, so it cannot be
    /// accidentally replaced.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] when the address cannot be bound.
    pub fn bind_with(
        cache: impl ResultCache + 'static,
        options: ServeOptions,
        configure: impl FnOnce(StudySession) -> StudySession,
    ) -> Result<StudyServer, CoreError> {
        let inner: Arc<dyn ResultCache> = Arc::new(cache);
        let inflight = Arc::new(Inflight::default());
        let session = configure(StudySession::new()).cache(CoalesceCache {
            inner: Arc::clone(&inner),
            inflight: Arc::clone(&inflight),
            backstop: Duration::from_millis(options.coalesce_wait_ms.max(1)),
        });
        let listener = TcpListener::bind(&options.addr).map_err(|e| CoreError::Report {
            message: format!("serve: cannot bind {}: {e}", options.addr),
        })?;
        let local = listener.local_addr().map_err(|e| CoreError::Report {
            message: format!("serve: bound address unavailable: {e}"),
        })?;
        Ok(StudyServer {
            listener,
            local,
            session,
            inner,
            inflight,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            log: None,
        })
    }

    /// Installs a per-request logging hook.
    #[must_use]
    pub fn with_log(mut self, log: impl ServeLog + 'static) -> Self {
        self.log = Some(Box::new(log));
        self
    }

    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.local
    }

    /// The long-lived session behind every request — its
    /// [`stats`](StudySession::stats) are cumulative across requests,
    /// which is how the coalescing tests count simulations.
    pub fn session(&self) -> &StudySession {
        &self.session
    }

    /// A handle that stops [`StudyServer::serve`] when set — the
    /// programmatic equivalent of `POST /shutdown`.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Server-side counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            coalesced_waits: self.inflight.waits(),
        }
    }

    /// Runs the accept loop until shutdown, then drains: queued
    /// connections are handled, in-flight requests finish, and the
    /// journal absorbs any tail before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] when the listener cannot be
    /// polled, or a cache error from the final journal flush.
    pub fn serve(&self) -> Result<(), CoreError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| CoreError::Report {
                message: format!("serve: cannot poll the listener: {e}"),
            })?;
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let available = Condvar::new();
        let workers = self.options.threads.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Pop-before-shutdown-check ordering is the drain:
                    // accepted connections are answered even when the
                    // flag flipped while they were queued.
                    let stream = {
                        let mut q = relock(queue.lock());
                        loop {
                            if let Some(s) = q.pop_front() {
                                break Some(s);
                            }
                            if self.shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            let (guard, _) = relock_wait(
                                available.wait_timeout(q, Duration::from_millis(WORKER_POLL_MS)),
                            );
                            q = guard;
                        }
                    };
                    match stream {
                        Some(s) => self.handle_connection(s),
                        None => break,
                    }
                });
            }
            while !self.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Workers read blockingly (with a timeout);
                        // the accepted socket inherits nonblocking
                        // from the listener on some platforms.
                        let _ = stream.set_nonblocking(false);
                        // Responses are single-write and latency-bound
                        // on keep-alive connections; never batch them.
                        let _ = stream.set_nodelay(true);
                        relock(queue.lock()).push_back(stream);
                        available.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS)),
                }
            }
            available.notify_all();
        });
        self.inner.refresh().map(|_| ())
    }

    /// One connection: requests are answered in order until the client
    /// closes, asks to close, errors, or the server begins draining.
    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            self.options.read_timeout_ms.max(1),
        )));
        loop {
            match read_request(&mut stream) {
                Ok(Some(request)) => {
                    let response = self.dispatch(&request);
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    if response.status >= 400 {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(log) = &self.log {
                        log.request(&request.method, &request.path, response.status);
                    }
                    let keep = request.keep_alive && !self.shutdown.load(Ordering::SeqCst);
                    if !write_response(&mut stream, &response, keep) || !keep {
                        return;
                    }
                }
                Ok(None) => return,
                Err(message) => {
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    let response = error_response(400, message);
                    if let Some(log) = &self.log {
                        log.request("?", "?", response.status);
                    }
                    let _ = write_response(&mut stream, &response, false);
                    return;
                }
            }
        }
    }

    fn dispatch(&self, request: &Request) -> Response {
        let Some(route) = ENDPOINTS.iter().find(|e| e.path == request.path) else {
            return error_response(
                404,
                format!("no such endpoint `{}`\n\n{}", request.path, help_text()),
            );
        };
        if route.method != request.method {
            return error_response(405, format!("{} answers {} only", route.path, route.method));
        }
        match request.path.as_str() {
            "/" => Response {
                status: 200,
                content_type: CT_TEXT,
                body: help_text(),
            },
            "/stats" => self.stats_response(),
            "/render" => self
                .render_response(request)
                .unwrap_or_else(|e| core_error_response(&e)),
            "/query" => self
                .query_response(request)
                .unwrap_or_else(|e| core_error_response(&e)),
            "/run" => self
                .run_response(request)
                .unwrap_or_else(|e| core_error_response(&e)),
            "/compare" => self
                .compare_response(request)
                .unwrap_or_else(|e| core_error_response(&e)),
            "/shutdown" => self.shutdown_response(request),
            _ => error_response(404, help_text()),
        }
    }

    /// Cache coverage of a grid: `(warm, missing)` cell counts,
    /// probed through the **inner** cache so nothing is claimed. The
    /// journal is refreshed first, so cells another process appended
    /// since the last request count as warm.
    fn coverage(&self, grid: &ScenarioGrid) -> Result<(usize, usize), CoreError> {
        self.inner.refresh()?;
        let mut warm = 0usize;
        for scenario in grid.scenarios() {
            let workload = grid
                .workloads()
                .get(scenario.workload_index)
                .ok_or_else(|| CoreError::Report {
                    message: format!(
                        "scenario {} references workload index {} out of range",
                        scenario.id, scenario.workload_index
                    ),
                })?;
            let fingerprint = Fingerprint::for_scenario(scenario, workload.as_ref());
            if self.inner.lookup(&fingerprint)?.is_some() {
                warm += 1;
            }
        }
        Ok((warm, grid.len() - warm))
    }

    fn cold_response(&self, warm: usize, missing: usize, total: usize) -> Response {
        let body = Json::obj(vec![
            (
                "error",
                Json::Str("cold cells: GETs serve the warm cache only".to_string()),
            ),
            ("warm", Json::Num(warm as f64)),
            ("missing", Json::Num(missing as f64)),
            ("scenarios", Json::Num(total as f64)),
            (
                "hint",
                Json::Str("POST /run with the same parameters, then retry".to_string()),
            ),
        ]);
        Response {
            status: 409,
            content_type: CT_JSON,
            body: format!("{}\n", body.emit()),
        }
    }

    fn render_response(&self, request: &Request) -> Result<Response, CoreError> {
        let params = Params::from_query(&request.query)?;
        let grid = params.spec.expand()?;
        let (warm, missing) = self.coverage(&grid)?;
        if missing > 0 {
            return Ok(self.cold_response(warm, missing, grid.len()));
        }
        let report = self.session.run_grid(&grid)?;
        // The trailing newline matches the CLI's `println!` — served
        // bytes and CLI stdout are identical for every format.
        let body = if params.format == Format::Json {
            format!("{}\n", report.to_json())
        } else {
            let table =
                analysis::summary_table(&report, &params.group_by, params.baseline.as_deref())?;
            format!("{}\n", render::table(&table, params.format))
        };
        Ok(Response {
            status: 200,
            content_type: content_type_for(params.format),
            body,
        })
    }

    fn query_response(&self, request: &Request) -> Result<Response, CoreError> {
        let params = Params::from_query(&request.query)?;
        let grid = params.spec.expand()?;
        let (warm, missing) = self.coverage(&grid)?;
        if missing > 0 {
            return Ok(self.cold_response(warm, missing, grid.len()));
        }
        let report = self.session.run_grid(&grid)?;
        let rows = Query::new(&report)
            .group_by(params.group_by.iter().copied())
            .reduce(&params.metric, params.reduce)?;
        if params.format == Format::Json {
            let body = Json::obj(vec![
                ("metric", Json::Str(params.metric.clone())),
                ("reduce", Json::Str(params.reduce.name().to_string())),
                ("scenarios", Json::Num(report.records().len() as f64)),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|row| {
                                Json::obj(vec![
                                    (
                                        "key",
                                        Json::Arr(
                                            row.key
                                                .iter()
                                                .map(|v| Json::Str(v.to_string()))
                                                .collect(),
                                        ),
                                    ),
                                    ("value", Json::Num(row.value)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            return Ok(Response {
                status: 200,
                content_type: CT_JSON,
                body: format!("{}\n", body.emit()),
            });
        }
        let mut headers: Vec<String> = params
            .group_by
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        headers.push(format!("{}({})", params.reduce.name(), params.metric));
        let mut table = crate::report::Table::new(
            format!(
                "query: {} over {} scenarios",
                params.metric,
                report.records().len()
            ),
            headers,
        );
        for row in &rows {
            let mut cells: Vec<String> = row.key.iter().map(ToString::to_string).collect();
            cells.push(row.value.to_string());
            table.push_row(cells);
        }
        Ok(Response {
            status: 200,
            content_type: content_type_for(params.format),
            body: format!("{}\n", render::table(&table, params.format)),
        })
    }

    fn run_response(&self, request: &Request) -> Result<Response, CoreError> {
        let params = Params::from_query(&request.query)?;
        let grid = params.spec.expand()?;
        let (warm_before, missing_before) = self.coverage(&grid)?;
        let report = match self.session.run_grid(&grid) {
            Ok(report) => report,
            Err(e) => {
                // A failed run cannot say which of its claims it
                // stored; release them all so waiters recover (they
                // re-check the cache and re-claim what is still
                // missing).
                self.inflight.release_all();
                return Err(e);
            }
        };
        let stats = self.session.stats();
        let location = if request.raw_query.is_empty() {
            "/render".to_string()
        } else {
            format!("/render?{}", request.raw_query)
        };
        let body = Json::obj(vec![
            ("scenarios", Json::Num(report.records().len() as f64)),
            ("replayed", Json::Num(warm_before as f64)),
            ("computed", Json::Num(missing_before as f64)),
            ("location", Json::Str(location)),
            ("session", session_stats_json(&stats)),
        ]);
        Ok(Response {
            status: 200,
            content_type: CT_JSON,
            body: format!("{}\n", body.emit()),
        })
    }

    fn compare_response(&self, request: &Request) -> Result<Response, CoreError> {
        let params = Params::from_query(&request.query)?;
        let text = String::from_utf8_lossy(&request.body);
        if text.trim().is_empty() {
            return Ok(error_response(
                400,
                "POST /compare needs a report JSON body",
            ));
        }
        let report = StudyReport::from_json(&text)?;
        self.inner.refresh()?;
        let diff = ReportDiff::against_cache(
            &report,
            self.inner.as_ref(),
            self.session.workload_registry_ref(),
            params.tol,
        )?;
        Ok(Response {
            status: if diff.is_empty() { 200 } else { 409 },
            content_type: CT_TEXT,
            body: diff.to_string(),
        })
    }

    fn shutdown_response(&self, request: &Request) -> Response {
        let Some(expected) = &self.options.shutdown_token else {
            return error_response(
                403,
                "shutdown endpoint disabled (start the server with a shutdown token)",
            );
        };
        let supplied = request
            .query
            .iter()
            .find(|(k, _)| k == "token")
            .map(|(_, v)| v.as_str());
        if supplied != Some(expected.as_str()) {
            return error_response(403, "bad or missing shutdown token");
        }
        self.shutdown.store(true, Ordering::SeqCst);
        Response {
            status: 200,
            content_type: CT_TEXT,
            body: "draining\n".to_string(),
        }
    }

    fn stats_response(&self) -> Response {
        let serve = self.stats();
        let session = self.session.stats();
        let body = Json::obj(vec![
            ("requests", Json::Num(serve.requests as f64)),
            ("errors", Json::Num(serve.errors as f64)),
            ("coalesced_waits", Json::Num(serve.coalesced_waits as f64)),
            ("cache_entries", Json::Num(self.inner.len() as f64)),
            ("session", session_stats_json(&session)),
        ]);
        Response {
            status: 200,
            content_type: CT_JSON,
            body: format!("{}\n", body.emit()),
        }
    }
}

fn session_stats_json(stats: &crate::session::SessionStats) -> Json {
    Json::obj(vec![
        ("scenarios", Json::Num(stats.scenarios as f64)),
        ("simulations", Json::Num(stats.simulations as f64)),
        ("sim_memo_hits", Json::Num(stats.sim_memo_hits as f64)),
        ("evaluations", Json::Num(stats.evaluations as f64)),
        ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ("cache_stores", Json::Num(stats.cache_stores as f64)),
    ])
}

fn help_text() -> String {
    let mut out = String::from(
        "aging-cache study server — spec params mirror the study CLI flags \
         (cache-kb, line-bytes, banks, ways, replacement, l2-kb, l2-ways, \
         update-days, policies, workloads, trace, profile, model, temp, vlow, \
         fail, trace-cycles, seed, threads)\n\n",
    );
    for e in &ENDPOINTS {
        out.push_str(&format!("{:5} {:10} {}\n", e.method, e.path, e.help));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rescache::MemoryCache;

    fn _assert_server_is_sync(server: &StudyServer) -> &dyn Sync {
        server
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Cb+c%20d"), "a,b c d");
        assert_eq!(percent_decode("plain"), "plain");
        // Malformed escapes pass through instead of failing.
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_pairs_decode_in_order() {
        let pairs = parse_query("cache-kb=8%2C16&flag&x=a+b");
        assert_eq!(
            pairs,
            vec![
                ("cache-kb".to_string(), "8,16".to_string()),
                ("flag".to_string(), String::new()),
                ("x".to_string(), "a b".to_string()),
            ]
        );
    }

    #[test]
    fn params_mirror_cli_flags() {
        let pairs = parse_query(
            "cache-kb=8,16&policies=probing,gray&trace_cycles=40000&format=md&group_by=policy",
        );
        let params = Params::from_query(&pairs).unwrap();
        assert_eq!(params.format, Format::Markdown);
        assert_eq!(params.group_by, vec![Axis::Policy]);
        let grid = params.spec.expand().unwrap();
        assert!(!grid.is_empty());
    }

    #[test]
    fn unknown_params_are_rejected() {
        let pairs = parse_query("cach-kb=8");
        let err = Params::from_query(&pairs).unwrap_err();
        assert!(err.to_string().contains("cach-kb"), "{err}");
    }

    #[test]
    fn endpoint_table_is_well_formed() {
        for e in &ENDPOINTS {
            assert!(e.path.starts_with('/'));
            assert!(matches!(e.method, "GET" | "POST"));
            assert!(!e.help.is_empty());
        }
        // Paths are unique — the dispatch table is first-match.
        let paths: BTreeSet<&str> = ENDPOINTS.iter().map(|e| e.path).collect();
        assert_eq!(paths.len(), ENDPOINTS.len());
    }

    #[test]
    fn inflight_claims_block_then_replay() {
        let inflight = Arc::new(Inflight::default());
        assert!(inflight.claim_or_wait("k", Duration::from_millis(10)));
        // Second claimant times out and steals.
        assert!(inflight.claim_or_wait("k", Duration::from_millis(10)));
        assert_eq!(inflight.waits(), 1);
        // After release, a fresh claim succeeds immediately.
        inflight.release("k");
        assert!(inflight.claim_or_wait("k", Duration::from_millis(10)));
        inflight.release_all();
        assert!(inflight.claim_or_wait("k", Duration::from_millis(10)));
    }

    #[test]
    fn coalesce_cache_waits_out_a_store() {
        let inner: Arc<dyn ResultCache> = Arc::new(MemoryCache::new());
        let inflight = Arc::new(Inflight::default());
        let cache = CoalesceCache {
            inner: Arc::clone(&inner),
            inflight: Arc::clone(&inflight),
            backstop: Duration::from_secs(5),
        };
        let fp = Fingerprint::from_canonical("cell");
        // First lookup claims.
        assert!(cache.lookup(&fp).unwrap().is_none());
        let waiter = {
            let inner = Arc::clone(&inner);
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || {
                let cache = CoalesceCache {
                    inner,
                    inflight,
                    backstop: Duration::from_secs(5),
                };
                cache.lookup(&Fingerprint::from_canonical("cell")).unwrap()
            })
        };
        // Give the waiter time to block, then store: it must wake with
        // the hit, not a second miss.
        std::thread::sleep(Duration::from_millis(50));
        let m = CachedMeasurement {
            sim_cycles: 1,
            esav: 0.1,
            miss_rate: 0.0,
            useful_idleness: vec![0.5],
            sleep_fractions: vec![0.5],
            metrics: crate::model::Metrics::new(),
        };
        cache.store(&fp, &m).unwrap();
        let replayed = waiter.join().unwrap();
        assert_eq!(replayed.map(|c| c.esav), Some(0.1));
        assert_eq!(inflight.waits(), 1);
    }

    #[test]
    fn http_request_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /compare?tol=0.5 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
            )
            .unwrap();
            s.flush().unwrap();
            // Keep the socket open until the server side parsed it.
            let mut sink = [0u8; 16];
            let _ = s.read(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compare");
        assert_eq!(req.query, vec![("tol".to_string(), "0.5".to_string())]);
        assert_eq!(req.raw_query, "tol=0.5");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn shutdown_requires_a_configured_token() {
        let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
        let _ = _assert_server_is_sync(&server);
        let req = Request {
            method: "POST".to_string(),
            path: "/shutdown".to_string(),
            query: parse_query("token=secret"),
            raw_query: "token=secret".to_string(),
            body: Vec::new(),
            keep_alive: false,
        };
        assert_eq!(server.dispatch(&req).status, 403);

        let options = ServeOptions {
            shutdown_token: Some("secret".to_string()),
            ..ServeOptions::default()
        };
        let server = StudyServer::bind(MemoryCache::new(), options).unwrap();
        assert_eq!(server.dispatch(&req).status, 200);
        assert!(server.shutdown_handle().load(Ordering::SeqCst));
        let wrong = Request {
            query: parse_query("token=wrong"),
            ..req
        };
        assert_eq!(server.dispatch(&wrong).status, 403);
    }

    #[test]
    fn dispatch_rejects_unknown_paths_and_methods() {
        let server = StudyServer::bind(MemoryCache::new(), ServeOptions::default()).unwrap();
        let get = |path: &str| Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            raw_query: String::new(),
            body: Vec::new(),
            keep_alive: false,
        };
        assert_eq!(server.dispatch(&get("/nope")).status, 404);
        assert_eq!(server.dispatch(&get("/run")).status, 405);
        assert_eq!(server.dispatch(&get("/")).status, 200);
        assert_eq!(server.dispatch(&get("/stats")).status, 200);
        let stats = server.dispatch(&get("/stats"));
        assert_eq!(stats.content_type, CT_JSON);
        assert!(stats.body.contains("\"simulations\""));
    }
}
