//! The fine-grain (line-level) comparison point: what bank granularity
//! gives up.
//!
//! The paper's §II-B/§III position: line-granularity dynamic indexing
//! (ref. \[7\], ISLPED'10) achieves *ideal* idleness distribution — every
//! line can sleep through its own gaps and re-indexing makes all lines age
//! identically — but requires modifying the SRAM internals, which
//! memory-compiler flows forbid. The bank-level architecture of this paper
//! trades some of that idleness for standard blocks. This module measures
//! the trade: it tracks idleness at *line* granularity on the same traces
//! and evaluates the ref.-\[7\]-style ideal lifetime, to compare with the
//! bank-level results.

use crate::aging::AgingAnalysis;
use crate::error::CoreError;
use cache_sim::{BankPower, CacheGeometry, IdleTracker};
use trace_synth::WorkloadProfile;

/// Line-granularity idleness statistics for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FineGrainStats {
    /// Average sleep fraction over all lines.
    pub avg_sleep: f64,
    /// Minimum per-line sleep fraction (the line that would limit an
    /// un-reindexed fine-grain cache).
    pub min_sleep: f64,
    /// Average useful idleness over all lines.
    pub avg_useful_idleness: f64,
    /// Number of lines tracked.
    pub lines: u64,
}

/// Line-level idleness measurement and ideal-lifetime evaluation.
#[derive(Debug, Clone, Copy)]
pub struct FineGrainStudy {
    geometry: CacheGeometry,
    breakeven: u32,
}

impl FineGrainStudy {
    /// Creates the study for a geometry; the per-line breakeven time uses
    /// the same wake-to-leakage balance as a bank's (the ratio is
    /// size-free, so the value carries over).
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors.
    pub fn new(geometry: CacheGeometry) -> Result<Self, CoreError> {
        let config = cache_sim::SimConfig::new(geometry)?;
        Ok(Self {
            geometry,
            breakeven: config.breakeven().cycles(),
        })
    }

    /// The per-line breakeven time, cycles.
    pub fn breakeven(&self) -> u32 {
        self.breakeven
    }

    /// Measures per-line sleep statistics on `cycles` trace cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `cycles` is zero.
    pub fn measure(
        &self,
        profile: &WorkloadProfile,
        cycles: u64,
        seed: u64,
    ) -> Result<FineGrainStats, CoreError> {
        if cycles == 0 {
            return Err(CoreError::InvalidParameter {
                name: "cycles",
                value: 0.0,
                expected: "a positive trace length",
            });
        }
        let lines = self.geometry.sets() as u32;
        let mut power = BankPower::new(lines, self.breakeven);
        let mut idle = IdleTracker::new(lines, self.breakeven);
        for acc in profile.trace(seed).take(cycles as usize) {
            let set = self.geometry.set_of(acc.addr) as u32;
            power.cycle(Some(set));
            idle.record(Some(set));
        }
        let total = power.cycles();
        let mut sum_sleep = 0.0;
        let mut min_sleep = f64::INFINITY;
        for l in 0..lines {
            let s = power.sleep_cycles(l) as f64 / total as f64;
            sum_sleep += s;
            min_sleep = min_sleep.min(s);
        }
        let stats = idle.finish();
        let avg_useful = stats
            .iter()
            .map(|s| s.long_idle_cycles as f64 / total as f64)
            .sum::<f64>()
            / lines as f64;
        Ok(FineGrainStats {
            avg_sleep: sum_sleep / lines as f64,
            min_sleep,
            avg_useful_idleness: avg_useful,
            lines: lines as u64,
        })
    }

    /// The ideal fine-grain lifetime (ref. \[7\]'s dynamic indexing): with
    /// line-level re-indexing every line ages at the *average* line rate.
    ///
    /// # Errors
    ///
    /// Propagates aging-model errors.
    pub fn ideal_lifetime(
        &self,
        aging: &AgingAnalysis,
        stats: &FineGrainStats,
        p0: f64,
    ) -> Result<f64, CoreError> {
        aging.bank_lifetime(stats.avg_sleep, p0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use nbti_model::{CellDesign, LifetimeSolver};
    use trace_synth::suite;

    fn study() -> FineGrainStudy {
        FineGrainStudy::new(CacheGeometry::direct_mapped(8 * 1024, 16, 4).unwrap()).unwrap()
    }

    fn aging() -> AgingAnalysis {
        AgingAnalysis::new(LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap())
    }

    #[test]
    fn line_level_idleness_dominates_bank_level() {
        // Each line sees only ~1/L of the traffic, so line-level sleep is
        // far higher than bank-level sleep on the same trace.
        let profile = suite::by_name("CRC32").unwrap();
        let s = study();
        let fine = s.measure(&profile, 80_000, 5).unwrap();
        assert!(
            fine.avg_sleep > 0.7,
            "line-level sleep should be large: {}",
            fine.avg_sleep
        );

        let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 4).unwrap();
        let arch = crate::arch::PartitionedCache::new(geom, PolicyKind::Identity).unwrap();
        let out = arch
            .simulate(
                profile.trace(5).take(80_000),
                crate::arch::UpdateSchedule::Never,
            )
            .unwrap();
        assert!(
            fine.avg_sleep > out.avg_sleep_fraction(),
            "fine grain must beat bank grain: {} vs {}",
            fine.avg_sleep,
            out.avg_sleep_fraction()
        );
    }

    #[test]
    fn ideal_lifetime_beats_bank_level_reindexing() {
        let profile = suite::by_name("dijkstra").unwrap();
        let s = study();
        let a = aging();
        let fine = s.measure(&profile, 80_000, 7).unwrap();
        let ideal = s.ideal_lifetime(&a, &fine, 0.5).unwrap();

        let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 4).unwrap();
        let arch = crate::arch::PartitionedCache::new(geom, PolicyKind::Identity).unwrap();
        let out = arch
            .simulate(
                profile.trace(7).take(80_000),
                crate::arch::UpdateSchedule::Never,
            )
            .unwrap();
        let bank_level = a
            .cache_lifetime(&out.sleep_fraction_all(), 0.5, PolicyKind::Probing)
            .unwrap();
        assert!(
            ideal > bank_level,
            "ref [7]'s fine grain is the upper bound: {ideal} vs {bank_level}"
        );
    }

    #[test]
    fn zero_cycles_rejected() {
        let profile = suite::by_name("sha").unwrap();
        assert!(study().measure(&profile, 0, 1).is_err());
    }

    #[test]
    fn stats_are_well_formed() {
        let profile = suite::by_name("gsme").unwrap();
        let fine = study().measure(&profile, 60_000, 2).unwrap();
        assert_eq!(fine.lines, 512);
        assert!(fine.min_sleep <= fine.avg_sleep);
        assert!(fine.avg_sleep <= fine.avg_useful_idleness + 1e-9);
        assert!((0.0..=1.0).contains(&fine.avg_useful_idleness));
    }
}
