//! The [`StudySession`] front door of the execution layer: one
//! long-lived object owning the [`ModelContext`], the policy and
//! workload registries, a session-scoped simulation memo and an
//! optional [`ResultCache`] — so repeated and overlapping studies are
//! incremental instead of from-scratch.
//!
//! [`ScenarioGrid::run`](crate::study::ScenarioGrid::run) survives as
//! a thin shim over a transient session (fresh memo, no cache, default
//! executor), byte-identical to the historic behavior. New code —
//! and everything that runs more than one grid — should hold a
//! session:
//!
//! * the **simulation memo** outlives each run, so grids that share
//!   `(geometry, workload, seed, horizon)` points — `repro_all`'s
//!   Tables I–IV, a preset re-run with one widened axis — simulate
//!   each distinct trace exactly once per session;
//! * the **[`ResultCache`]** (in-memory or on-disk JSONL) skips
//!   simulation *and* model evaluation for any scenario measured
//!   before, in this process or a previous one: a warm re-run
//!   executes zero simulations and still emits a byte-identical
//!   report, and an interrupted sweep resumes from its journal;
//! * **[`ExecOptions`]** select the executor backend; an
//!   **[`ExecObserver`]** streams per-record progress;
//! * [`StudySession::stats`] exposes the counters behind all of the
//!   above — simulations actually run, memo hits, cache hits/stores,
//!   model evaluations — so "the cache worked" is an assertable fact,
//!   not a hope.
//!
//! # Examples
//!
//! Two overlapping presets sharing one session (the second run's
//! 16 kB column re-uses every simulation of the first):
//!
//! ```no_run
//! use aging_cache::session::StudySession;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let session = StudySession::new();
//! let narrow = session.spec("narrow").cache_kb([16]).workload_names(["sha"])?;
//! let wide = session.spec("wide").cache_kb([8, 16]).workload_names(["sha"])?;
//! session.run(&narrow)?;
//! session.run(&wide)?;
//! let stats = session.stats();
//! assert_eq!(stats.scenarios, 3);
//! assert_eq!(stats.simulations, 2, "the 16 kB point simulated once");
//! # Ok(())
//! # }
//! ```
//!
//! A persistent on-disk cache: the second process re-emits the same
//! report without simulating anything:
//!
//! ```no_run
//! use aging_cache::rescache::JsonlCache;
//! use aging_cache::session::StudySession;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let session = StudySession::new().cache(JsonlCache::in_dir("./study-cache")?);
//! let spec = session.spec("sweep").cache_kb([8, 16]).workload_names(["sha"])?;
//! let report = session.run(&spec)?;
//! // … later, in a fresh process:
//! let resumed = StudySession::new().cache(JsonlCache::in_dir("./study-cache")?);
//! let replay = resumed.run(&spec)?;
//! assert_eq!(resumed.stats().simulations, 0);
//! assert_eq!(replay.to_json(), report.to_json());
//! # Ok(())
//! # }
//! ```

use crate::arch::{PartitionedCache, UpdateSchedule};
use crate::error::CoreError;
use crate::exec::{ExecObserver, ExecOptions, RecordOrigin};
use crate::model::{CalibratedModel, ModelContext, ModelEval};
use crate::registry::PolicyRegistry;
use crate::rescache::{workload_identity, CachedMeasurement, Fingerprint, ResultCache};
use crate::study::{Scenario, ScenarioGrid, ScenarioRecord, StudyReport, StudySpec};
use crate::workload::{Workload, WorkloadRegistry};
use cache_sim::CacheGeometry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Measured simulation outputs shared by scenarios that differ only in
/// policy, model or update period.
pub(crate) struct SimMeasurement {
    cycles: u64,
    esav: f64,
    miss_rate: f64,
    useful_idleness: Vec<f64>,
    sleep_fractions: Vec<f64>,
    /// Per-bank L2 sleep fractions for hierarchy scenarios
    /// (`l2_cache_bytes > 0`); `None` for single-level runs.
    l2_sleep_fractions: Option<Vec<f64>>,
}

/// `(cache_bytes, line_bytes, banks, ways, replacement, l2_cache_bytes,
/// l2_ways, workload identity, trace_seed, trace_cycles)` → memoized
/// simulation. The workload identity string (name, or format + content
/// hash for files — see [`workload_identity`]) replaces the historic
/// per-grid workload *index*, so the memo is meaningful across grids
/// within a session. Seed-independent workloads (files, pinned
/// profiles) key seed 0.
type SimKey = (u64, u32, u32, u32, String, u64, u32, String, u64, u64);

/// The session-scoped simulation memo. Shared across workers and runs;
/// a racing double-compute always stores the same value, so
/// first-writer-wins stays deterministic.
// aging-lint: allow(no-unordered-iter) keyed memo, only ever probed per scenario; never iterated
pub(crate) type SimMemo = Mutex<HashMap<SimKey, Arc<SimMeasurement>>>;

/// Cumulative execution counters, snapshot by [`StudySession::stats`].
///
/// For runs that complete without a scenario error,
/// `scenarios = cache_hits + evaluations`: every record was either
/// replayed whole or model-evaluated. (A failed scenario counts
/// toward `scenarios` but nothing else, so errored runs undercount on
/// the right-hand side.) `simulations` and `sim_memo_hits` need not
/// sum to anything: pinned-profile scenarios measure without
/// simulating, and scenarios sharing a trace split between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Scenario records produced (computed or replayed).
    pub scenarios: usize,
    /// Trace simulations actually executed.
    pub simulations: usize,
    /// Scenarios whose simulation was replayed from the session memo.
    pub sim_memo_hits: usize,
    /// Device-model evaluations actually executed.
    pub evaluations: usize,
    /// Scenarios replayed whole from the result cache (no simulation,
    /// no model evaluation).
    pub cache_hits: usize,
    /// Measurements newly journaled into the result cache.
    pub cache_stores: usize,
}

#[derive(Default)]
pub(crate) struct Counters {
    scenarios: AtomicUsize,
    simulations: AtomicUsize,
    sim_memo_hits: AtomicUsize,
    evaluations: AtomicUsize,
    cache_hits: AtomicUsize,
    cache_stores: AtomicUsize,
}

impl Counters {
    fn snapshot(&self) -> SessionStats {
        SessionStats {
            scenarios: self.scenarios.load(Ordering::Relaxed),
            simulations: self.simulations.load(Ordering::Relaxed),
            sim_memo_hits: self.sim_memo_hits.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_stores: self.cache_stores.load(Ordering::Relaxed),
        }
    }
}

/// The execution environment one grid run borrows: everything the
/// task workers read, owned either by a [`StudySession`] or by the
/// transient shim behind
/// [`ScenarioGrid::run`](crate::study::ScenarioGrid::run).
struct ExecEnv<'a> {
    ctx: &'a ModelContext,
    memo: &'a SimMemo,
    cache: Option<&'a dyn ResultCache>,
    exec: ExecOptions,
    observer: Option<&'a dyn ExecObserver>,
    counters: &'a Counters,
}

/// The long-lived front door of the execution layer.
///
/// See the [module docs](self) for the full tour. Construction is
/// free; models calibrate lazily (once per distinct canonical key,
/// session-wide) and the simulation memo fills as grids run.
pub struct StudySession {
    ctx: ModelContext,
    policies: PolicyRegistry,
    workloads: WorkloadRegistry,
    replacements: cache_sim::ReplacementRegistry,
    memo: SimMemo,
    cache: Option<Box<dyn ResultCache>>,
    exec: ExecOptions,
    observer: Option<Box<dyn ExecObserver>>,
    counters: Counters,
}

impl std::fmt::Debug for StudySession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StudySession")
            .field("exec", &self.exec)
            .field("cached", &self.cache.as_ref().map(|c| c.len()))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for StudySession {
    fn default() -> Self {
        Self::new()
    }
}

impl StudySession {
    /// A session over the built-in registries and a fresh
    /// [`ModelContext`], threaded executor, no result cache.
    pub fn new() -> Self {
        Self::with_context(ModelContext::new())
    }

    /// A session over a custom [`ModelContext`] (e.g. one whose
    /// registry carries user-registered device models).
    pub fn with_context(ctx: ModelContext) -> Self {
        Self {
            ctx,
            policies: PolicyRegistry::builtin(),
            workloads: WorkloadRegistry::builtin(),
            replacements: cache_sim::ReplacementRegistry::global().clone(),
            memo: Mutex::new(HashMap::new()), // aging-lint: allow(no-unordered-iter) keyed memo
            cache: None,
            exec: ExecOptions::default(),
            observer: None,
            counters: Counters::default(),
        }
    }

    /// Attaches a result cache (in-memory or on-disk JSONL).
    #[must_use]
    pub fn cache(mut self, cache: impl ResultCache + 'static) -> Self {
        self.cache = Some(Box::new(cache));
        self
    }

    /// Selects the executor backend.
    #[must_use]
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Attaches a streaming progress observer.
    #[must_use]
    pub fn observer(mut self, observer: impl ExecObserver + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Replaces the session's policy registry (used by
    /// [`StudySession::spec`]).
    #[must_use]
    pub fn policy_registry(mut self, registry: PolicyRegistry) -> Self {
        self.policies = registry;
        self
    }

    /// Replaces the session's workload registry (used by
    /// [`StudySession::spec`]).
    #[must_use]
    pub fn workload_registry(mut self, registry: WorkloadRegistry) -> Self {
        self.workloads = registry;
        self
    }

    /// Replaces the session's replacement-policy registry (used by
    /// [`StudySession::spec`] and by distribution workers rebuilding
    /// manifest subgrids).
    #[must_use]
    pub fn replacement_registry(mut self, registry: cache_sim::ReplacementRegistry) -> Self {
        self.replacements = registry;
        self
    }

    /// The model context (registry + calibration memo) this session
    /// owns.
    pub fn context(&self) -> &ModelContext {
        &self.ctx
    }

    /// The attached result cache, if any.
    pub fn result_cache(&self) -> Option<&dyn ResultCache> {
        self.cache.as_deref()
    }

    /// The session's policy registry (the distribution layer resolves
    /// manifest scenarios against it).
    pub(crate) fn policy_registry_ref(&self) -> &PolicyRegistry {
        &self.policies
    }

    /// The session's workload registry (the distribution layer
    /// resolves manifest workload keys against it).
    pub(crate) fn workload_registry_ref(&self) -> &WorkloadRegistry {
        &self.workloads
    }

    /// The session's replacement-policy registry (the distribution
    /// layer resolves manifest replacement names against it).
    pub(crate) fn replacement_registry_ref(&self) -> &cache_sim::ReplacementRegistry {
        &self.replacements
    }

    /// A new [`StudySpec`] pre-wired with the session's policy,
    /// workload and replacement registries — the spec-building front
    /// door.
    pub fn spec(&self, name: impl Into<String>) -> StudySpec {
        StudySpec::new(name)
            .registry(self.policies.clone())
            .workload_registry(self.workloads.clone())
            .replacement_registry(self.replacements.clone())
    }

    /// Expands and runs a spec through this session.
    ///
    /// # Errors
    ///
    /// Propagates expansion and execution errors.
    pub fn run(&self, spec: &StudySpec) -> Result<StudyReport, CoreError> {
        self.run_grid(&spec.expand()?)
    }

    /// Runs an expanded grid through this session: session memo,
    /// result cache, configured executor and observer all apply.
    ///
    /// # Errors
    ///
    /// Returns model resolution/calibration errors, cache backend
    /// errors, the first scenario error by grid order, or
    /// [`CoreError::ScenarioPanicked`] if a scenario task panicked.
    pub fn run_grid(&self, grid: &ScenarioGrid) -> Result<StudyReport, CoreError> {
        execute(
            grid,
            &ExecEnv {
                ctx: &self.ctx,
                memo: &self.memo,
                cache: self.cache.as_deref(),
                exec: self.exec.clone(),
                observer: self.observer.as_deref(),
                counters: &self.counters,
            },
        )
    }

    /// A snapshot of the session's cumulative execution counters.
    pub fn stats(&self) -> SessionStats {
        self.counters.snapshot()
    }

    /// Verifies a report against this session's result cache, cell by
    /// cell with absolute tolerance `tolerance` — the analysis layer's
    /// [`ReportDiff::against_cache`](crate::analysis::ReportDiff::against_cache)
    /// wired to the session's cache and workload registry. No
    /// simulation and no model evaluation runs: a report replayed from
    /// a warm journal diffs empty.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Report`] when the session has no cache
    /// attached, and propagates workload-resolution and cache backend
    /// errors.
    pub fn diff_cached(
        &self,
        report: &StudyReport,
        tolerance: f64,
    ) -> Result<crate::analysis::ReportDiff, CoreError> {
        let Some(cache) = self.cache.as_deref() else {
            return Err(CoreError::Report {
                message: "diff_cached: this session has no result cache attached".into(),
            });
        };
        crate::analysis::ReportDiff::against_cache(report, cache, &self.workloads, tolerance)
    }
}

/// The transient-session path behind
/// [`ScenarioGrid::run`](crate::study::ScenarioGrid::run): borrowed
/// context (so the caller's calibration memo keeps accumulating),
/// fresh memo, no cache, default executor — the historic semantics,
/// byte for byte.
pub(crate) fn run_grid_oneshot(
    grid: &ScenarioGrid,
    ctx: &ModelContext,
) -> Result<StudyReport, CoreError> {
    execute(
        grid,
        &ExecEnv {
            ctx,
            memo: &Mutex::new(HashMap::new()), // aging-lint: allow(no-unordered-iter) keyed memo
            cache: None,
            exec: ExecOptions::default(),
            observer: None,
            counters: &Counters::default(),
        },
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn execute(grid: &ScenarioGrid, env: &ExecEnv<'_>) -> Result<StudyReport, CoreError> {
    // Calibrate every distinct model once, serially and in grid order:
    // deterministic first-error, and the workers below only ever hit
    // the context's calibration memo.
    // aging-lint: allow(no-unordered-iter) probed per scenario below; iteration order never observed
    let mut models: HashMap<&str, Arc<dyn CalibratedModel>> = HashMap::new();
    for scenario in grid.scenarios() {
        if !models.contains_key(scenario.model.as_str()) {
            models.insert(&scenario.model, env.ctx.calibrated(&scenario.model)?);
        }
    }
    let models = &models;

    if let Some(obs) = env.observer {
        obs.on_start(grid.name(), grid.len());
    }
    let n = grid.len();
    // One slot per scenario, each behind its own lock: workers write
    // their own slot independently (no shared results mutex), and the
    // id-indexed layout keeps the report order deterministic.
    let slots: Vec<Mutex<Option<Result<ScenarioRecord, CoreError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let done = AtomicUsize::new(0);
    let task = |i: usize| {
        // Catch panics so one bad scenario surfaces as a first-class
        // error — with its id and message — instead of tearing down
        // the whole process at scope join.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one(grid, &grid.scenarios()[i], models, env)
        }))
        .unwrap_or_else(|payload| {
            Err(CoreError::ScenarioPanicked {
                scenario: i,
                message: panic_message(payload),
            })
        });
        if let (Some(obs), Ok((record, origin))) = (env.observer, &outcome) {
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            obs.on_record(record, *origin, finished, n);
        }
        *slots[i].lock().expect("slot poisoned") = Some(outcome.map(|(record, _)| record));
    };

    // The spec-level worker cap overrides the session's (threads(1)
    // still forces an in-thread sequential loop, as it always did).
    let mut exec = env.exec.clone();
    if let Some(threads) = grid.threads_cap() {
        exec = exec.with_threads(threads);
    }
    // The process backend runs its distribution phase first: shard the
    // grid across worker processes over the shared journal, then
    // refresh this process's cache handle so the executor pass below
    // replays the merged journal instead of recomputing (it computes
    // only what crashed workers left unfinished).
    if exec.backend == crate::exec::ExecBackend::Process {
        let Some(popts) = exec.process.clone() else {
            return Err(CoreError::Report {
                message:
                    "process backend selected without process options (use ExecOptions::process)"
                        .into(),
            });
        };
        // Small grids are faster in-process: spawn + lease-poll
        // overhead dominates below the threshold (~2× slower than
        // sequential at the 54-scenario reference grid), so fall back
        // to the threaded backend and say so. The report is
        // byte-identical either way — backends only move work around.
        if grid.len() < popts.fallback_threshold {
            if let Some(obs) = env.observer {
                obs.on_notice(&format!(
                    "process backend: {} scenarios is below the fallback threshold ({}); \
                     running threaded instead",
                    grid.len(),
                    popts.fallback_threshold
                ));
            }
            exec = crate::exec::ExecOptions::threaded();
            if let Some(threads) = grid.threads_cap() {
                exec = exec.with_threads(threads);
            }
            exec.build().execute(n, &task);
            return assemble(grid, slots, env);
        }
        let Some(cache) = env.cache else {
            return Err(CoreError::Report {
                message: "process backend requires a result cache over the shared directory \
                          (attach JsonlCache::in_dir on the same dir)"
                    .into(),
            });
        };
        crate::distrib::distribute(grid, cache, env.observer, &popts)?;
        cache.refresh()?;
    }
    exec.build().execute(n, &task);
    assemble(grid, slots, env)
}

/// Collects the per-scenario slots into the id-ordered report and
/// fires the observer's finish callback.
fn assemble(
    grid: &ScenarioGrid,
    slots: Vec<Mutex<Option<Result<ScenarioRecord, CoreError>>>>,
    env: &ExecEnv<'_>,
) -> Result<StudyReport, CoreError> {
    let mut records = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner().expect("slot poisoned") {
            Some(Ok(record)) => records.push(record),
            Some(Err(e)) => return Err(e),
            None => return Err(CoreError::WorkerPanicked),
        }
    }
    let report = StudyReport::from_records(grid.name().to_string(), records);
    if let Some(obs) = env.observer {
        obs.on_finish(&report, &env.counters.snapshot());
    }
    Ok(report)
}

/// Executes one scenario: replay it whole from the result cache if
/// possible; otherwise simulate (or re-use the session memo) and hand
/// the measured sleep fractions to the scenario's calibrated device
/// model.
fn run_one(
    grid: &ScenarioGrid,
    scenario: &Scenario,
    models: &HashMap<&str, Arc<dyn CalibratedModel>>, // aging-lint: allow(no-unordered-iter) keyed memo
    env: &ExecEnv<'_>,
) -> Result<(ScenarioRecord, RecordOrigin), CoreError> {
    env.counters.scenarios.fetch_add(1, Ordering::Relaxed);
    let workload = &grid.workloads()[scenario.workload_index];
    let fingerprint = env
        .cache
        .map(|_| Fingerprint::for_scenario(scenario, workload.as_ref()));
    if let (Some(cache), Some(fp)) = (env.cache, &fingerprint) {
        if let Some(hit) = cache.lookup(fp)? {
            env.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.into_record(scenario.clone()), RecordOrigin::Cached));
        }
    }

    let measured = simulate(
        scenario,
        workload.as_ref(),
        grid.replacement_registry(),
        env,
    )?;
    let model = &models[scenario.model.as_str()];
    let policy_builder = || {
        grid.policy_registry()
            .build(&scenario.policy, scenario.banks, scenario.policy_seed)
    };
    let mut metrics = model.evaluate(&ModelEval {
        sleep_fractions: &measured.sleep_fractions,
        p0: workload.p0(),
        update_days: scenario.update_days,
        policy: &policy_builder,
    })?;
    env.counters.evaluations.fetch_add(1, Ordering::Relaxed);
    // Metrics inline as top-level record fields in JSON, so a metric
    // shadowing a record field would emit a duplicate key and vanish
    // on parse — reject it loudly instead. Hierarchy scenarios append
    // `sleep_fraction_l2` / `lt_years_l2` below, so those names are
    // reserved too when an L2 is present.
    for name in metrics.names() {
        if ScenarioRecord::RESERVED_FIELDS.contains(&name)
            || (measured.l2_sleep_fractions.is_some()
                && (name == "sleep_fraction_l2" || name == "lt_years_l2"))
        {
            return Err(CoreError::Report {
                message: format!(
                    "model `{}` emits metric `{name}`, which shadows a record field",
                    scenario.model
                ),
            });
        }
    }
    // Hierarchy scenarios carry the L2's view as two extra metrics:
    // the average L2 sleep fraction (the induced-idleness headline) and
    // the L2 lifetime under the same device model. Both ride the open
    // metrics map, so pre-hierarchy readers parse them like any other
    // model output.
    if let Some(l2_fractions) = &measured.l2_sleep_fractions {
        let avg = l2_fractions.iter().sum::<f64>() / l2_fractions.len().max(1) as f64;
        let l2_metrics = model.evaluate(&ModelEval {
            sleep_fractions: l2_fractions,
            p0: workload.p0(),
            update_days: scenario.update_days,
            policy: &policy_builder,
        })?;
        metrics.push("sleep_fraction_l2", avg);
        metrics.push(
            "lt_years_l2",
            l2_metrics.get(crate::model::METRIC_LT).unwrap_or(f64::NAN),
        );
    }

    let record = ScenarioRecord {
        scenario: scenario.clone(),
        sim_cycles: measured.cycles,
        esav: measured.esav,
        miss_rate: measured.miss_rate,
        useful_idleness: measured.useful_idleness.clone(),
        sleep_fractions: measured.sleep_fractions.clone(),
        metrics,
    };
    if let (Some(cache), Some(fp)) = (env.cache, &fingerprint) {
        cache.store(fp, &CachedMeasurement::of_record(&record))?;
        env.counters.cache_stores.fetch_add(1, Ordering::Relaxed);
    }
    Ok((record, RecordOrigin::Computed))
}

/// Simulates a scenario's trace, or reuses a memoized run: the
/// simulation executes under the identity mapping with no mid-trace
/// updates, so its outcome depends only on the geometry, workload and
/// trace parameters — not on the policy, model or update-period axes.
/// Pinned-profile workloads skip simulation entirely: their sleep
/// fractions *are* the measurement, and the trace-derived metrics are
/// honestly absent (`NaN` / zero cycles).
fn simulate(
    scenario: &Scenario,
    workload: &dyn Workload,
    replacements: &cache_sim::ReplacementRegistry,
    env: &ExecEnv<'_>,
) -> Result<Arc<SimMeasurement>, CoreError> {
    if let Some(profile) = workload.pinned_profile() {
        return Ok(Arc::new(SimMeasurement {
            cycles: 0,
            esav: f64::NAN,
            miss_rate: f64::NAN,
            useful_idleness: profile.to_vec(),
            sleep_fractions: profile.to_vec(),
            l2_sleep_fractions: None,
        }));
    }
    let (identity, seeded) = workload_identity(workload);
    let key = (
        scenario.cache_bytes,
        scenario.line_bytes,
        scenario.banks,
        scenario.ways,
        scenario.replacement.clone(),
        scenario.l2_cache_bytes,
        scenario.l2_ways,
        identity,
        if seeded { scenario.trace_seed } else { 0 },
        scenario.trace_cycles,
    );
    if let Some(hit) = env.memo.lock().expect("memo poisoned").get(&key) {
        env.counters.sim_memo_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(hit));
    }
    let geom = CacheGeometry::new(
        scenario.cache_bytes,
        scenario.line_bytes,
        scenario.ways,
        scenario.banks,
    )?;
    let arch = PartitionedCache::new_named(geom, "identity", PolicyRegistry::global().clone())?
        .with_replacement(&scenario.replacement, replacements.clone())?;
    // Stream the workload through the batched fast path: synthetic
    // generators and multi-GB trace files both run in constant
    // memory, with bitwise-identical outcomes to the scalar loop.
    let mut source = workload.open(scenario.trace_seed)?;
    let (out, l2_out) = if scenario.l2_cache_bytes > 0 {
        let l2_geom = CacheGeometry::new(
            scenario.l2_cache_bytes,
            scenario.line_bytes,
            scenario.l2_ways,
            scenario.banks,
        )?;
        let l2 =
            PartitionedCache::new_named(l2_geom, "identity", PolicyRegistry::global().clone())?
                .with_replacement(&scenario.replacement, replacements.clone())?;
        let out = arch.simulate_hierarchy_source(
            &l2,
            source.as_mut(),
            Some(scenario.trace_cycles),
            UpdateSchedule::Never,
        )?;
        debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
        (out.l1, Some(out.l2))
    } else {
        let out = arch.simulate_source(
            source.as_mut(),
            Some(scenario.trace_cycles),
            UpdateSchedule::Never,
        )?;
        (out, None)
    };
    if out.accesses == 0 {
        return Err(CoreError::Report {
            message: format!(
                "workload `{}` produced no accesses (empty trace?)",
                scenario.workload
            ),
        });
    }
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    env.counters.simulations.fetch_add(1, Ordering::Relaxed);
    let measured = Arc::new(SimMeasurement {
        cycles: out.cycles,
        esav: out.energy_saving(),
        miss_rate: out.miss_rate(),
        useful_idleness: out.useful_idleness_all(),
        sleep_fractions: out.sleep_fraction_all(),
        l2_sleep_fractions: l2_out.map(|l2| l2.sleep_fraction_all()),
    });
    // A racing worker may have inserted meanwhile; identical inputs
    // give identical outputs, so either value is fine to keep.
    env.memo
        .lock()
        .expect("memo poisoned")
        .insert(key, Arc::clone(&measured));
    Ok(measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Metrics;
    use crate::rescache::MemoryCache;

    fn tiny_spec(session: &StudySession, name: &str) -> StudySpec {
        session
            .spec(name)
            .workload_names(["sha", "CRC32"])
            .unwrap()
            .trace_cycles(40_000)
    }

    #[test]
    fn session_memo_shares_simulations_across_runs() {
        let session = StudySession::new();
        let spec = tiny_spec(&session, "first").policies(["probing", "gray"]);
        session.run(&spec).unwrap();
        let s1 = session.stats();
        assert_eq!(s1.scenarios, 4);
        assert_eq!(s1.simulations, 2, "two workloads, one geometry");
        assert_eq!(s1.sim_memo_hits, 2);
        // A second, overlapping run simulates nothing new.
        let again = tiny_spec(&session, "second").policies(["scrambling"]);
        session.run(&again).unwrap();
        let s2 = session.stats();
        assert_eq!(s2.scenarios, 6);
        assert_eq!(s2.simulations, 2, "the memo outlives the run");
        assert_eq!(s2.evaluations, 6, "model evals are per-scenario");
    }

    #[test]
    fn warm_cache_skips_simulation_and_evaluation() {
        let session = StudySession::new().cache(MemoryCache::new());
        let spec = tiny_spec(&session, "cached");
        let cold = session.run(&spec).unwrap();
        assert_eq!(session.stats().cache_stores, 2);
        let warm = session.run(&spec).unwrap();
        let stats = session.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.simulations, 2, "no new simulations");
        assert_eq!(stats.evaluations, 2, "no new model evaluations");
        assert_eq!(warm.to_json(), cold.to_json(), "byte-identical replay");
    }

    #[test]
    fn scenario_panics_carry_id_and_message() {
        use crate::model::{CalibratedModel, ModelRegistry};
        struct Bomb;
        impl CalibratedModel for Bomb {
            fn evaluate(&self, _eval: &ModelEval<'_>) -> Result<Metrics, CoreError> {
                panic!("the bomb model always explodes")
            }
        }
        let mut registry = ModelRegistry::builtin();
        registry
            .register_fn("bomb", "panics on evaluate", "none", || Ok(Arc::new(Bomb)))
            .unwrap();
        let session = StudySession::with_context(ModelContext::with_registry(registry))
            .exec(ExecOptions::sequential());
        let spec = tiny_spec(&session, "boom").models(["bomb"]);
        let e = session.run(&spec).unwrap_err();
        let CoreError::ScenarioPanicked { scenario, message } = &e else {
            panic!("expected ScenarioPanicked, got {e:?}");
        };
        assert_eq!(*scenario, 0, "first scenario in grid order");
        assert!(message.contains("explodes"), "{message}");
        assert!(e.to_string().contains("scenario 0"), "{e}");
    }

    #[test]
    fn observer_streams_every_record() {
        use std::sync::atomic::AtomicUsize;
        #[derive(Default)]
        struct Counting {
            started: AtomicUsize,
            records: AtomicUsize,
            cached: AtomicUsize,
            finished: AtomicUsize,
        }
        impl ExecObserver for Arc<Counting> {
            fn on_start(&self, _name: &str, total: usize) {
                self.started.fetch_add(total, Ordering::Relaxed);
            }
            fn on_record(
                &self,
                _record: &ScenarioRecord,
                origin: RecordOrigin,
                _done: usize,
                _total: usize,
            ) {
                self.records.fetch_add(1, Ordering::Relaxed);
                if origin == RecordOrigin::Cached {
                    self.cached.fetch_add(1, Ordering::Relaxed);
                }
            }
            fn on_finish(&self, report: &StudyReport, stats: &SessionStats) {
                assert_eq!(report.records().len(), 2);
                assert!(stats.scenarios > 0);
                self.finished.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counting = Arc::new(Counting::default());
        let session = StudySession::new()
            .cache(MemoryCache::new())
            .observer(Arc::clone(&counting));
        let spec = tiny_spec(&session, "observed");
        session.run(&spec).unwrap();
        session.run(&spec).unwrap();
        assert_eq!(counting.started.load(Ordering::Relaxed), 4);
        assert_eq!(counting.records.load(Ordering::Relaxed), 4);
        assert_eq!(counting.cached.load(Ordering::Relaxed), 2);
        assert_eq!(counting.finished.load(Ordering::Relaxed), 2);
    }
}
