//! Galois linear-feedback shift registers.
//!
//! The Scrambling policy XORs the bank-select bits with "a randomly
//! generated number (e.g., by means of a LFSR)" (paper §III-A3, Fig. 3b).
//! A `p`-bit maximal-length LFSR steps through all `2^p − 1` non-zero
//! states, so over a full period every non-zero XOR mask appears exactly
//! once — the "repeated values" structure behind the paper's RNG-error
//! analysis (§IV-B2).

use crate::error::CoreError;

/// Maximal-length Galois tap masks for widths 1..=16 (index = width).
/// Width 1 degenerates to the single-state register `1`.
const TAPS: [u16; 17] = [
    0x0000, // width 0: unused
    0x0001, 0x0003, 0x0006, 0x000C, 0x0014, 0x0030, 0x0060, 0x00B8, 0x0110, 0x0240, 0x0500, 0x0E08,
    0x1C80, 0x3802, 0x6000, 0xD008,
];

/// A Galois LFSR of width 1..=16 bits.
///
/// # Examples
///
/// ```
/// use aging_cache::Lfsr;
///
/// let mut lfsr = Lfsr::new(3, 0b101)?;
/// // A maximal-length 3-bit LFSR visits all 7 non-zero states.
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..7 {
///     seen.insert(lfsr.next_value());
/// }
/// assert_eq!(seen.len(), 7);
/// assert!(!seen.contains(&0));
/// # Ok::<(), aging_cache::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: u32,
    state: u16,
    taps: u16,
}

impl Lfsr {
    /// Creates an LFSR of the given width with a non-zero seed (the seed
    /// is masked to the width; a masked-to-zero seed is replaced by 1,
    /// since the all-zero state is absorbing).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `width` is not in
    /// `1..=16`.
    pub fn new(width: u32, seed: u16) -> Result<Self, CoreError> {
        if !(1..=16).contains(&width) {
            return Err(CoreError::InvalidParameter {
                name: "width",
                value: width as f64,
                expected: "1..=16 bits",
            });
        }
        let mask = Self::mask_for(width);
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Ok(Self {
            width,
            state,
            taps: TAPS[width as usize],
        })
    }

    fn mask_for(width: u32) -> u16 {
        if width == 16 {
            u16::MAX
        } else {
            (1u16 << width) - 1
        }
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register state (never zero).
    pub fn state(&self) -> u16 {
        self.state
    }

    /// The sequence period: `2^width − 1`.
    pub fn period(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// Advances one step and returns the new state.
    pub fn next_value(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= self.taps;
        }
        // Galois form keeps the state within the width by construction,
        // but mask anyway to make the invariant explicit.
        self.state &= Self::mask_for(self.width);
        debug_assert_ne!(self.state, 0, "maximal-length LFSR never reaches 0");
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supported_widths_have_maximal_period() {
        for width in 1..=12u32 {
            let mut l = Lfsr::new(width, 1).unwrap();
            let start = l.state();
            let period = l.period();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..period {
                seen.insert(l.next_value());
            }
            assert_eq!(
                seen.len() as u64,
                period,
                "width {width}: sequence must visit every non-zero state"
            );
            assert_eq!(l.state(), start, "width {width}: period must close");
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let l = Lfsr::new(4, 0).unwrap();
        assert_ne!(l.state(), 0);
        let l = Lfsr::new(2, 0b100).unwrap(); // masks to zero -> fixed to 1
        assert_eq!(l.state(), 1);
    }

    #[test]
    fn rejects_unsupported_widths() {
        assert!(Lfsr::new(0, 1).is_err());
        assert!(Lfsr::new(17, 1).is_err());
        assert!(Lfsr::new(16, 1).is_ok());
    }

    #[test]
    fn deterministic_sequence() {
        let mut a = Lfsr::new(5, 7).unwrap();
        let mut b = Lfsr::new(5, 7).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_value(), b.next_value());
        }
    }

    #[test]
    fn width_one_alternates_trivially() {
        let mut l = Lfsr::new(1, 1).unwrap();
        assert_eq!(l.period(), 1);
        assert_eq!(l.next_value(), 1);
        assert_eq!(l.next_value(), 1);
    }

    #[test]
    fn value_distribution_is_balanced_over_many_periods() {
        // The paper's §IV-B2: over N draws each non-zero value repeats
        // ~N/(2^p - 1) times.
        let mut l = Lfsr::new(4, 3).unwrap();
        let n = 15 * 1000;
        let mut counts = [0u32; 16];
        for _ in 0..n {
            counts[l.next_value() as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for (v, &count) in counts.iter().enumerate().skip(1) {
            assert_eq!(count, 1000, "value {v} should repeat exactly N/15");
        }
    }
}
