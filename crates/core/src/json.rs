//! A minimal, dependency-free JSON codec for study reports.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `serde`/`serde_json` from a registry. This module is the stand-in: a
//! small [`Json`] value type with a deterministic compact emitter and a
//! strict recursive-descent parser. Determinism matters more than speed
//! here — the Study API's parallel-vs-sequential test compares reports
//! byte-for-byte, so object keys are emitted in insertion order and
//! numbers use Rust's shortest round-trip formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Emitted with shortest-round-trip formatting, so parsing
    /// the emitted text recovers the exact `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (and therefore deterministic).
    Obj(Vec<(String, Json)>),
}

/// A parse or shape error from the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, with enough context to locate the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of numbers from a float slice.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, or a shape error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the value is not a number (or one of
    /// the emitter's tagged non-finite strings, which decode back).
    pub fn as_num(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Str(s) if s == "NaN" => Ok(f64::NAN),
            Json::Str(s) if s == "+Inf" => Ok(f64::INFINITY),
            Json::Str(s) if s == "-Inf" => Ok(f64::NEG_INFINITY),
            other => err(format!("expected number for {what}, got {other:?}")),
        }
    }

    /// The value as a string slice, or a shape error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the value is not a string.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string for {what}, got {other:?}")),
        }
    }

    /// The value as an array slice, or a shape error naming `what`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the value is not an array.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array for {what}, got {other:?}")),
        }
    }

    /// Fetches `key` from an object, erroring if absent.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if `self` is not an object or lacks the key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self.get(key) {
            Some(v) => Ok(v),
            None => err(format!("missing field `{key}`")),
        }
    }

    /// Emits compact JSON text. Deterministic: key order is preserved and
    /// floats use shortest round-trip formatting.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `Display` for f64 is shortest-round-trip, like
                    // `Debug`, but drops the trailing `.0` on integers.
                    out.push_str(&format!("{v}"));
                } else {
                    // Non-finite values are not representable in strict
                    // JSON; encode them as tagged strings.
                    out.push('"');
                    out.push_str(if v.is_nan() {
                        "NaN"
                    } else if *v > 0.0 {
                        "+Inf"
                    } else {
                        "-Inf"
                    });
                    out.push('"');
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes
        .get(*pos..)
        .is_some_and(|r| r.starts_with(word.as_bytes()))
    {
        *pos += word.len();
        Ok(value)
    } else {
        err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError {
                                message: "truncated \\u escape".into(),
                            })
                            .and_then(|h| {
                                std::str::from_utf8(h).map_err(|_| JsonError {
                                    message: "non-ASCII \\u escape".into(),
                                })
                            })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            message: format!("bad \\u escape `{hex}`"),
                        })?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(bytes.get(*pos..).unwrap_or(&[])).map_err(|_| {
                    JsonError {
                        message: "invalid UTF-8".into(),
                    }
                })?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return err("unterminated string"),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    ) {
        *pos += 1;
    }
    // The consumed range is all ASCII, so this never fails; an empty
    // or malformed span falls through to the number-parse error below.
    let text = bytes
        .get(start..*pos)
        .and_then(|s| std::str::from_utf8(s).ok())
        .unwrap_or("");
    match text.parse::<f64>() {
        Ok(v) => Ok(Json::Num(v)),
        Err(_) => err(format!("invalid number `{text}` at byte {start}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let v = Json::obj(vec![
            ("name", Json::Str("study \"A\"\n".into())),
            ("count", Json::Num(3.0)),
            ("pi", Json::Num(0.1 + 0.2)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::nums(&[1.5, -2.25, 1e-9])),
        ]);
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0] {
            let text = Json::Num(v).emit();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(v.to_bits(), back.to_bits(), "{text}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_numbers_roundtrip_via_tagged_strings() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let text = Json::Num(v).emit();
            let back = Json::parse(&text).unwrap().as_num("v").unwrap();
            assert_eq!(v.is_nan(), back.is_nan());
            if !v.is_nan() {
                assert_eq!(v, back, "{text}");
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#"{"a": [1, {"b": "c"}, null], "d": false}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr("a").unwrap().len(), 3);
        assert_eq!(v.field("d").unwrap(), &Json::Bool(false));
    }

    #[test]
    fn key_order_is_preserved() {
        let v = Json::obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.emit(), r#"{"z":1,"a":2}"#);
    }
}
