//! The assembled architecture: geometry + policy + simulator.

use crate::control::BlockControlSpec;
use crate::decoder::Decoder;
use crate::error::CoreError;
use crate::policy::PolicyKind;
use crate::registry::PolicyRegistry;
use crate::selector::BlockSelector;
use cache_sim::{
    Access, CacheGeometry, CacheHierarchy, HierarchyOutcome, ReplacementRegistry, SimConfig,
    SimOutcome, Simulator, DEFAULT_REPLACEMENT,
};
use trace_synth::{IterSource, TraceSource, BATCH_ACCESSES};

/// When to pulse the dynamic-indexing `update` signal during a simulated
/// trace.
///
/// At real timescales updates are rare (the paper suggests daily, bound to
/// a flush), far apart compared to any simulable trace; the main pipeline
/// therefore simulates with [`UpdateSchedule::Never`] and applies the
/// rotation analytically over the device lifetime
/// ([`AgingAnalysis`](crate::aging::AgingAnalysis)). The periodic variants
/// exist to measure the *cost* of updating (flush-induced misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateSchedule {
    /// Never update during the trace (the production setting).
    Never,
    /// Update (and flush) every `n` cycles.
    EveryCycles(u64),
}

/// An `M`-bank uniformly partitioned cache with a dynamic-indexing policy
/// (the paper's Fig. 1 architecture).
///
/// # Examples
///
/// ```
/// use aging_cache::{PartitionedCache, PolicyKind};
/// use aging_cache::arch::UpdateSchedule;
/// use cache_sim::CacheGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4)?;
/// let cache = PartitionedCache::new(geom, PolicyKind::Probing)?;
/// let profile = trace_synth::suite::by_name("CRC32").unwrap();
/// let out = cache.simulate(profile.trace(7).take(50_000), UpdateSchedule::Never)?;
/// assert_eq!(out.accesses, 50_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    geometry: CacheGeometry,
    registry: PolicyRegistry,
    policy_name: String,
    replacement_name: String,
    replacement_registry: ReplacementRegistry,
    seed: u64,
}

impl PartitionedCache {
    /// Creates the architecture description from a legacy policy kind.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the geometry has fewer
    /// than 2 banks (the architecture is pointless for a monolith).
    pub fn new(geometry: CacheGeometry, policy: PolicyKind) -> Result<Self, CoreError> {
        Self::new_named(geometry, policy.key(), PolicyRegistry::global().clone())
    }

    /// Creates the architecture with a policy resolved by name from a
    /// registry — the open entry point that admits custom policies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a monolithic
    /// geometry, or [`CoreError::UnknownPolicy`] for an unregistered
    /// policy name.
    pub fn new_named(
        geometry: CacheGeometry,
        policy_name: &str,
        registry: PolicyRegistry,
    ) -> Result<Self, CoreError> {
        if geometry.banks() < 2 {
            return Err(CoreError::InvalidParameter {
                name: "banks",
                value: geometry.banks() as f64,
                expected: "at least 2 banks",
            });
        }
        if registry.get(policy_name).is_none() {
            return Err(CoreError::UnknownPolicy {
                name: policy_name.to_string(),
                known: registry.names().join(", "),
            });
        }
        Ok(Self {
            geometry,
            registry,
            policy_name: policy_name.to_string(),
            replacement_name: DEFAULT_REPLACEMENT.to_string(),
            replacement_registry: ReplacementRegistry::global().clone(),
            seed: 1,
        })
    }

    /// Sets the policy seed (used by the LFSR-backed policies). Seeds
    /// are full `u64`s; see [`crate::registry`] for the derivation
    /// chain.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects a victim-selection (replacement) policy by registry
    /// name, resolved against `registry` — the open entry point that
    /// admits custom replacement policies, mirroring
    /// [`PartitionedCache::new_named`]. Irrelevant for direct-mapped
    /// geometries; the default (`lru`) keeps the historic victim order.
    ///
    /// # Errors
    ///
    /// Returns [`cache_sim::SimError::UnknownReplacement`] (wrapped in
    /// [`CoreError::Sim`]) for an unregistered name.
    pub fn with_replacement(
        mut self,
        name: &str,
        registry: ReplacementRegistry,
    ) -> Result<Self, CoreError> {
        registry.resolve(name)?;
        self.replacement_name = name.to_string();
        self.replacement_registry = registry;
        Ok(self)
    }

    /// The replacement policy's registry name (`lru` by default).
    pub fn replacement_name(&self) -> &str {
        &self.replacement_name
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The indexing policy's registry name.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// Builds a fresh decoder `D` for inspection or custom loops.
    ///
    /// # Errors
    ///
    /// Propagates policy/encoder construction errors.
    pub fn decoder(&self) -> Result<Decoder, CoreError> {
        Decoder::new(self.geometry, self.build_mapping()?)
    }

    fn build_mapping(&self) -> Result<Box<dyn cache_sim::BankMapping>, CoreError> {
        self.registry
            .build(&self.policy_name, self.geometry.banks(), self.seed)
    }

    /// Builds the fully configured per-level [`Simulator`]: geometry,
    /// replacement policy (the `lru` default takes the simulator's
    /// historic built-in path, byte-for-byte) and bank mapping.
    fn build_simulator(&self) -> Result<Simulator, CoreError> {
        let mut config = SimConfig::new(self.geometry)?;
        if self.replacement_name != DEFAULT_REPLACEMENT {
            let policy = self.replacement_registry.resolve(&self.replacement_name)?;
            config = config.with_replacement(Some(policy));
        }
        Ok(Simulator::new(config, self.build_mapping()?)?)
    }

    /// Sizes the Block Control for this geometry (counter widths etc.).
    ///
    /// # Errors
    ///
    /// Propagates power-model errors.
    pub fn block_control(&self) -> Result<BlockControlSpec, CoreError> {
        let cfg = SimConfig::new(self.geometry)?;
        BlockControlSpec::new(self.geometry.banks(), cfg.breakeven())
    }

    /// The Block Selector for this geometry.
    ///
    /// # Errors
    ///
    /// Propagates parameter errors.
    pub fn block_selector(&self) -> Result<BlockSelector, CoreError> {
        BlockSelector::new(self.geometry.banks())
    }

    /// Runs a trace through the power-managed cache, one access at a
    /// time — the reference scalar path.
    ///
    /// Prefer [`PartitionedCache::simulate_batched`] (same results,
    /// bitwise, measurably faster) unless you are benchmarking against
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction/update errors.
    pub fn simulate(
        &self,
        trace: impl IntoIterator<Item = Access>,
        update: UpdateSchedule,
    ) -> Result<SimOutcome, CoreError> {
        let mut sim = self.build_simulator()?;
        for access in trace {
            sim.step(access);
            if let UpdateSchedule::EveryCycles(n) = update {
                if n > 0 && sim.cycles() % n == 0 {
                    sim.update_mapping()?;
                }
            }
        }
        Ok(sim.finish())
    }

    /// Runs a trace through the batched fast path
    /// ([`Simulator::step_batch`]): bitwise-identical outcomes to
    /// [`PartitionedCache::simulate`], with per-access dispatch, power
    /// sweeps and stats updates amortized over fixed-size batches.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction/update errors.
    pub fn simulate_batched(
        &self,
        trace: impl IntoIterator<Item = Access>,
        update: UpdateSchedule,
    ) -> Result<SimOutcome, CoreError> {
        let mut source = IterSource::new(trace.into_iter());
        self.simulate_source(&mut source, None, update)
    }

    /// Streams a [`TraceSource`] through the batched fast path in
    /// constant memory: accesses are pulled in chunks of at most
    /// [`BATCH_ACCESSES`], so multi-gigabyte trace files never
    /// materialize in RAM.
    ///
    /// `limit` caps the number of accesses consumed (mandatory for
    /// infinite synthetic sources); `None` runs the source dry.
    /// Batches are clipped at update-schedule boundaries, so updates
    /// fire on exactly the cycles the scalar path would pick.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction/update errors and trace
    /// decode errors ([`CoreError::Trace`]).
    pub fn simulate_source(
        &self,
        source: &mut dyn TraceSource,
        limit: Option<u64>,
        update: UpdateSchedule,
    ) -> Result<SimOutcome, CoreError> {
        let mut sim = self.build_simulator()?;
        let mut buf: Vec<Access> = Vec::with_capacity(BATCH_ACCESSES);
        let mut remaining = limit;
        loop {
            let mut room = BATCH_ACCESSES as u64;
            if let UpdateSchedule::EveryCycles(n) = update {
                if n > 0 {
                    room = room.min(n - sim.cycles() % n);
                }
            }
            if let Some(rem) = remaining {
                room = room.min(rem);
            }
            if room == 0 {
                break;
            }
            buf.clear();
            let got = source.next_batch(&mut buf, room as usize)?;
            if got == 0 {
                break;
            }
            // `max` is a hard contract: an overshooting source would
            // wrap the remaining-access budget and fire mapping updates
            // on the wrong cycles, so reject it instead of trusting it.
            if got as u64 > room || got != buf.len() {
                return Err(CoreError::Report {
                    message: format!(
                        "trace source violated next_batch contract: \
                         appended {got} accesses (buffer {}) for max {room}",
                        buf.len()
                    ),
                });
            }
            sim.step_batch(&buf);
            if let Some(rem) = &mut remaining {
                *rem -= got as u64;
            }
            if let UpdateSchedule::EveryCycles(n) = update {
                if n > 0 && sim.cycles() % n == 0 {
                    sim.update_mapping()?;
                }
            }
        }
        Ok(sim.finish())
    }

    /// Streams a [`TraceSource`] through a two-level hierarchy built
    /// from `self` (the L1) and `l2`, on the batched fast path: the L2
    /// access stream is exactly the L1 miss stream
    /// ([`CacheHierarchy`]), and the composition is bitwise-identical
    /// to stepping the hierarchy scalar access by access.
    ///
    /// Each level keeps its own policy, seed and replacement; updates
    /// fire on both levels at the same cycle boundaries.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from either level (including an
    /// L2 smaller than the L1), update errors, and trace decode errors.
    pub fn simulate_hierarchy_source(
        &self,
        l2: &PartitionedCache,
        source: &mut dyn TraceSource,
        limit: Option<u64>,
        update: UpdateSchedule,
    ) -> Result<HierarchyOutcome, CoreError> {
        let mut hier = CacheHierarchy::new(self.build_simulator()?, l2.build_simulator()?)?;
        let mut buf: Vec<Access> = Vec::with_capacity(BATCH_ACCESSES);
        let mut remaining = limit;
        loop {
            let mut room = BATCH_ACCESSES as u64;
            if let UpdateSchedule::EveryCycles(n) = update {
                if n > 0 {
                    room = room.min(n - hier.l1().cycles() % n);
                }
            }
            if let Some(rem) = remaining {
                room = room.min(rem);
            }
            if room == 0 {
                break;
            }
            buf.clear();
            let got = source.next_batch(&mut buf, room as usize)?;
            if got == 0 {
                break;
            }
            // Same hard contract as `simulate_source`: an overshooting
            // source would fire updates on the wrong cycles.
            if got as u64 > room || got != buf.len() {
                return Err(CoreError::Report {
                    message: format!(
                        "trace source violated next_batch contract: \
                         appended {got} accesses (buffer {}) for max {room}",
                        buf.len()
                    ),
                });
            }
            hier.step_batch(&buf);
            if let Some(rem) = &mut remaining {
                *rem -= got as u64;
            }
            if let UpdateSchedule::EveryCycles(n) = update {
                if n > 0 && hier.l1().cycles() % n == 0 {
                    hier.update_mapping()?;
                }
            }
        }
        Ok(hier.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::suite;

    fn arch(policy: PolicyKind) -> PartitionedCache {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        PartitionedCache::new(geom, policy).unwrap()
    }

    #[test]
    fn rejects_monolithic_geometry() {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 1).unwrap();
        assert!(PartitionedCache::new(geom, PolicyKind::Identity).is_err());
    }

    #[test]
    fn miss_rate_identical_across_policies_without_updates() {
        // Between updates every policy is a fixed bijection, so hit/miss
        // behaviour must be identical (paper: no miss-rate degradation).
        let profile = suite::by_name("dijkstra").unwrap();
        let mut rates = Vec::new();
        for kind in PolicyKind::ALL {
            let out = arch(kind)
                .simulate(profile.trace(3).take(100_000), UpdateSchedule::Never)
                .unwrap();
            out.validate().unwrap();
            rates.push(out.miss_rate());
        }
        assert_eq!(rates[0], rates[1]);
        assert_eq!(rates[0], rates[2]);
    }

    #[test]
    fn frequent_updates_cost_bounded_misses() {
        let profile = suite::by_name("CRC32").unwrap();
        let baseline = arch(PolicyKind::Probing)
            .simulate(profile.trace(3).take(100_000), UpdateSchedule::Never)
            .unwrap();
        let updated = arch(PolicyKind::Probing)
            .simulate(
                profile.trace(3).take(100_000),
                UpdateSchedule::EveryCycles(10_000),
            )
            .unwrap();
        assert_eq!(updated.updates, 10);
        // Each update costs at most one refill of the cache's live lines.
        let max_extra = updated.updates * baseline.per_bank.len() as u64 * 256;
        assert!(updated.misses <= baseline.misses + max_extra);
        assert!(
            updated.misses > baseline.misses,
            "flushes must cost something on a cache-resident workload"
        );
    }

    #[test]
    fn hardware_specs_materialize() {
        let a = arch(PolicyKind::Scrambling);
        let ctl = a.block_control().unwrap();
        assert!(ctl.in_paper_regime());
        let sel = a.block_selector().unwrap();
        assert_eq!(sel.banks(), 4);
        let dec = a.decoder().unwrap();
        assert_eq!(dec.geometry().banks(), 4);
    }
}
