//! The paper's tables as [`StudySpec`] presets.
//!
//! Each preset is a handful of axis declarations over the generic grid
//! runner — the entire "runner" the old hardcoded `tableN` functions
//! used to be. Rendering lives in [`crate::views`], which are pure
//! functions of the resulting [`StudyReport`](crate::study::StudyReport).
//!
//! All presets pin the policy seed to `1` (the historic LFSR seed) so
//! the measured values match the pre-redesign runners bit-for-bit.
//!
//! # Examples
//!
//! Regenerating a paper table is preset → run → view:
//!
//! ```no_run
//! use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
//! use aging_cache::{presets, views};
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let cfg = ExperimentConfig::paper_reference(); // 16 kB, 16 B, M = 4
//! let ctx = ExperimentContext::new()?;
//! let report = presets::table2(&cfg).run(&ctx)?;
//! println!("{}", views::table2(&report)?);
//! # Ok(())
//! # }
//! ```
//!
//! A preset is an ordinary [`StudySpec`], so axes can be overridden
//! before running — e.g. Table II on a trace file instead of the
//! synthetic suite:
//!
//! ```no_run
//! # use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
//! # use aging_cache::presets;
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! # let cfg = ExperimentConfig::paper_reference();
//! # let ctx = ExperimentContext::new()?;
//! let report = presets::table2(&cfg)
//!     .workload_names(["csv:/traces/my_app.csv"])?
//!     .run(&ctx)?;
//! # Ok(())
//! # }
//! ```

use crate::experiment::ExperimentConfig;
use crate::study::StudySpec;

fn base(name: &str, cfg: &ExperimentConfig) -> StudySpec {
    cfg.study(name)
}

/// **Table I** — idleness distribution at the configured geometry,
/// full suite, Probing.
pub fn table1(cfg: &ExperimentConfig) -> StudySpec {
    base("Table I", cfg).policies(["probing"])
}

/// **Table II** — Esav / LT0 / LT vs cache size (8/16/32 kB).
pub fn table2(cfg: &ExperimentConfig) -> StudySpec {
    base("Table II", cfg)
        .cache_kb([8, 16, 32])
        .policies(["probing"])
}

/// **Table III** — Esav / LT vs line size (16/32 B at 16 kB).
pub fn table3(cfg: &ExperimentConfig) -> StudySpec {
    base("Table III", cfg)
        .cache_kb([16])
        .line_bytes([16, 32])
        .policies(["probing"])
}

/// **Table IV** — idleness / LT over the (size × banks) grid.
pub fn table4(cfg: &ExperimentConfig) -> StudySpec {
    base("Table IV", cfg)
        .cache_kb([8, 16, 32])
        .banks([2, 4, 8])
        .policies(["probing"])
}

/// §IV-B1 headline claims — the Table II grid under another name.
pub fn claims(cfg: &ExperimentConfig) -> StudySpec {
    table2(cfg)
}

/// §IV-B2 — Probing vs Scrambling on every benchmark.
pub fn policy_equivalence(cfg: &ExperimentConfig) -> StudySpec {
    base("Probing vs Scrambling", cfg).policies(["probing", "scrambling"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_to_expected_grid_sizes() {
        let cfg = ExperimentConfig::paper_reference();
        assert_eq!(table1(&cfg).expand().unwrap().len(), 18);
        assert_eq!(table2(&cfg).expand().unwrap().len(), 3 * 18);
        assert_eq!(table3(&cfg).expand().unwrap().len(), 2 * 18);
        assert_eq!(table4(&cfg).expand().unwrap().len(), 9 * 18);
        assert_eq!(policy_equivalence(&cfg).expand().unwrap().len(), 2 * 18);
    }

    #[test]
    fn presets_keep_the_historic_seeds() {
        let cfg = ExperimentConfig::paper_reference();
        let grid = table2(&cfg).expand().unwrap();
        for s in grid.scenarios() {
            assert_eq!(s.trace_seed, cfg.seed + s.workload_index as u64);
            assert_eq!(s.policy_seed, 1);
        }
    }
}
