//! The paper's tables as [`StudySpec`] presets.
//!
//! Each preset is a handful of axis declarations over the generic grid
//! runner — the entire "runner" the old hardcoded `tableN` functions
//! used to be. Rendering lives in [`crate::views`], which are pure
//! functions of the resulting [`StudyReport`](crate::study::StudyReport).
//!
//! All presets pin the policy seed to `1` (the historic LFSR seed) so
//! the measured values match the pre-redesign runners bit-for-bit.
//!
//! # Examples
//!
//! Regenerating a paper table is preset → run → view:
//!
//! ```no_run
//! use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
//! use aging_cache::{presets, views};
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let cfg = ExperimentConfig::paper_reference(); // 16 kB, 16 B, M = 4
//! let ctx = ExperimentContext::new()?;
//! let report = presets::table2(&cfg).run(&ctx)?;
//! println!("{}", views::table2(&report)?);
//! # Ok(())
//! # }
//! ```
//!
//! A preset is an ordinary [`StudySpec`], so axes can be overridden
//! before running — e.g. Table II on a trace file instead of the
//! synthetic suite:
//!
//! ```no_run
//! # use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
//! # use aging_cache::presets;
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! # let cfg = ExperimentConfig::paper_reference();
//! # let ctx = ExperimentContext::new()?;
//! let report = presets::table2(&cfg)
//!     .workload_names(["csv:/traces/my_app.csv"])?
//!     .run(&ctx)?;
//! # Ok(())
//! # }
//! ```

use crate::experiment::ExperimentConfig;
use crate::study::StudySpec;

fn base(name: &str, cfg: &ExperimentConfig) -> StudySpec {
    cfg.study(name)
}

/// **Table I** — idleness distribution at the configured geometry,
/// full suite, Probing.
pub fn table1(cfg: &ExperimentConfig) -> StudySpec {
    base("Table I", cfg).policies(["probing"])
}

/// **Table II** — Esav / LT0 / LT vs cache size (8/16/32 kB).
pub fn table2(cfg: &ExperimentConfig) -> StudySpec {
    base("Table II", cfg)
        .cache_kb([8, 16, 32])
        .policies(["probing"])
}

/// **Table III** — Esav / LT vs line size (16/32 B at 16 kB).
pub fn table3(cfg: &ExperimentConfig) -> StudySpec {
    base("Table III", cfg)
        .cache_kb([16])
        .line_bytes([16, 32])
        .policies(["probing"])
}

/// **Table IV** — idleness / LT over the (size × banks) grid.
pub fn table4(cfg: &ExperimentConfig) -> StudySpec {
    base("Table IV", cfg)
        .cache_kb([8, 16, 32])
        .banks([2, 4, 8])
        .policies(["probing"])
}

/// §IV-B1 headline claims — the Table II grid under another name.
pub fn claims(cfg: &ExperimentConfig) -> StudySpec {
    table2(cfg)
}

/// §IV-B2 — Probing vs Scrambling on every benchmark.
pub fn policy_equivalence(cfg: &ExperimentConfig) -> StudySpec {
    base("Probing vs Scrambling", cfg).policies(["probing", "scrambling"])
}

/// Ablation — operating temperature: the reference model swept over
/// the Arrhenius range on the
/// [`StudySpec::temps_c`] axis, driven by the historic pinned
/// idleness profile (NBTI rates scale uniformly with temperature, so
/// the re-indexing gain is temperature-invariant).
pub fn ablation_temperature() -> StudySpec {
    StudySpec::new("Ablation: operating temperature")
        .models(["nbti-45nm"])
        .temps_c([45.0, 65.0, 85.0, 105.0, 125.0])
        .policies(["probing"])
        .workload_names(["profile:0.1,0.8,0.6,0.3"])
        .expect("static profile key")
        .policy_seed(1)
}

/// Ablation — the drowsy-voltage design knob: lifetime (`nbti` model)
/// and fresh/aged retention margins (`drv` model) swept together over
/// the [`StudySpec::vdd_low`] axis, on the historic sha-like pinned
/// profile, bracketing the paper's 0.75 V choice.
pub fn ablation_vlow() -> StudySpec {
    StudySpec::new("Ablation: drowsy rail voltage")
        .models(["nbti-45nm", "drv"])
        .vdd_low([0.55, 0.65, 0.75, 0.85, 0.95])
        .policies(["probing"])
        .workload_names(["profile:0.05,0.95,0.9,0.4"])
        .expect("static profile key")
        .policy_seed(1)
}

/// Extension — process variation × NBTI: `variation:<sigma>`
/// Monte-Carlo/extreme-value models over the mismatch-sigma range, on
/// a pinned profile whose busiest bank is always-on (the historic
/// "busy" rate) and whose mean sleep is the suite-average 42 %.
pub fn variation_study() -> StudySpec {
    StudySpec::new("Process variation x NBTI")
        .models([
            "variation:0",
            "variation:15",
            "variation:30",
            "variation:45",
        ])
        .policies(["probing"])
        .workload_names(["profile:0,0.56,0.56,0.56"])
        .expect("static profile key")
        .policy_seed(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_to_expected_grid_sizes() {
        let cfg = ExperimentConfig::paper_reference();
        assert_eq!(table1(&cfg).expand().unwrap().len(), 18);
        assert_eq!(table2(&cfg).expand().unwrap().len(), 3 * 18);
        assert_eq!(table3(&cfg).expand().unwrap().len(), 2 * 18);
        assert_eq!(table4(&cfg).expand().unwrap().len(), 9 * 18);
        assert_eq!(policy_equivalence(&cfg).expand().unwrap().len(), 2 * 18);
        assert_eq!(ablation_temperature().expand().unwrap().len(), 5);
        assert_eq!(ablation_vlow().expand().unwrap().len(), 2 * 5);
        assert_eq!(variation_study().expand().unwrap().len(), 4);
    }

    #[test]
    fn ablation_presets_compose_canonical_model_keys() {
        let grid = ablation_vlow().expand().unwrap();
        let models: Vec<&str> = grid.scenarios().iter().map(|s| s.model.as_str()).collect();
        // The paper's 0.75 V point canonicalizes back to the reference
        // keys, so those two scenarios share the default calibrations.
        assert!(models.contains(&"nbti-45nm"));
        assert!(models.contains(&"drv"));
        assert!(models.contains(&"nbti:vlow=0.55"));
        assert!(models.contains(&"drv:vlow=0.95"));

        let temps = ablation_temperature().expand().unwrap();
        assert!(temps
            .scenarios()
            .iter()
            .all(|s| s.model.starts_with("nbti:temp=")));
    }

    #[test]
    fn presets_keep_the_historic_seeds() {
        let cfg = ExperimentConfig::paper_reference();
        let grid = table2(&cfg).expand().unwrap();
        for s in grid.scenarios() {
            assert_eq!(s.trace_seed, cfg.seed + s.workload_index as u64);
            assert_eq!(s.policy_seed, 1);
        }
    }
}
