//! The open, string-keyed indexing-policy registry.
//!
//! The paper evaluates three indexing functions, and the original
//! reproduction froze them into a closed [`PolicyKind`](crate::policy::PolicyKind)
//! enum. Related work varies exactly this axis — decoder-level
//! rejuvenation policies (Gürsoy et al.) and utilization-aware allocation
//! (Brandalero et al.) are alternative bijections over the bank-select
//! bits — so the registry makes the axis open: any [`IndexingPolicy`]
//! factory can be registered under a name and then referenced from a
//! [`StudySpec`](crate::study::StudySpec) like the built-ins.
//!
//! # Seed derivation
//!
//! Policy construction takes a full `u64` seed (the old API bottlenecked
//! on `u16`). The documented derivation chain is:
//!
//! 1. **base seed** — one `u64` per study ([`StudySpec::base_seed`](crate::study::StudySpec::base_seed));
//! 2. **per-scenario** — [`derive_policy_seed`] mixes the base seed with
//!    the scenario id and the policy name through a SplitMix64
//!    finalizer, so every grid point gets an independent stream;
//! 3. **per-policy** — policies that need a narrow seed (the 16-bit
//!    LFSRs) fold the `u64` down with [`fold_seed`], which is the
//!    identity on values `<= u16::MAX`. Historic results used small
//!    literal seeds, so they are reproduced bit-for-bit.
//!
//! # Examples
//!
//! Registering a custom policy from user code:
//!
//! ```
//! use aging_cache::registry::PolicyRegistry;
//! use cache_sim::mapping::is_bijective;
//!
//! # fn main() -> Result<(), aging_cache::CoreError> {
//! let mut registry = PolicyRegistry::builtin();
//! // A bit-reversal policy: reverses the p bank-select bits.
//! registry.register_fn("bit-reverse", "reverses the bank-select bits", |banks, _seed| {
//!     let p = banks.trailing_zeros();
//!     Ok(Box::new(cache_sim::mapping::FnMapping::new(move |logical, _| {
//!         logical.reverse_bits() >> (32 - p)
//!     })))
//! })?;
//! let mapping = registry.build("bit-reverse", 8, 42)?;
//! assert!(is_bijective(mapping.as_ref(), 8));
//! # Ok(())
//! # }
//! ```

use crate::error::CoreError;
use crate::policy::{GrayRotation, Probing, RotateXor, Scrambling};
use cache_sim::{BankMapping, IdentityMapping};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named factory for bank-indexing functions.
///
/// Implementations must return a [`BankMapping`] that is a bijection over
/// `0..banks` after any number of `update` calls; the Study API's
/// property tests enforce this for every registered policy.
pub trait IndexingPolicy: Send + Sync {
    /// The registry key (stable, lowercase, kebab-case by convention).
    fn name(&self) -> &str;

    /// One-line human-readable description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// Instantiates the policy for `banks` banks from a `u64` seed.
    ///
    /// # Errors
    ///
    /// Implementations should reject unsupported geometries (the
    /// built-ins require a power-of-two bank count of at least 2).
    fn build(&self, banks: u32, seed: u64) -> Result<Box<dyn BankMapping>, CoreError>;
}

/// Folds a `u64` seed into the `u16` range used by the LFSR-backed
/// policies, by XOR-ing the four 16-bit limbs.
///
/// The fold is the identity on values that already fit in 16 bits, which
/// keeps historic results (seeded with small literals) reproducible.
pub fn fold_seed(seed: u64) -> u16 {
    (seed ^ (seed >> 16) ^ (seed >> 32) ^ (seed >> 48)) as u16
}

/// SplitMix64 finalizer (Stafford variant 13) — the mixing primitive for
/// seed derivation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a policy name, for the per-policy seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the per-scenario, per-policy seed from a study's base seed.
///
/// `derive_policy_seed(base, id, name)` is deterministic in its inputs
/// and statistically independent across scenario ids and policy names
/// (two rounds of SplitMix64 finalization over the mixed inputs).
pub fn derive_policy_seed(base_seed: u64, scenario_id: u64, policy_name: &str) -> u64 {
    mix64(mix64(base_seed ^ hash_name(policy_name)).wrapping_add(scenario_id))
}

struct FnPolicy<F> {
    name: String,
    description: String,
    build: F,
}

impl<F> IndexingPolicy for FnPolicy<F>
where
    F: Fn(u32, u64) -> Result<Box<dyn BankMapping>, CoreError> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn build(&self, banks: u32, seed: u64) -> Result<Box<dyn BankMapping>, CoreError> {
        (self.build)(banks, seed)
    }
}

/// The string-keyed policy registry.
///
/// Keys are ordered (a `BTreeMap`), so listings and expanded grids are
/// deterministic regardless of registration order.
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    entries: BTreeMap<String, Arc<dyn IndexingPolicy>>,
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("policies", &self.names())
            .finish()
    }
}

impl PolicyRegistry {
    /// An empty registry (no policies at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A shared, immutable instance of [`PolicyRegistry::builtin`] for
    /// hot paths that would otherwise rebuild the map per call.
    pub fn global() -> &'static PolicyRegistry {
        static GLOBAL: std::sync::OnceLock<PolicyRegistry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(PolicyRegistry::builtin)
    }

    /// The registry with the five built-in policies: `identity`,
    /// `probing`, `scrambling` (the paper's three), plus `gray` and
    /// `rotate-xor` (openness proofs — see [`crate::policy`]).
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_fn(
            "identity",
            "no re-indexing: the paper's power-managed LT0 baseline",
            |_banks, _seed| Ok(Box::new(IdentityMapping)),
        )
        .expect("fresh registry");
        r.register_fn(
            "probing",
            "modular-increment rotation (paper Fig. 3a, optimal)",
            |banks, _seed| Ok(Box::new(Probing::new(banks)?)),
        )
        .expect("fresh registry");
        r.register_fn(
            "scrambling",
            "LFSR-XOR masking (paper Fig. 3b, asymptotically optimal)",
            |banks, seed| Ok(Box::new(Scrambling::new(banks, fold_seed(seed))?)),
        )
        .expect("fresh registry");
        r.register_fn(
            "gray",
            "Gray-coded rotation: single-bit remap transitions per update",
            |banks, _seed| Ok(Box::new(GrayRotation::new(banks)?)),
        )
        .expect("fresh registry");
        r.register_fn(
            "rotate-xor",
            "rotation + LFSR-XOR hybrid of probing and scrambling",
            |banks, seed| Ok(Box::new(RotateXor::new(banks, fold_seed(seed))?)),
        )
        .expect("fresh registry");
        r
    }

    /// Registers a policy object. Fails if the name is already taken.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicatePolicy`] on a name collision.
    pub fn register(&mut self, policy: Arc<dyn IndexingPolicy>) -> Result<(), CoreError> {
        let name = policy.name().to_string();
        if self.entries.contains_key(&name) {
            return Err(CoreError::DuplicatePolicy { name });
        }
        self.entries.insert(name, policy);
        Ok(())
    }

    /// Registers a policy from a closure — the one-liner path for user
    /// code and examples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicatePolicy`] on a name collision.
    pub fn register_fn<F>(
        &mut self,
        name: &str,
        description: &str,
        build: F,
    ) -> Result<(), CoreError>
    where
        F: Fn(u32, u64) -> Result<Box<dyn BankMapping>, CoreError> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnPolicy {
            name: name.to_string(),
            description: description.to_string(),
            build,
        }))
    }

    /// Looks up a policy by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn IndexingPolicy>> {
        self.entries.get(name)
    }

    /// Instantiates a named policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownPolicy`] for an unregistered name, or
    /// the policy's own construction error.
    pub fn build(
        &self,
        name: &str,
        banks: u32,
        seed: u64,
    ) -> Result<Box<dyn BankMapping>, CoreError> {
        match self.entries.get(name) {
            Some(policy) => policy.build(banks, seed),
            None => Err(CoreError::UnknownPolicy {
                name: name.to_string(),
                known: self.names().join(", "),
            }),
        }
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, policy)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<dyn IndexingPolicy>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::mapping::is_bijective;

    #[test]
    fn builtin_has_five_policies() {
        let r = PolicyRegistry::builtin();
        assert_eq!(
            r.names(),
            vec!["gray", "identity", "probing", "rotate-xor", "scrambling"]
        );
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn every_builtin_builds_bijective_mappings() {
        let r = PolicyRegistry::builtin();
        for (name, _) in r.iter() {
            let mut m = r.build(name, 8, 12345).unwrap();
            for step in 0..40 {
                assert!(
                    is_bijective(m.as_ref(), 8),
                    "{name} broke bijectivity at step {step}"
                );
                m.update();
            }
        }
    }

    #[test]
    fn unknown_policy_reports_known_names() {
        let r = PolicyRegistry::builtin();
        let e = r.build("nope", 4, 0).err().expect("must fail");
        let text = e.to_string();
        assert!(text.contains("nope"), "{text}");
        assert!(text.contains("probing"), "{text}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = PolicyRegistry::builtin();
        let e = r
            .register_fn("probing", "clash", |_b, _s| Ok(Box::new(IdentityMapping)))
            .unwrap_err();
        assert!(matches!(e, CoreError::DuplicatePolicy { .. }));
    }

    #[test]
    fn fold_seed_is_identity_below_u16() {
        assert_eq!(fold_seed(0), 0);
        assert_eq!(fold_seed(1), 1);
        assert_eq!(fold_seed(0xFFFF), 0xFFFF);
        assert_eq!(fold_seed(0x1_0001), 0); // limbs cancel
        assert_ne!(fold_seed(0xdead_beef_cafe_f00d), 0);
    }

    #[test]
    fn derived_seeds_differ_across_axes() {
        let a = derive_policy_seed(1000, 0, "scrambling");
        let b = derive_policy_seed(1000, 1, "scrambling");
        let c = derive_policy_seed(1000, 0, "rotate-xor");
        let d = derive_policy_seed(1001, 0, "scrambling");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Deterministic.
        assert_eq!(a, derive_policy_seed(1000, 0, "scrambling"));
    }

    #[test]
    fn custom_registration_resolves_by_name() {
        let mut r = PolicyRegistry::empty();
        r.register_fn("flip", "XOR with all-ones", |banks, _| {
            let mask = banks - 1;
            Ok(Box::new(cache_sim::mapping::FnMapping::new(
                move |logical, _| logical ^ mask,
            )))
        })
        .unwrap();
        let m = r.build("flip", 4, 0).unwrap();
        assert_eq!(m.map_bank(0, 4), 3);
        assert!(is_bijective(m.as_ref(), 4));
    }
}
