//! Cost of the NBTI characterization pieces: VTC sampling, butterfly SNM
//! extraction, a full calibrated lifetime solve, LUT construction and the
//! LUT lookup the cache simulator actually pays per query.

use criterion::{criterion_group, criterion_main, Criterion};
use nbti_model::{
    AgingLut, CellDesign, LifetimeSolver, ReadInverter, SleepMode, SnmSolver, StressProfile,
    VtcSolver,
};
use std::hint::black_box;

fn bench_vtc(c: &mut Criterion) {
    let design = CellDesign::default_45nm();
    let inv = ReadInverter::from_design(&design, 0.02);
    c.bench_function("nbti/vtc_sample_161", |b| {
        b.iter(|| VtcSolver::sample(black_box(&inv), 161).expect("vtc"))
    });
}

fn bench_snm(c: &mut Criterion) {
    let design = CellDesign::default_45nm();
    let solver = SnmSolver::new();
    let i1 = ReadInverter::from_design(&design, 0.03);
    let i2 = ReadInverter::from_design(&design, 0.01);
    c.bench_function("nbti/snm_extract", |b| {
        b.iter(|| solver.extract(black_box(&i1), black_box(&i2)).expect("snm"))
    });
}

fn bench_lifetime_solve(c: &mut Criterion) {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver");
    let profile = StressProfile::new(0.5, 0.42, SleepMode::VoltageScaled).expect("profile");
    c.bench_function("nbti/lifetime_solve", |b| {
        b.iter(|| solver.lifetime_years(black_box(&profile)).expect("lifetime"))
    });
}

fn bench_lut(c: &mut Criterion) {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver");
    c.bench_function("nbti/lut_build_9x9", |b| {
        b.iter(|| {
            AgingLut::build(&solver, SleepMode::VoltageScaled, 9, 9, 500.0).expect("lut")
        })
    });
    let lut = AgingLut::build(&solver, SleepMode::VoltageScaled, 17, 17, 500.0).expect("lut");
    c.bench_function("nbti/lut_lookup", |b| {
        let mut x = 0.1f64;
        b.iter(|| {
            x = (x + 0.013) % 0.99;
            black_box(lut.lifetime_years(black_box(0.5), black_box(x)).expect("lookup"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_vtc, bench_snm, bench_lifetime_solve, bench_lut
}
criterion_main!(benches);
