//! Cost of the NBTI characterization pieces: VTC sampling, butterfly SNM
//! extraction, a full calibrated lifetime solve, LUT construction and the
//! LUT lookup the cache simulator actually pays per query.

use nbti_model::{
    AgingLut, CellDesign, LifetimeSolver, ReadInverter, SleepMode, SnmSolver, StressProfile,
    VtcSolver,
};
use repro_bench::harness::Harness;
use std::hint::black_box;

fn main() {
    let design = CellDesign::default_45nm();
    let mut g = Harness::new("nbti");

    let inv = ReadInverter::from_design(&design, 0.02);
    g.bench("vtc_sample_161", || {
        VtcSolver::sample(black_box(&inv), 161).expect("vtc")
    });

    let snm = SnmSolver::new();
    let i1 = ReadInverter::from_design(&design, 0.03);
    let i2 = ReadInverter::from_design(&design, 0.01);
    g.bench("snm_extract", || {
        snm.extract(black_box(&i1), black_box(&i2)).expect("snm")
    });

    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver");
    let profile = StressProfile::new(0.5, 0.42, SleepMode::VoltageScaled).expect("profile");
    g.bench("lifetime_solve", || {
        solver
            .lifetime_years(black_box(&profile))
            .expect("lifetime")
    });

    g.bench("lut_build_9x9", || {
        AgingLut::build(&solver, SleepMode::VoltageScaled, 9, 9, 500.0).expect("lut")
    });

    let lut = AgingLut::build(&solver, SleepMode::VoltageScaled, 17, 17, 500.0).expect("lut");
    let mut x = 0.1f64;
    g.bench("lut_lookup", || {
        x = (x + 0.013) % 0.99;
        black_box(
            lut.lifetime_years(black_box(0.5), black_box(x))
                .expect("lookup"),
        )
    });
}
