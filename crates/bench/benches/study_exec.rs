//! Execution-layer benchmark: the Table II preset, cold vs warm
//! result cache, through the `StudySession` front door.
//!
//! Unlike the micro-benches, the unit of work here is a whole study
//! (54 scenarios at the harness trace horizon), so this bench times
//! single runs instead of looping a closure — and writes the
//! machine-readable baseline `BENCH_study.json` (scenarios/sec plus
//! cold and warm-cache wall times) next to the working directory, via
//! [`repro_bench::harness::write_baseline`].
//!
//! `cargo bench -p repro-bench --bench study_exec`

use aging_cache::presets;
use aging_cache::rescache::MemoryCache;
use repro_bench::harness::write_baseline;
use repro_bench::{default_config, session};
use std::time::Instant;

fn main() {
    let cfg = default_config();
    let spec = presets::table2(&cfg);
    let session = session().cache(MemoryCache::new());

    // Cold: every scenario simulates and evaluates (modulo the
    // in-grid memo the historic runner always had).
    let t = Instant::now();
    let cold_report = session.run(&spec).expect("cold run");
    let cold_s = t.elapsed().as_secs_f64();
    let scenarios = cold_report.records().len();

    // Warm: every scenario replays from the result cache.
    let t = Instant::now();
    let warm_report = session.run(&spec).expect("warm run");
    let warm_s = t.elapsed().as_secs_f64();

    assert_eq!(
        warm_report.to_json(),
        cold_report.to_json(),
        "a warm replay must be byte-identical"
    );
    let stats = session.stats();
    assert_eq!(stats.cache_hits, scenarios, "warm run must be all hits");

    println!();
    println!("benchmark group: study_exec (Table II preset, {scenarios} scenarios)");
    println!("{:<32} {:>12} {:>18}", "name", "wall", "throughput");
    println!("{}", "-".repeat(64));
    for (name, secs) in [("cold", cold_s), ("warm-cache", warm_s)] {
        println!(
            "{:<32} {:>9.3} s {:>14.1} scen/s",
            format!("study_exec/{name}"),
            secs,
            scenarios as f64 / secs
        );
    }

    // Anchor the baseline at the workspace root regardless of the
    // working directory cargo bench chooses.
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_study.json");
    write_baseline(
        baseline,
        "study_exec",
        &[
            ("scenarios", scenarios as f64),
            ("cold_wall_s", cold_s),
            ("warm_wall_s", warm_s),
            ("cold_scenarios_per_s", scenarios as f64 / cold_s),
            ("warm_scenarios_per_s", scenarios as f64 / warm_s),
            ("warm_speedup", cold_s / warm_s),
            ("simulations_cold", stats.simulations as f64),
        ],
    )
    .expect("write BENCH_study.json");
    println!("\nwrote {baseline}");
}
