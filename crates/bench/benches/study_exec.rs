//! Execution-layer benchmark: the Table II preset, cold vs warm
//! result cache — and a cold *multi-process* run sharded across two
//! worker processes — through the `StudySession` front door.
//!
//! Unlike the micro-benches, the unit of work here is a whole study
//! (54 scenarios at the harness trace horizon), so this bench times
//! single runs instead of looping a closure — and writes the
//! machine-readable baseline `BENCH_study.json` (scenarios/sec plus
//! cold, warm-cache and multi-process wall times) next to the working
//! directory, via [`repro_bench::harness::write_baseline`].
//!
//! `cargo bench -p repro-bench --bench study_exec`

use aging_cache::exec::{ExecOptions, ProcessOptions, WorkerCommand};
use aging_cache::presets;
use aging_cache::rescache::{JsonlCache, MemoryCache};
use repro_bench::harness::write_baseline;
use repro_bench::{default_config, session};
use std::time::Instant;

fn main() {
    let cfg = default_config();
    let spec = presets::table2(&cfg);
    let session = session().cache(MemoryCache::new());

    // Cold: every scenario simulates and evaluates (modulo the
    // in-grid memo the historic runner always had).
    let t = Instant::now();
    let cold_report = session.run(&spec).expect("cold run");
    let cold_s = t.elapsed().as_secs_f64();
    let scenarios = cold_report.records().len();

    // Warm: every scenario replays from the result cache.
    let t = Instant::now();
    let warm_report = session.run(&spec).expect("warm run");
    let warm_s = t.elapsed().as_secs_f64();

    assert_eq!(
        warm_report.to_json(),
        cold_report.to_json(),
        "a warm replay must be byte-identical"
    );
    let stats = session.stats();
    assert_eq!(stats.cache_hits, scenarios, "warm run must be all hits");

    // Multi-process cold: the same grid sharded across two worker
    // processes (the `study` binary in `--worker` mode) coordinated
    // through a fresh on-disk journal, then replayed by the
    // coordinator. Byte-identical, like every other backend.
    let dir = std::env::temp_dir().join(format!("nbti-bench-mp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench cache dir");
    // Pin the small-grid fallback off: this row *measures* the
    // process-backend overhead the fallback exists to avoid.
    let mut mp_popts =
        ProcessOptions::new(&dir, 2, WorkerCommand::new(env!("CARGO_BIN_EXE_study"), []));
    mp_popts.fallback_threshold = 0;
    let mp_session = repro_bench::session()
        .cache(JsonlCache::in_dir(&dir).expect("open bench journal"))
        .exec(ExecOptions::process(mp_popts));
    let t = Instant::now();
    let mp_report = mp_session.run(&spec).expect("multi-process cold run");
    let mp_cold_s = t.elapsed().as_secs_f64();
    assert_eq!(
        mp_report.to_json(),
        cold_report.to_json(),
        "a multi-process run must be byte-identical"
    );
    assert_eq!(
        mp_session.stats().evaluations,
        0,
        "the coordinator must replay, not compute"
    );
    std::fs::remove_dir_all(&dir).expect("remove bench cache dir");

    println!();
    println!("benchmark group: study_exec (Table II preset, {scenarios} scenarios)");
    println!("{:<32} {:>12} {:>18}", "name", "wall", "throughput");
    println!("{}", "-".repeat(64));
    for (name, secs) in [
        ("cold", cold_s),
        ("warm-cache", warm_s),
        ("mp-cold-2-workers", mp_cold_s),
    ] {
        println!(
            "{:<32} {:>9.3} s {:>14.1} scen/s",
            format!("study_exec/{name}"),
            secs,
            scenarios as f64 / secs
        );
    }

    // Anchor the baseline at the workspace root regardless of the
    // working directory cargo bench chooses.
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_study.json");
    write_baseline(
        baseline,
        "study_exec",
        &[
            ("scenarios", scenarios as f64),
            ("cold_wall_s", cold_s),
            ("warm_wall_s", warm_s),
            ("cold_scenarios_per_s", scenarios as f64 / cold_s),
            ("warm_scenarios_per_s", scenarios as f64 / warm_s),
            ("warm_speedup", cold_s / warm_s),
            ("mp_cold_wall_s", mp_cold_s),
            ("mp_cold_scenarios_per_s", scenarios as f64 / mp_cold_s),
            ("simulations_cold", stats.simulations as f64),
        ],
    )
    .expect("write BENCH_study.json");
    println!("\nwrote {baseline}");
}
