//! Serving-layer benchmark: warm-cache request latency and
//! throughput through the real HTTP surface — a [`StudyServer`] over
//! the Table II grid, driven by a keep-alive client connection.
//!
//! Like `study_exec`, the unit of work is too coarse for the
//! micro-harness: this bench times individual request round-trips,
//! reports the p50/p90 served-warm latency and sustained requests/s,
//! and merges its rows into the shared `BENCH_study.json` baseline.
//!
//! `cargo bench -p repro-bench --bench study_serve`

use aging_cache::rescache::MemoryCache;
use aging_cache::serve::{ServeOptions, StudyServer};
use repro_bench::harness::write_baseline;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// The Table II sweep at the exec-bench trace horizon, as the serve
/// query grammar (54 scenarios; the warm path this bench measures is
/// trace-length independent, so the short horizon only cheapens the
/// one-time warm-up).
const SPEC_QUERY: &str = "cache-kb=8,16,32&policies=probing&workloads=all&trace-cycles=40000";

/// How many warm requests to measure.
const REQUESTS: usize = 400;

/// One round-trip on a persistent connection: write the request, read
/// status line + headers, then exactly `Content-Length` body bytes.
fn roundtrip(stream: &mut TcpStream, method: &str, target: &str) -> (u16, usize) {
    let head = format!("{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write request");

    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric content-length");
    let mut body_have = buf.len() - head_len - 4;
    while body_have < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "server closed mid-body");
        body_have += n;
    }
    (status, content_length)
}

fn main() {
    let server =
        StudyServer::bind(MemoryCache::new(), ServeOptions::default()).expect("bind server");
    let addr = server.addr();
    let handle = server.shutdown_handle();

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve());

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");

        // Warm-up: one /run computes the whole grid; everything after
        // is pure cache replay + render.
        let t = Instant::now();
        let (status, _) = roundtrip(&mut stream, "POST", &format!("/run?{SPEC_QUERY}"));
        assert_eq!(status, 200, "warm-up run failed");
        let warmup_s = t.elapsed().as_secs_f64();

        // Measured: REQUESTS warm renders over the one keep-alive
        // connection, timed individually for the latency quantiles.
        let target = format!("/render?{SPEC_QUERY}&format=md");
        let mut latencies_s: Vec<f64> = Vec::with_capacity(REQUESTS);
        let mut body_bytes = 0usize;
        let total_t = Instant::now();
        for _ in 0..REQUESTS {
            let t = Instant::now();
            let (status, len) = roundtrip(&mut stream, "GET", &target);
            latencies_s.push(t.elapsed().as_secs_f64());
            assert_eq!(status, 200);
            body_bytes = len;
        }
        let total_s = total_t.elapsed().as_secs_f64();
        drop(stream);

        let sims = server.session().stats().simulations;
        handle.store(true, Ordering::SeqCst);
        serving.join().expect("serve thread").expect("serve");

        latencies_s.sort_by(|a, b| a.total_cmp(b));
        let quantile = |q: f64| latencies_s[((latencies_s.len() - 1) as f64 * q) as usize];
        let p50 = quantile(0.5);
        let p90 = quantile(0.9);
        let rps = REQUESTS as f64 / total_s;

        println!();
        println!("benchmark group: study_serve (Table II preset, warm, keep-alive)");
        println!("{:<32} {:>14}", "name", "value");
        println!("{}", "-".repeat(48));
        println!("{:<32} {:>11.3} s", "study_serve/warmup-run", warmup_s);
        println!("{:<32} {:>10.3} ms", "study_serve/render-p50", p50 * 1e3);
        println!("{:<32} {:>10.3} ms", "study_serve/render-p90", p90 * 1e3);
        println!("{:<32} {:>9.1} req/s", "study_serve/throughput", rps);
        println!("{:<32} {:>14}", "study_serve/body-bytes", body_bytes);

        // The whole measured window must have replayed, not computed:
        // post-warm-up GETs never simulate.
        let warm_sims = server.session().stats().simulations - sims;
        assert_eq!(warm_sims, 0, "a measured request simulated");

        let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_study.json");
        write_baseline(
            baseline,
            "study_serve",
            &[
                ("requests", REQUESTS as f64),
                ("warmup_wall_s", warmup_s),
                ("served_warm_p50_s", p50),
                ("served_warm_p90_s", p90),
                ("served_warm_requests_per_s", rps),
                ("render_body_bytes", body_bytes as f64),
            ],
        )
        .expect("write BENCH_study.json");
        println!("\nwrote {baseline}");
    });
}
