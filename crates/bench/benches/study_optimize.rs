//! Search-layer benchmark: what adaptive probing buys over the full
//! sweep — a bisection `Search` and the exhaustive reference over the
//! same 33-point operating-temperature axis, cold and warm, through
//! the `StudySession` front door.
//!
//! Like `study_exec`, the unit of work is a whole search, so this
//! bench times single runs instead of looping a closure, and merges
//! its rows (probes issued vs space cardinality, cold/warm wall
//! times) into the shared `BENCH_study.json` baseline.
//!
//! `cargo bench -p repro-bench --bench study_optimize`

use aging_cache::rescache::MemoryCache;
use aging_cache::search::{self, Constraint, Driver, Objective, ScenarioSpace, Search};
use aging_cache::session::StudySession;
use aging_cache::study::StudySpec;
use repro_bench::harness::write_baseline;
use std::time::Instant;

/// Operating-temperature axis: 33 points, 45 °C to 141 °C in 3 °C
/// steps. Lifetime is strictly monotone along it (NBTI stress grows
/// with temperature), which is the bisection driver's best case —
/// and the honest framing for the probes-saved numbers below.
fn space() -> ScenarioSpace {
    let temps: Vec<String> = search::steps(45.0, 141.0, 3.0)
        .expect("temperature axis")
        .into_iter()
        .map(|t| format!("nbti:temp={t}"))
        .collect();
    ScenarioSpace::grid(
        StudySpec::new("bench optimize")
            .models(temps)
            .workload_names(["sha"])
            .expect("suite workload")
            .trace_cycles(40_000),
    )
}

fn main() {
    let objective = || Objective::maximize("lt_years");

    // Cold bisection: endpoints plus the monotonicity audit.
    let session = StudySession::new().cache(MemoryCache::new());
    let t = Instant::now();
    let bisect = Search::new(space(), objective())
        .driver(Driver::Bisect)
        .run(&session)
        .expect("bisect search");
    let bisect_cold_s = t.elapsed().as_secs_f64();
    let cold_sims = session.stats().simulations;

    // Warm bisection on the same session: every probe replays from
    // the result cache — zero simulations, byte-identical report.
    let t = Instant::now();
    let warm = Search::new(space(), objective())
        .driver(Driver::Bisect)
        .run(&session)
        .expect("warm bisect search");
    let bisect_warm_s = t.elapsed().as_secs_f64();
    assert_eq!(
        session.stats().simulations,
        cold_sims,
        "a warm probe simulated"
    );
    assert_eq!(
        warm.to_json(),
        bisect.to_json(),
        "warm replay diverged from the cold report"
    );

    // Cold exhaustive reference, on its own session so the comparison
    // is cold-vs-cold: the full sweep must crown the same incumbent.
    let full_session = StudySession::new().cache(MemoryCache::new());
    let t = Instant::now();
    let full = Search::new(space(), objective())
        .run(&full_session)
        .expect("exhaustive search");
    let full_cold_s = t.elapsed().as_secs_f64();
    assert_eq!(
        bisect.incumbent().map(|p| &p.scenario),
        full.incumbent().map(|p| &p.scenario),
        "bisect and exhaustive disagree on a monotone axis"
    );

    // Constrained boundary search — the thermal-headroom question —
    // exercises the actual bisection loop rather than the endpoint
    // shortcut. Warm session: only never-probed cells compute.
    let floor = 3.5;
    let t = Instant::now();
    let boundary = Search::new(space(), Objective::minimize("lt_years"))
        .constraint(Constraint::at_least("lt_years", floor).expect("finite bound"))
        .driver(Driver::Bisect)
        .run(&session)
        .expect("boundary search");
    let boundary_s = t.elapsed().as_secs_f64();
    assert!(
        boundary.incumbent().is_some(),
        "no feasible operating point above the floor"
    );

    let space_n = bisect.space_len() as f64;
    println!();
    println!("benchmark group: study_optimize (33-point temperature axis)");
    println!("{:<36} {:>14}", "name", "value");
    println!("{}", "-".repeat(52));
    println!("{:<36} {:>14}", "study_optimize/space", bisect.space_len());
    println!(
        "{:<36} {:>14}",
        "study_optimize/bisect-probes",
        bisect.probes_issued()
    );
    println!(
        "{:<36} {:>14}",
        "study_optimize/boundary-probes",
        boundary.probes_issued()
    );
    println!(
        "{:<36} {:>14}",
        "study_optimize/exhaustive-probes",
        full.probes_issued()
    );
    println!(
        "{:<36} {:>11.3} s",
        "study_optimize/bisect-cold", bisect_cold_s
    );
    println!(
        "{:<36} {:>10.3} ms",
        "study_optimize/bisect-warm",
        bisect_warm_s * 1e3
    );
    println!(
        "{:<36} {:>11.3} s",
        "study_optimize/exhaustive-cold", full_cold_s
    );
    println!(
        "{:<36} {:>11.3} s",
        "study_optimize/boundary-warm-cold", boundary_s
    );

    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_study.json");
    write_baseline(
        baseline,
        "study_optimize",
        &[
            ("space_scenarios", space_n),
            ("bisect_probes", bisect.probes_issued() as f64),
            ("boundary_probes", boundary.probes_issued() as f64),
            ("exhaustive_probes", full.probes_issued() as f64),
            ("bisect_cold_wall_s", bisect_cold_s),
            ("bisect_warm_wall_s", bisect_warm_s),
            ("exhaustive_cold_wall_s", full_cold_s),
            ("boundary_wall_s", boundary_s),
        ],
    )
    .expect("write BENCH_study.json");
    println!("\nwrote {baseline}");
}
