//! Trace-generation throughput per workload style (the generator must
//! never be the bottleneck of a table run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trace_synth::suite;

const ACCESSES: usize = 100_000;

fn bench_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.throughput(Throughput::Elements(ACCESSES as u64));
    // One representative per style.
    for name in ["sha", "cjpeg", "rijndael_i", "dijkstra", "fft_1", "ispell", "gsmd"] {
        let profile = suite::by_name(name).expect("benchmark exists");
        g.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| {
                let mut sum = 0u64;
                for acc in p.trace(1).take(ACCESSES) {
                    sum = sum.wrapping_add(acc.addr);
                }
                black_box(sum)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_styles
}
criterion_main!(benches);
