//! Trace-generation throughput per workload style (the generator must
//! never be the bottleneck of a table run).

use repro_bench::harness::Harness;
use std::hint::black_box;
use trace_synth::suite;

const ACCESSES: usize = 100_000;

fn main() {
    let mut g = Harness::new("trace_gen");
    // One representative per style.
    for name in [
        "sha",
        "cjpeg",
        "rijndael_i",
        "dijkstra",
        "fft_1",
        "ispell",
        "gsmd",
    ] {
        let profile = suite::by_name(name).expect("benchmark exists");
        g.bench_throughput(name, ACCESSES as u64, || {
            let mut sum = 0u64;
            for acc in profile.trace(1).take(ACCESSES) {
                sum = sum.wrapping_add(acc.addr);
            }
            black_box(sum)
        });
    }
}
