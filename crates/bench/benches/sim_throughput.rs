//! Simulator throughput: cycles simulated per second, across bank counts
//! and cache sizes. Establishes that the trace-driven engine is fast
//! enough to regenerate every table in seconds, and measures the
//! speedup of the batched hot loop over the per-access baseline.

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::PolicyKind;
use cache_sim::{Access, CacheGeometry};
use repro_bench::harness::Harness;
use std::time::{Duration, Instant};
use trace_synth::suite;

const CYCLES: usize = 100_000;

fn bench_banks() {
    let profile = suite::by_name("dijkstra").expect("benchmark exists");
    let mut g = Harness::new("sim_throughput/banks");
    for banks in [2u32, 4, 8, 16] {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).expect("geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        g.bench_throughput(&banks.to_string(), CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                .expect("simulation")
        });
    }
}

fn bench_sizes() {
    let profile = suite::by_name("sha").expect("benchmark exists");
    let mut g = Harness::new("sim_throughput/cache_kb");
    for kb in [8u64, 16, 32] {
        let geom = CacheGeometry::direct_mapped(kb * 1024, 16, 4).expect("geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        g.bench_throughput(&kb.to_string(), CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                .expect("simulation")
        });
    }
}

fn bench_update_schedules() {
    let profile = suite::by_name("CRC32").expect("benchmark exists");
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let mut g = Harness::new("sim_throughput/updates");
    for (label, schedule) in [
        ("never", UpdateSchedule::Never),
        ("every_10k", UpdateSchedule::EveryCycles(10_000)),
    ] {
        let arch = PartitionedCache::new(geom, PolicyKind::Probing).expect("arch");
        g.bench_throughput(label, CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), schedule)
                .expect("simulation")
        });
    }
}

/// Per-access `simulate` vs the batched `simulate_batched` fast path,
/// on identical pre-generated traces (so trace synthesis is excluded
/// from both sides). Results are bitwise-identical by construction —
/// the gap is pure dispatch/sweep overhead.
fn bench_batched_vs_per_access() {
    let profile = suite::by_name("dijkstra").expect("benchmark exists");
    let trace: Vec<Access> = profile.trace(1).take(CYCLES).collect();
    let mut g = Harness::new("sim_throughput/batched");
    for banks in [4u32, 8, 16] {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).expect("geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        g.bench_throughput(&format!("per_access/M{banks}"), CYCLES as u64, || {
            arch.simulate(trace.iter().copied(), UpdateSchedule::Never)
                .expect("simulation")
        });
        g.bench_throughput(&format!("batched/M{banks}"), CYCLES as u64, || {
            arch.simulate_batched(trace.iter().copied(), UpdateSchedule::Never)
                .expect("simulation")
        });
    }

    // Explicit wall-clock comparison at the reference geometry, long
    // enough to swamp timer noise.
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
    let time = |f: &dyn Fn()| {
        f(); // warm-up
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed());
        }
        best
    };
    let scalar = time(&|| {
        arch.simulate(trace.iter().copied(), UpdateSchedule::Never)
            .map(std::mem::drop)
            .expect("simulation");
    });
    let batched = time(&|| {
        arch.simulate_batched(trace.iter().copied(), UpdateSchedule::Never)
            .map(std::mem::drop)
            .expect("simulation");
    });
    println!();
    println!(
        "batched speedup at 16 kB / M=4: {:.2}x (per-access {:?}, batched {:?}, {} cycles)",
        scalar.as_secs_f64() / batched.as_secs_f64(),
        scalar,
        batched,
        CYCLES
    );
}

fn main() {
    bench_banks();
    bench_sizes();
    bench_update_schedules();
    bench_batched_vs_per_access();
}
