//! Simulator throughput: cycles simulated per second, across bank counts
//! and cache sizes. Establishes that the trace-driven engine is fast
//! enough to regenerate every table in seconds.

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::PolicyKind;
use cache_sim::CacheGeometry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use trace_synth::suite;

const CYCLES: usize = 100_000;

fn bench_banks(c: &mut Criterion) {
    let profile = suite::by_name("dijkstra").expect("benchmark exists");
    let mut g = c.benchmark_group("sim_throughput/banks");
    g.throughput(Throughput::Elements(CYCLES as u64));
    for banks in [2u32, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(banks), &banks, |b, &banks| {
            let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).expect("geometry");
            let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
            b.iter(|| {
                arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                    .expect("simulation")
            });
        });
    }
    g.finish();
}

fn bench_sizes(c: &mut Criterion) {
    let profile = suite::by_name("sha").expect("benchmark exists");
    let mut g = c.benchmark_group("sim_throughput/cache_kb");
    g.throughput(Throughput::Elements(CYCLES as u64));
    for kb in [8u64, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, &kb| {
            let geom = CacheGeometry::direct_mapped(kb * 1024, 16, 4).expect("geometry");
            let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
            b.iter(|| {
                arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                    .expect("simulation")
            });
        });
    }
    g.finish();
}

fn bench_update_schedules(c: &mut Criterion) {
    let profile = suite::by_name("CRC32").expect("benchmark exists");
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let mut g = c.benchmark_group("sim_throughput/updates");
    g.throughput(Throughput::Elements(CYCLES as u64));
    for (label, schedule) in [
        ("never", UpdateSchedule::Never),
        ("every_10k", UpdateSchedule::EveryCycles(10_000)),
    ] {
        g.bench_function(label, |b| {
            let arch = PartitionedCache::new(geom, PolicyKind::Probing).expect("arch");
            b.iter(|| {
                arch.simulate(profile.trace(1).take(CYCLES), schedule)
                    .expect("simulation")
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_banks, bench_sizes, bench_update_schedules
}
criterion_main!(benches);
