//! Simulator throughput: cycles simulated per second, across bank counts
//! and cache sizes. Establishes that the trace-driven engine is fast
//! enough to regenerate every table in seconds.

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::PolicyKind;
use cache_sim::CacheGeometry;
use repro_bench::harness::Harness;
use trace_synth::suite;

const CYCLES: usize = 100_000;

fn bench_banks() {
    let profile = suite::by_name("dijkstra").expect("benchmark exists");
    let mut g = Harness::new("sim_throughput/banks");
    for banks in [2u32, 4, 8, 16] {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).expect("geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        g.bench_throughput(&banks.to_string(), CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                .expect("simulation")
        });
    }
}

fn bench_sizes() {
    let profile = suite::by_name("sha").expect("benchmark exists");
    let mut g = Harness::new("sim_throughput/cache_kb");
    for kb in [8u64, 16, 32] {
        let geom = CacheGeometry::direct_mapped(kb * 1024, 16, 4).expect("geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        g.bench_throughput(&kb.to_string(), CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), UpdateSchedule::Never)
                .expect("simulation")
        });
    }
}

fn bench_update_schedules() {
    let profile = suite::by_name("CRC32").expect("benchmark exists");
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let mut g = Harness::new("sim_throughput/updates");
    for (label, schedule) in [
        ("never", UpdateSchedule::Never),
        ("every_10k", UpdateSchedule::EveryCycles(10_000)),
    ] {
        let arch = PartitionedCache::new(geom, PolicyKind::Probing).expect("arch");
        g.bench_throughput(label, CYCLES as u64, || {
            arch.simulate(profile.trace(1).take(CYCLES), schedule)
                .expect("simulation")
        });
    }
}

fn main() {
    bench_banks();
    bench_sizes();
    bench_update_schedules();
}
