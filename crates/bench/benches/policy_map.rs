//! Latency of the dynamic-indexing primitives: `f()` evaluation (on the
//! critical cache-access path!), the `update` pulse, and a full decoder
//! route. The paper's feasibility argument rests on `f()` being a couple
//! of gates; these benches confirm the software model is nanoseconds.

use aging_cache::decoder::Decoder;
use aging_cache::policy::{PolicyKind, Probing, Scrambling};
use cache_sim::{BankMapping, CacheGeometry, IdentityMapping};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy/map_bank");
    let identity = IdentityMapping;
    let probing = Probing::new(16).expect("policy");
    let scrambling = Scrambling::new(16, 7).expect("policy");
    g.bench_function("identity", |b| {
        b.iter(|| black_box(identity.map_bank(black_box(11), 16)))
    });
    g.bench_function("probing", |b| {
        b.iter(|| black_box(probing.map_bank(black_box(11), 16)))
    });
    g.bench_function("scrambling", |b| {
        b.iter(|| black_box(scrambling.map_bank(black_box(11), 16)))
    });
    g.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy/update");
    g.bench_function("probing", |b| {
        let mut p = Probing::new(16).expect("policy");
        b.iter(|| p.update());
    });
    g.bench_function("scrambling", |b| {
        let mut s = Scrambling::new(16, 7).expect("policy");
        b.iter(|| s.update());
    });
    g.finish();
}

fn bench_decoder_route(c: &mut Criterion) {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let mut g = c.benchmark_group("decoder/route");
    for kind in PolicyKind::ALL {
        g.bench_function(kind.name(), |b| {
            let dec = Decoder::new(geom, kind.build(4, 3).expect("policy")).expect("decoder");
            let mut addr = 0u64;
            b.iter(|| {
                addr = addr.wrapping_add(0x9e37).wrapping_mul(0x85eb) % (64 * 1024);
                black_box(dec.route(black_box(addr)).expect("route"))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_map, bench_update, bench_decoder_route
}
criterion_main!(benches);
