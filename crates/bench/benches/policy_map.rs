//! Latency of the dynamic-indexing primitives: `f()` evaluation (on the
//! critical cache-access path!), the `update` pulse, and a full decoder
//! route. The paper's feasibility argument rests on `f()` being a couple
//! of gates; these benches confirm the software model is nanoseconds.

use aging_cache::decoder::Decoder;
use aging_cache::policy::{GrayRotation, Probing, RotateXor, Scrambling};
use aging_cache::registry::PolicyRegistry;
use cache_sim::{BankMapping, CacheGeometry, IdentityMapping};
use repro_bench::harness::Harness;
use std::hint::black_box;

fn bench_map() {
    let mut g = Harness::new("policy/map_bank");
    let identity = IdentityMapping;
    let probing = Probing::new(16).expect("policy");
    let scrambling = Scrambling::new(16, 7).expect("policy");
    let gray = GrayRotation::new(16).expect("policy");
    let hybrid = RotateXor::new(16, 7).expect("policy");
    g.bench("identity", || {
        black_box(identity.map_bank(black_box(11), 16))
    });
    g.bench("probing", || black_box(probing.map_bank(black_box(11), 16)));
    g.bench("scrambling", || {
        black_box(scrambling.map_bank(black_box(11), 16))
    });
    g.bench("gray", || black_box(gray.map_bank(black_box(11), 16)));
    g.bench("rotate-xor", || {
        black_box(hybrid.map_bank(black_box(11), 16))
    });
}

fn bench_update() {
    let mut g = Harness::new("policy/update");
    let mut p = Probing::new(16).expect("policy");
    g.bench("probing", || p.update());
    let mut s = Scrambling::new(16, 7).expect("policy");
    g.bench("scrambling", || s.update());
    let mut gr = GrayRotation::new(16).expect("policy");
    g.bench("gray", || gr.update());
    let mut h = RotateXor::new(16, 7).expect("policy");
    g.bench("rotate-xor", || h.update());
}

fn bench_decoder_route() {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).expect("geometry");
    let registry = PolicyRegistry::global();
    let mut g = Harness::new("decoder/route");
    for name in registry.names() {
        let dec =
            Decoder::new(geom, registry.build(&name, 4, 3).expect("policy")).expect("decoder");
        let mut addr = 0u64;
        g.bench(&name, || {
            addr = addr.wrapping_add(0x9e37).wrapping_mul(0x85eb) % (64 * 1024);
            black_box(dec.route(black_box(addr)).expect("route"))
        });
    }
}

fn main() {
    bench_map();
    bench_update();
    bench_decoder_route();
}
