//! Cost of the rotation-aware lifetime pipeline per policy: the daily
//! update loop runs thousands of iterations over the device lifetime,
//! and the tables evaluate it hundreds of times.

use aging_cache::aging::AgingAnalysis;
use aging_cache::registry::PolicyRegistry;
use nbti_model::{CellDesign, LifetimeSolver};
use repro_bench::harness::Harness;
use std::hint::black_box;

fn main() {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver");
    let aging = AgingAnalysis::new(solver);
    let sleep = [0.05, 0.95, 0.90, 0.40];
    // Warm the critical-shift memo so the benches measure the rotation
    // loop, not the one-time SNM bisection.
    aging
        .cache_lifetime_named(&sleep, 0.5, "identity", 1)
        .expect("warmup");

    let mut g = Harness::new("aging/cache_lifetime");
    for name in PolicyRegistry::global().names() {
        g.bench(&name, || {
            black_box(
                aging
                    .cache_lifetime_named(black_box(&sleep), 0.5, &name, 1)
                    .expect("lifetime"),
            )
        });
    }

    let mut g = Harness::new("aging");
    g.bench("critical_shift_cold", || {
        let a = AgingAnalysis::new(
            LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver"),
        );
        black_box(a.critical_effective_years(0.5).expect("t*"))
    });
}
