//! Cost of the rotation-aware lifetime pipeline per policy: the daily
//! update loop runs thousands of iterations over the device lifetime,
//! and the tables evaluate it hundreds of times.

use aging_cache::aging::AgingAnalysis;
use aging_cache::policy::PolicyKind;
use criterion::{criterion_group, criterion_main, Criterion};
use nbti_model::{CellDesign, LifetimeSolver};
use std::hint::black_box;

fn bench_cache_lifetime(c: &mut Criterion) {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("solver");
    let aging = AgingAnalysis::new(solver);
    let sleep = [0.05, 0.95, 0.90, 0.40];
    // Warm the critical-shift memo so the benches measure the rotation
    // loop, not the one-time SNM bisection.
    aging
        .cache_lifetime(&sleep, 0.5, PolicyKind::Identity)
        .expect("warmup");

    let mut g = c.benchmark_group("aging/cache_lifetime");
    for kind in PolicyKind::ALL {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(
                    aging
                        .cache_lifetime(black_box(&sleep), 0.5, kind)
                        .expect("lifetime"),
                )
            });
        });
    }
    g.finish();

    c.bench_function("aging/critical_shift_cold", |b| {
        b.iter_batched(
            || {
                AgingAnalysis::new(
                    LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)
                        .expect("solver"),
                )
            },
            |a| black_box(a.critical_effective_years(0.5).expect("t*")),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_cache_lifetime
}
criterion_main!(benches);
