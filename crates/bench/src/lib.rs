//! Shared plumbing for the reproduction harness binaries and benches.
//!
//! Every table and headline claim of the paper has a dedicated binary:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — idleness distribution, 4-bank 16 kB cache |
//! | `table2` | Table II — Esav/LT0/LT vs cache size |
//! | `table3` | Table III — Esav/LT vs line size |
//! | `table4` | Table IV — idleness/LT vs (size × banks) |
//! | `claims` | §IV-B1 headline claims |
//! | `rng_error` | §IV-B2 RNG repetition error study |
//! | `policy_equivalence` | §IV-B2 Probing ≡ Scrambling |
//! | `ablation_gating` | power gating vs voltage scaling sleep |
//! | `ablation_flip` | cell flipping (ref. \[15\]) composition |
//! | `ablation_graceful` | §III-A2 graceful-degradation alternative |
//! | `ablation_narrow_lfsr` | p-bit vs wide LFSR scrambling bias |
//! | `ablation_vlow` | drowsy-rail sweep: aging relief vs retention margin |
//! | `ablation_temperature` | Arrhenius sweep; reindex gain is T-invariant |
//! | `update_cost` | miss-rate cost of (absurdly) frequent updates |
//! | `snm_curves` | SNM-vs-time trajectories behind the 20 % criterion |
//! | `variation_study` | process variation x NBTI bank-lifetime quantiles |
//! | `ablation_fine_grain` | bank-level vs ref. \[7\] line-level idleness |
//! | `repro_all` | the paper-table subset, in order |
//! | `study` | arbitrary scenario grids from the command line |
//!
//! Run any of them with `cargo run --release -p repro-bench --bin <name>`.
//! Table binaries accept `--json` to emit the raw [`StudyReport`]
//! instead of the rendered table.

pub mod harness;

use aging_cache::experiment::{ExperimentConfig, ExperimentContext};
use aging_cache::model::ModelContext;
use aging_cache::render::{self, Format};
use aging_cache::report::Table;
use aging_cache::session::StudySession;
use aging_cache::study::{StudyReport, StudySpec};
use aging_cache::CoreError;

/// The default experiment configuration used by all harness binaries:
/// the paper's reference cache with traces long enough (8 macro periods)
/// for sub-percent idleness stability.
pub fn default_config() -> ExperimentConfig {
    ExperimentConfig::paper_reference().with_trace_cycles(640_000)
}

/// Builds the shared calibrated context, panicking with a readable
/// message on failure (harness binaries have no recovery path).
pub fn context() -> ExperimentContext {
    ExperimentContext::new().expect("NBTI calibration failed")
}

/// Builds the model-axis run context (models calibrate lazily, once
/// per distinct key).
pub fn model_context() -> ModelContext {
    ModelContext::new()
}

/// Builds a fresh [`StudySession`] — the execution-layer front door
/// every harness binary runs its presets through. One session per
/// process: its simulation memo is what lets overlapping presets
/// (`repro_all`'s Tables I–IV) share trace simulations.
pub fn session() -> StudySession {
    StudySession::new()
}

/// Prints a value with a section rule around it (harness output style).
pub fn section(title: &str) {
    println!();
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Whether the process arguments request JSON output (`--json`).
pub fn json_requested() -> bool {
    // aging-lint: allow(no-env-in-core) CLI flag shim shared by the table bins; bins-only by contract
    std::env::args().any(|a| a == "--json")
}

/// The output format the process arguments request: `--format
/// text|md|csv|json`, with the historic `--json` flag as an alias for
/// `--format json`. Later flags win (matching the `study` binary's
/// parser), so `--json --format md` is Markdown. Defaults to
/// [`Format::Text`] — the historic stdout, byte for byte. Exits with
/// a usage error on an unknown format name.
pub fn format_requested() -> Format {
    // aging-lint: allow(no-env-in-core) CLI flag shim shared by the table bins; bins-only by contract
    let args: Vec<String> = std::env::args().collect();
    let mut format = Format::Text;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--json" {
            format = Format::Json;
        } else if args[i] == "--format" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("--format needs a value (text, md, csv, json)");
                std::process::exit(2);
            };
            format = Format::parse(value).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            i += 1;
        }
        i += 1;
    }
    format
}

/// Runs a preset spec through a [`StudySession`] and prints it in the
/// requested [`Format`] (`--format md|csv|json`, default the historic
/// plain text; `--json` still works). Every table binary is this call:
/// preset in, query + renderer out. Exits non-zero on failure (harness
/// binaries have no recovery path). Sharing one session across presets
/// shares their simulation memo (and result cache, if the session
/// carries one).
pub fn run_preset(
    spec: StudySpec,
    session: &StudySession,
    view: impl FnOnce(&StudyReport) -> Result<Table, CoreError>,
) {
    match session.run(&spec) {
        Ok(report) => match render::report(&report, view, format_requested()) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("rendering failed: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_paper_reference() {
        let c = default_config();
        assert_eq!(c.cache_bytes, 16 * 1024);
        assert_eq!(c.line_bytes, 16);
        assert_eq!(c.banks, 4);
        assert!(c.trace_cycles >= 320_000);
    }
}
