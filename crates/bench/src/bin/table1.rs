//! Regenerates Table I: distribution of idleness in a 4-bank cache.
//! A `StudySpec` preset over the generic grid runner; pass `--json` for
//! the raw report.

use aging_cache::{presets, views};
use repro_bench::{default_config, run_preset, session};

fn main() {
    run_preset(
        presets::table1(&default_config()),
        &session(),
        views::table1,
    );
}
