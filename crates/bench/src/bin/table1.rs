//! Regenerates Table I: distribution of idleness in a 4-bank cache.

use aging_cache::experiment::table1;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match table1(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
