//! Ablation: the literal p-bit LFSR of Fig. 3b vs a wide register.
//!
//! A maximal-length p-bit LFSR never emits the zero mask, so a bank never
//! hosts its own traffic and the idleness mix each physical bank sees is
//! the average of the *other* banks only. With small M this self-exclusion
//! costs a measurable slice of the re-indexing benefit; drawing the mask
//! from the low bits of a wider register removes it. This reproduction
//! defaults to the wide register (16 bits), matching the paper's observed
//! Probing ≡ Scrambling equivalence.

use aging_cache::aging::AgingAnalysis;
use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::{PolicyKind, Scrambling};
use aging_cache::report::{years, Table};
use cache_sim::BankMapping;
use repro_bench::{context, default_config};
use trace_synth::suite;

fn lifetime_with(
    aging: &AgingAnalysis,
    sleep: &[f64],
    p0: f64,
    mut mapping: Box<dyn BankMapping>,
) -> f64 {
    aging
        .cache_lifetime_with(sleep, p0, mapping.as_mut())
        .expect("lifetime")
}

fn main() {
    let cfg = default_config();
    let ctx = context();
    let p_bits = cfg.banks.trailing_zeros();

    let mut t = Table::new(
        format!("Ablation: scrambling LFSR width (M = {})", cfg.banks),
        vec![
            "bench".into(),
            "probing".into(),
            format!("narrow ({p_bits}-bit)"),
            "wide (16-bit)".into(),
            "narrow loss %".into(),
        ],
    );
    for (i, p) in suite::mediabench().iter().enumerate() {
        let geom = cfg.geometry().expect("valid geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("valid arch");
        let out = arch
            .simulate(
                p.trace(cfg.seed + i as u64).take(cfg.trace_cycles as usize),
                UpdateSchedule::Never,
            )
            .expect("simulation");
        let sleep = out.sleep_fraction_all();
        let probing = ctx
            .aging
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Probing)
            .expect("lifetime");
        let narrow = lifetime_with(
            &ctx.aging,
            &sleep,
            p.p0(),
            Box::new(Scrambling::with_lfsr_width(cfg.banks, p_bits, 1).expect("narrow")),
        );
        let wide = lifetime_with(
            &ctx.aging,
            &sleep,
            p.p0(),
            Box::new(Scrambling::new(cfg.banks, 1).expect("wide")),
        );
        t.push_row(vec![
            p.name().to_string(),
            years(probing),
            years(narrow),
            years(wide),
            format!("{:+.1}", 100.0 * (narrow - wide) / wide),
        ]);
    }
    t.push_note("the narrow register's never-zero mask skips self-mapping; wide ~ probing");
    println!("{t}");
}
