//! Regenerates the §IV-B2 RNG repetition-error study.

use aging_cache::experiment::rng_error;

fn main() {
    let draws = [16u64, 64, 256, 1024, 4096, 16384, 65536];
    for bits in [2u32, 3, 4] {
        match rng_error(bits, &draws) {
            Ok(t) => println!("{t}"),
            Err(e) => {
                eprintln!("rng_error failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
