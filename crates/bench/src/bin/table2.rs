//! Regenerates Table II: energy savings and lifetime vs cache size.

use aging_cache::experiment::table2;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match table2(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
