//! Run an arbitrary scenario grid from the command line — the open
//! counterpart of the fixed `tableN` binaries.
//!
//! ```sh
//! cargo run --release -p repro-bench --bin study -- \
//!     --cache-kb 8,16,32 --banks 2,4 --policies probing,gray,rotate-xor \
//!     --workloads sha,CRC32 --trace-cycles 320000 --json
//! ```
//!
//! Axes default to the paper's reference point; `--workloads all` (the
//! default) runs the full 18-benchmark suite. The geometry axis is
//! open: `--ways 1,4` sweeps associativity (`--replacement lru,mru`
//! picks the victim policy), and `--l2-kb 64 --l2-ways 4` composes a
//! two-level hierarchy whose L2 sees exactly the L1 miss stream
//! (records gain `sleep_fraction_l2` / `lt_years_l2` metrics). The
//! workload axis also
//! takes external trace files — `--trace csv:/path/to/trace.csv`
//! (formats: `csv`, `din`, `lackey`, or `file:` to infer from the
//! extension; repeat the flag for several traces) — whose format and
//! content hash are recorded in the report for reproducibility.
//!
//! The device axis is open too: `--model nbti:temp=105,vlow=0.7`
//! (repeat the flag for several models — parameterized keys use commas
//! internally), plus the `--temp`/`--vlow`/`--fail` override axes that
//! cross every listed model with operating-point sweeps.
//! `--list-models` shows the registered models and the parameterized
//! key families. Without `--json` a compact summary table is printed.
//!
//! The analysis layer is on the command line too:
//!
//! * `--format text|md|csv|json` renders the output table as aligned
//!   text (default, the historic stdout), paper-style Markdown, CSV,
//!   or the canonical report JSON (`--json` is the historic alias);
//! * `--group-by <axes>` (comma-separated: `policy`, `banks`,
//!   `cache`, `line`, `ways`, `replacement`, `l2`, `l2-ways`,
//!   `update`, `workload`, `model`) aggregates the
//!   per-scenario rows into one row per group — mean Esav / idleness /
//!   lifetimes over the group's records;
//! * `--baseline <policy>` derives the baseline-relative lifetime gain
//!   by joining every scenario against the one that differs only in
//!   policy (e.g. `--policies identity,probing --baseline identity`
//!   reports Probing's lifetime as a multiple of the conventional
//!   cache's), appended as an `LT x<baseline>` column — geomean within
//!   each group under `--group-by`;
//! * `study compare <left> <right>` compares two finished studies cell
//!   by cell with `--tol <abs>` tolerance and names every diverging
//!   scenario. Each side is a report JSON file or a `--cache-dir`
//!   journal (directory or `results.jsonl` path); comparing a report
//!   against a warm journal replays *nothing* — no simulation, no
//!   model evaluation. Exits 0 when the sides agree, 1 on divergence.
//! * `study check [spec flags] [--journal <dir|results.jsonl>]`
//!   statically validates the study before anything runs: every
//!   model/policy/workload key resolves against its registry,
//!   geometry and parameter ranges are sane, aliased model spellings
//!   (`nbti:vlow=0.75` ≡ `nbti-45nm`) are reported, the grid
//!   cardinality and estimated cold cost print, and a journal's
//!   content digests re-verify line by line. Zero simulation. Exits 0
//!   on a clean check, 1 when any error fired.
//!
//! The search layer is on the command line too:
//!
//! * `study optimize [spec flags] --objective max:lt_years
//!   [--constraint esav>=0.3] [--driver exhaustive|bisect|refine]
//!   [--budget <probes>] [--ensemble <seeds>]` searches the declared
//!   space for the best feasible scenario instead of sweeping all of
//!   it: `bisect` exploits a monotone varying axis (and falls back to
//!   exhaustive, with a note, when a monotonicity audit fails),
//!   `refine` runs coarse-to-fine. `--ensemble N` replicates every
//!   probe over N trace seeds and decides on mean ± 95% CI. Probes go
//!   through the same session/cache layers as a run, so with
//!   `--cache-dir` a warm re-run replays the byte-identical
//!   `SearchReport` with zero simulations. All `--format` renderers
//!   apply; the JSON emission round-trips and diffs like a study
//!   report.
//! * `study check` accepts the same `--objective`/`--constraint`/
//!   `--driver`/`--budget` flags and statically validates the search
//!   on top of the spec: unknown metrics, a bisection driver pointed
//!   at a categorical or multi-dimensional axis, and zero/short
//!   budgets all become findings — still zero simulation.
//!
//! The execution layer is on the command line too:
//!
//! * `--cache-dir <dir>` journals every finished scenario into
//!   `<dir>/results.jsonl`, keyed by its content-addressed
//!   fingerprint. A re-run — identical, widened, or interrupted
//!   halfway — replays journaled points byte-identically and computes
//!   only what is missing; a fully warm run executes zero simulations.
//!   Cache counters print on stderr after the run.
//! * `--resume` asserts the intent: it requires `--cache-dir` and
//!   fails fast if the journal does not exist yet.
//! * `--progress` streams per-scenario progress to stderr as workers
//!   finish (`cached` marks scenarios replayed from the journal).
//! * `--sequential` forces the single-threaded executor backend
//!   (`--threads N` caps the threaded one, as before).
//! * `--workers N` shards the sweep across `N` worker *processes*
//!   (this binary re-spawned in `--worker` mode), coordinated through
//!   the `--cache-dir` journal with crash-tolerant shard leases: a
//!   killed worker's lease goes stale and is stolen, and whatever
//!   nobody finished is computed in-process at the end — the report is
//!   byte-identical to a sequential run regardless. `--lease-ttl-ms`
//!   tunes the staleness threshold. Requires `--cache-dir`. Grids
//!   below `--mp-threshold` scenarios (default 128, 0 disables) fall
//!   back to the threaded backend with a notice — process sharding
//!   only pays for itself on large sweeps.
//!
//! The serving layer is on the command line too:
//!
//! * `study serve [--addr <host:port>] [--cache-dir <dir>] [--threads
//!   <n>] [--shutdown-token <t>] [--addr-file <path>]` runs a
//!   long-lived HTTP server over the warm journal: `GET /render`,
//!   `/query` and `POST /compare` answer from cached results with
//!   **zero simulation** (cold cells answer 409 with the coverage
//!   gap); `POST /run` computes what is missing, and concurrent
//!   identical requests coalesce into a single simulation. `POST
//!   /shutdown?token=…` drains and exits.
//! * `study fetch <url>` is the matching dependency-free HTTP client:
//!   response body to stdout byte-for-byte, exit 0 on 2xx — CI smokes
//!   the server without `curl`.

use aging_cache::analysis::{self, Axis, ReportDiff};
use aging_cache::distrib::{run_worker, WorkerConfig};
use aging_cache::exec::{ExecObserver, ExecOptions, ProcessOptions, RecordOrigin, WorkerCommand};
use aging_cache::model::ModelRegistry;
use aging_cache::render::{self, Format};
use aging_cache::rescache::{JsonlCache, MemoryCache, ResultCache};
use aging_cache::search::{Constraint, Driver, Objective, ScenarioSpace, Search};
use aging_cache::serve::{ServeLog, ServeOptions, StudyServer, REPORT_NAME};
use aging_cache::session::StudySession;
use aging_cache::study::{ScenarioRecord, StudyReport, StudySpec};
use aging_cache::{CoreError, PolicyRegistry, WorkloadRegistry};

/// `--progress`: per-scenario streaming to stderr.
struct Progress;

impl ExecObserver for Progress {
    fn on_start(&self, name: &str, total: usize) {
        eprintln!("[study] {name}: {total} scenarios");
    }

    fn on_record(&self, record: &ScenarioRecord, origin: RecordOrigin, done: usize, total: usize) {
        let s = &record.scenario;
        eprintln!(
            "[{done}/{total}] {}kB/{}B/M={} {} {} {}{}",
            s.cache_bytes / 1024,
            s.line_bytes,
            s.banks,
            s.policy,
            s.model,
            s.workload,
            if origin == RecordOrigin::Cached {
                " (cached)"
            } else {
                ""
            }
        );
    }

    fn on_worker(&self, worker: &str, computed: usize, cached: usize) {
        eprintln!("[worker {worker}] computed: {computed}, cached: {cached}");
    }

    fn on_notice(&self, message: &str) {
        eprintln!("[study] {message}");
    }
}

/// Installed for `--workers` runs without `--progress`: backend
/// notices (e.g. the small-grid fallback to the threaded executor)
/// must reach the user either way.
struct Notices;

impl ExecObserver for Notices {
    fn on_notice(&self, message: &str) {
        eprintln!("[study] {message}");
    }
}

/// `study --worker <cache-dir> --coord <dir> …`: the worker half of a
/// `--workers N` run — the coordinator re-spawns this binary with the
/// lease-protocol flags. Exits 0 when the worker ran its shards to
/// completion (scenario errors are reported through the coordination
/// directory, not the exit code).
fn worker_main(args: &[String]) {
    let run = WorkerConfig::parse(args).and_then(|config| run_worker(&config, StudySession::new()));
    if let Err(e) = run {
        eprintln!("study --worker: {e}");
        std::process::exit(1);
    }
}

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse::<T>().unwrap_or_else(|_| {
                eprintln!("invalid value `{v}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// The spec-axis flags shared by `study` (run) and `study check`: the
/// builder plus the deferred workload/model selections that apply
/// once parsing finishes.
struct SpecArgs {
    spec: Option<StudySpec>,
    // The workload axis is assembled from --workloads and --trace and
    // applied once after parsing: `None` = the full default suite.
    workloads: Option<Vec<String>>,
    traces: Vec<String>,
    models: Vec<String>,
}

impl SpecArgs {
    fn new(name: &str) -> Self {
        SpecArgs {
            spec: Some(StudySpec::new(name)),
            workloads: None,
            traces: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Applies one `flag value` pair; `false` means the flag is not a
    /// spec-axis flag and the caller should handle it.
    fn apply(&mut self, flag: &str, value: &str) -> bool {
        let Some(spec) = self.spec.take() else {
            return false;
        };
        let applied = match flag {
            "--cache-kb" => spec.cache_kb(parse_list(value, flag)),
            "--line-bytes" => spec.line_bytes(parse_list(value, flag)),
            "--banks" => spec.banks(parse_list(value, flag)),
            "--ways" => spec.ways(parse_list(value, flag)),
            "--replacement" => spec.replacement(value.split(',').map(str::trim)),
            "--l2-kb" => spec.l2_cache_kb(parse_list(value, flag)),
            "--l2-ways" => spec.l2_ways(parse_list(value, flag)),
            "--update-days" => spec.update_days(parse_list(value, flag)),
            "--policies" => spec.policies(value.split(',').map(str::trim)),
            "--workloads" if value == "all" => {
                // Explicit full suite (in suite order), so a --trace
                // appends to it instead of replacing it.
                self.workloads = Some(
                    trace_synth::suite::mediabench()
                        .iter()
                        .map(|p| p.name().to_string())
                        .collect(),
                );
                spec
            }
            "--workloads" => {
                self.workloads = Some(value.split(',').map(|s| s.trim().to_string()).collect());
                spec
            }
            "--trace" => {
                self.traces.push(value.to_string());
                spec
            }
            "--profile" => {
                // Repeatable: a pinned per-bank idleness profile
                // (comma-separated sleep fractions, no simulation).
                self.traces.push(format!("profile:{}", value.trim()));
                spec
            }
            // Deliberately no `--models` alias: commas cannot delimit
            // models (parameterized keys use them internally), so a
            // plural form would invite `--models a,b` as one bad key.
            "--model" => {
                // Repeatable: each --model names exactly one model.
                self.models.push(value.trim().to_string());
                spec
            }
            "--temp" => spec.temps_c(parse_list(value, flag)),
            "--vlow" => spec.vdd_low(parse_list(value, flag)),
            "--fail" => spec.failure_pct(parse_list(value, flag)),
            "--trace-cycles" => spec.trace_cycles(parse_list(value, flag)[0]),
            "--seed" => spec.base_seed(parse_list(value, flag)[0]),
            "--threads" => spec.threads(parse_list(value, flag)[0]),
            _ => {
                self.spec = Some(spec);
                return false;
            }
        };
        self.spec = Some(applied);
        true
    }

    /// The spec with the model axis applied, plus the merged workload
    /// key selection (`None` = keep the default suite). `study check`
    /// resolves the keys itself so each failure becomes a finding.
    fn into_parts(self) -> (StudySpec, Option<Vec<String>>) {
        let mut spec = self.spec.unwrap_or_else(|| StudySpec::new(REPORT_NAME));
        if !self.models.is_empty() {
            spec = spec.models(self.models);
        }
        // --trace and --profile append to the --workloads selection
        // (or, with `--workloads all`/no selection, replace the
        // default suite); each file's format and content hash lands in
        // the report.
        let keys = match (self.workloads, self.traces.is_empty()) {
            (Some(mut named), _) => {
                named.extend(self.traces);
                Some(named)
            }
            (None, false) => Some(self.traces),
            (None, true) => None, // default suite
        };
        (spec, keys)
    }

    /// Run-path finish: resolve the workload keys or exit with a
    /// usage error.
    fn finish(self) -> StudySpec {
        let (mut spec, keys) = self.into_parts();
        if let Some(keys) = keys {
            spec = spec.workload_names(&keys).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
        }
        spec
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        compare_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("check") {
        check_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("optimize") {
        optimize_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("fetch") {
        fetch_main(&args[1..]);
        return;
    }
    if args.iter().any(|a| a == "--worker") {
        worker_main(&args);
        return;
    }
    let mut spec_args = SpecArgs::new(REPORT_NAME);
    let mut format = Format::Text;
    let mut cache_dir: Option<String> = None;
    let mut group_by: Vec<Axis> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut resume = false;
    let mut progress = false;
    let mut sequential = false;
    let mut workers = 0usize;
    let mut lease_ttl_ms: Option<u64> = None;
    let mut mp_threshold: Option<usize> = None;
    let mut kill_workers: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            format = Format::Json;
            i += 1;
            continue;
        }
        if flag == "--resume" {
            resume = true;
            i += 1;
            continue;
        }
        if flag == "--progress" {
            progress = true;
            i += 1;
            continue;
        }
        if flag == "--sequential" {
            sequential = true;
            i += 1;
            continue;
        }
        if flag == "--list-policies" {
            for (name, policy) in PolicyRegistry::global().iter() {
                println!("{name:<12} {}", policy.description());
            }
            return;
        }
        if flag == "--list-workloads" {
            for (name, workload) in WorkloadRegistry::global().iter() {
                println!("{name:<12} {}", workload.description());
            }
            println!("{:<12} external trace files also work: csv:/path, din:/path, lackey:/path, file:/path", "…");
            println!(
                "{:<12} pinned per-bank idleness profiles: profile:s0,s1,…",
                "…"
            );
            return;
        }
        if flag == "--list-models" {
            for (name, model) in ModelRegistry::global().iter() {
                println!("{name:<12} {}", model.description());
                println!("{:<12}   {}", "", model.provenance());
            }
            println!(
                "{:<12} parameterized keys: nbti:temp=<degC>,vlow=<V>,sleep=gated|scaled,fail=<pct>",
                "…"
            );
            println!(
                "{:<12}                     variation:<sigma-mv>[,cells=<n>,q=<quantile>]  drv:vlow=<V>[,aged=<dVth>]",
                "…"
            );
            return;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        if spec_args.apply(flag, value) {
            i += 2;
            continue;
        }
        match flag {
            "--cache-dir" => cache_dir = Some(value.clone()),
            "--workers" => {
                workers = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --workers");
                    std::process::exit(2);
                });
            }
            "--lease-ttl-ms" => {
                lease_ttl_ms = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --lease-ttl-ms");
                    std::process::exit(2);
                }));
            }
            // Below this many scenarios a --workers run falls back to
            // the threaded backend (0 = never fall back).
            "--mp-threshold" => {
                mp_threshold = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --mp-threshold");
                    std::process::exit(2);
                }));
            }
            // Undocumented fault-injection hook for the CI smoke and
            // crash drills: `--kill-worker <i>:<n>` makes worker `i`
            // SIGKILL itself after journaling `n` records.
            "--kill-worker" => {
                let parsed = value
                    .split_once(':')
                    .and_then(|(i, n)| Some((i.trim().parse().ok()?, n.trim().parse().ok()?)));
                let Some(pair) = parsed else {
                    eprintln!("invalid value `{value}` for --kill-worker (expected <i>:<n>)");
                    std::process::exit(2);
                };
                kill_workers.push(pair);
            }
            "--format" => {
                format = Format::parse(value).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--group-by" => {
                group_by = value
                    .split(',')
                    .map(|axis| {
                        Axis::parse(axis).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--baseline" => baseline = Some(value.trim().to_string()),
            _ => {
                eprintln!("unknown flag {flag}");
                eprintln!(
                    "flags: --cache-kb --line-bytes --banks --ways --replacement \
                     --l2-kb --l2-ways --update-days --policies \
                     --workloads --trace <format:path> --profile <s0,s1,…> \
                     --model --temp --vlow --fail \
                     --trace-cycles --seed --threads --sequential \
                     --cache-dir <dir> --resume --progress \
                     --workers <n> --lease-ttl-ms <ms> --mp-threshold <n> \
                     --format <text|md|csv|json> --group-by <axes> --baseline <policy> \
                     --json --list-policies --list-workloads --list-models \
                     (or: study compare <left> <right> [--tol <abs>], \
                     study check [spec flags] [--journal <dir|file>] [search flags], \
                     study optimize [spec flags] --objective <max:|min:><metric> …, \
                     study serve [--addr <host:port>] [--cache-dir <dir>], \
                     study fetch <url>)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if let Some(base) = &baseline {
        if PolicyRegistry::global().get(base).is_none() {
            eprintln!(
                "--baseline: unknown policy `{base}` (known: {})",
                PolicyRegistry::global().names().join(", ")
            );
            std::process::exit(2);
        }
    }
    let spec = spec_args.finish();

    if resume && cache_dir.is_none() {
        eprintln!("--resume needs --cache-dir <dir> (there is no journal to resume from)");
        std::process::exit(2);
    }
    if workers > 0 && cache_dir.is_none() {
        eprintln!("--workers needs --cache-dir <dir> (the workers coordinate through the journal)");
        std::process::exit(2);
    }
    let mut session = StudySession::new();
    if sequential {
        session = session.exec(ExecOptions::sequential());
    }
    if workers > 0 {
        let dir = cache_dir.clone().expect("checked above");
        let exe = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("--workers: cannot locate own executable: {e}");
            std::process::exit(1);
        });
        let mut popts = ProcessOptions::new(dir, workers, WorkerCommand::new(exe, []));
        if let Some(ttl) = lease_ttl_ms {
            popts.lease_ttl_ms = ttl;
        }
        if let Some(threshold) = mp_threshold {
            popts.fallback_threshold = threshold;
        }
        if !kill_workers.is_empty() {
            popts.worker_extra_args = vec![Vec::new(); workers];
            for (i, n) in kill_workers {
                if i >= workers {
                    eprintln!("--kill-worker: worker {i} is out of range (0..{workers})");
                    std::process::exit(2);
                }
                popts.worker_extra_args[i].extend(["--die-after".to_string(), n.to_string()]);
            }
        }
        session = session.exec(ExecOptions::process(popts));
    }
    if progress {
        session = session.observer(Progress);
    } else if workers > 0 {
        session = session.observer(Notices);
    }
    let caching = cache_dir.is_some();
    if let Some(dir) = cache_dir {
        if resume
            && !std::path::Path::new(&dir)
                .join(JsonlCache::FILE_NAME)
                .exists()
        {
            eprintln!(
                "--resume: no journal at {dir}/{} — nothing to resume",
                JsonlCache::FILE_NAME
            );
            std::process::exit(2);
        }
        let cache = match JsonlCache::in_dir(&dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        if resume {
            eprintln!("[cache] resuming from {} journaled scenarios", cache.len());
        }
        session = session.cache(cache);
    }

    let report = match session.run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    if caching {
        let stats = session.stats();
        eprintln!(
            "[cache] hits: {}, computed: {}, simulations: {}, entries: {}",
            stats.cache_hits,
            stats.evaluations,
            stats.simulations,
            session.result_cache().map(|c| c.len()).unwrap_or(0)
        );
    }
    if format == Format::Json {
        // JSON is the canonical full report: group-by and baseline are
        // re-derivable from it later (`study compare`, `Query`), so
        // they deliberately do not change the emission.
        println!("{}", report.to_json());
        return;
    }
    // The summary tables live in core (`analysis::summary_table`) so
    // the study server's `/render` serves byte-identical output.
    match analysis::summary_table(&report, &group_by, baseline.as_deref()) {
        Ok(t) => println!("{}", render::table(&t, format)),
        Err(e) => {
            eprintln!("rendering failed: {e}");
            std::process::exit(1);
        }
    }
}

/// One side of a `study compare` invocation.
enum Side {
    Report(StudyReport),
    Journal(JsonlCache),
}

/// Classifies and loads a compare operand: a directory (or a path
/// ending in `.jsonl`) is a `--cache-dir` journal; anything else is a
/// report JSON file.
fn load_side(path: &str) -> Result<Side, CoreError> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        return Ok(Side::Journal(JsonlCache::in_dir(path)?));
    }
    if path.ends_with(".jsonl") {
        return Ok(Side::Journal(JsonlCache::open(path)?));
    }
    let text = std::fs::read_to_string(p).map_err(|e| CoreError::Report {
        message: format!("read {path}: {e}"),
    })?;
    StudyReport::from_json(&text).map(Side::Report)
}

/// `study compare <left> <right> [--tol <abs>]`: cell-by-cell diff of
/// two reports, or of a report against a result-cache journal (no
/// simulation, no model evaluation). Exits 0 when the sides agree,
/// 1 on divergence, 2 on usage errors.
fn compare_main(args: &[String]) {
    let mut paths: Vec<&String> = Vec::new();
    let mut tol = 0.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tol" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("--tol needs a value (absolute tolerance)");
                std::process::exit(2);
            };
            tol = value.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{value}` for --tol");
                std::process::exit(2);
            });
            if tol < 0.0 || tol.is_nan() {
                eprintln!("--tol must be a non-negative absolute tolerance, got {tol}");
                std::process::exit(2);
            }
            i += 2;
            continue;
        }
        paths.push(&args[i]);
        i += 1;
    }
    let [left, right] = paths[..] else {
        eprintln!("usage: study compare <left> <right> [--tol <abs>]");
        eprintln!(
            "  each side: a report JSON file, or a --cache-dir journal (dir or results.jsonl)"
        );
        std::process::exit(2);
    };
    let fail = |e: CoreError| -> ! {
        eprintln!("compare failed: {e}");
        std::process::exit(2);
    };
    let diff = match (
        load_side(left).unwrap_or_else(|e| fail(e)),
        load_side(right).unwrap_or_else(|e| fail(e)),
    ) {
        (Side::Report(a), Side::Report(b)) => ReportDiff::between(&a, &b, tol),
        (Side::Report(report), Side::Journal(cache)) => {
            ReportDiff::against_cache(&report, &cache, WorkloadRegistry::global(), tol)
                .unwrap_or_else(|e| fail(e))
        }
        (Side::Journal(cache), Side::Report(report)) => {
            // The walk is always report-driven, but the printed
            // left/right sides must match the operand order the user
            // typed — swap the journal back to the left.
            ReportDiff::against_cache(&report, &cache, WorkloadRegistry::global(), tol)
                .unwrap_or_else(|e| fail(e))
                .swapped()
        }
        (Side::Journal(_), Side::Journal(_)) => {
            eprintln!(
                "compare: at least one side must be a report JSON file \
                 (a journal alone has no scenario list to walk)"
            );
            std::process::exit(2);
        }
    };
    print!("{diff}");
    if !diff.is_empty() {
        std::process::exit(1);
    }
}

/// `study check [spec flags] [--journal <dir|results.jsonl>]`: static
/// pre-flight validation of a study and (optionally) a result-cache
/// journal, with **zero simulation** — no model calibrates, no trace
/// synthesizes. Every finding prints (unlike `run`, which stops at the
/// first); the grid cardinality and estimated cold cost print as info
/// lines. Exits 0 on a clean check, 1 when any error finding fired,
/// 2 on usage errors.
fn check_main(args: &[String]) {
    use aging_cache::check;

    let mut spec_args = SpecArgs::new(REPORT_NAME);
    let mut journal: Option<std::path::PathBuf> = None;
    let mut objective: Option<Objective> = None;
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut driver: Option<Driver> = None;
    let mut budget: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        if spec_args.apply(flag, value) {
            i += 2;
            continue;
        }
        match flag {
            // --cache-dir is accepted as an alias so a `run`
            // invocation turns into its pre-flight check by swapping
            // the verb, flags untouched.
            "--journal" | "--cache-dir" => {
                let p = std::path::Path::new(value);
                journal = Some(if p.is_dir() {
                    p.join(JsonlCache::FILE_NAME)
                } else {
                    p.to_path_buf()
                });
            }
            // The `study optimize` flags are accepted too, so an
            // optimize invocation turns into its pre-flight check by
            // swapping the verb. Spelling errors in the flag *values*
            // (`max:`/`>=` syntax, driver keys) are usage errors;
            // unknown metrics and driver/axis mismatches become
            // findings via `check_search`.
            "--objective" => {
                objective = Some(Objective::parse(value).unwrap_or_else(|e| {
                    eprintln!("--objective: {e}");
                    std::process::exit(2);
                }));
            }
            "--constraint" => {
                constraints.push(Constraint::parse(value).unwrap_or_else(|e| {
                    eprintln!("--constraint: {e}");
                    std::process::exit(2);
                }));
            }
            "--driver" => {
                driver = Some(Driver::parse(value).unwrap_or_else(|e| {
                    eprintln!("--driver: {e}");
                    std::process::exit(2);
                }));
            }
            "--budget" => {
                budget = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --budget (a probe count)");
                    std::process::exit(2);
                }));
            }
            _ => {
                eprintln!("unknown flag {flag} for `study check`");
                eprintln!(
                    "usage: study check [--cache-kb --line-bytes --banks --ways \
                     --replacement --l2-kb --l2-ways --update-days \
                     --policies --workloads --trace --profile --model --temp --vlow --fail \
                     --trace-cycles --seed] [--journal <dir|results.jsonl>] \
                     [--objective <max:|min:><metric>] [--constraint <metric><=|>=><bound>] \
                     [--driver <key>] [--budget <n>]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if objective.is_none() && (driver.is_some() || !constraints.is_empty() || budget.is_some()) {
        eprintln!(
            "--driver/--constraint/--budget need --objective (the search checks hang off it)"
        );
        std::process::exit(2);
    }
    let (mut spec, keys) = spec_args.into_parts();
    let mut report = check::CheckReport::default();
    if let Some(keys) = keys {
        // Resolve workload keys finding-by-finding instead of through
        // the fail-fast builder: a misspelled benchmark name must not
        // hide the rest of the report.
        let (resolved, r) = check::check_workload_keys(WorkloadRegistry::global(), &keys);
        report.merge(r);
        spec = spec.workload_objects(resolved);
    }
    match objective {
        // `check_search` re-runs `check_spec` over every leaf of the
        // space (here: the one grid), so the plain spec check would
        // duplicate its findings — run one or the other.
        Some(objective) => {
            let mut search = Search::new(ScenarioSpace::grid(spec.clone()), objective);
            for c in constraints {
                search = search.constraint(c);
            }
            if let Some(d) = driver {
                search = search.driver(d);
            }
            if let Some(b) = budget {
                search = search.budget(b);
            }
            report.merge(check::check_search(&search, ModelRegistry::global()));
        }
        None => report.merge(check::check_spec(&spec, ModelRegistry::global())),
    }
    if let Some(path) = &journal {
        let journal_check = check::check_journal(path);
        report.merge(journal_check.report);
        report.merge(check::check_coverage(&spec, &journal_check.keys));
    }
    print!("{report}");
    if !report.is_clean() {
        std::process::exit(1);
    }
}

/// Shared usage blurb for `study optimize` errors.
fn optimize_usage() -> ! {
    eprintln!(
        "usage: study optimize [spec flags] --objective <max:|min:><metric> \
         [--constraint <metric><=|>=><bound>]… [--driver exhaustive|bisect|refine] \
         [--budget <probes>] [--ensemble <seeds>] \
         [--cache-dir <dir>] [--resume] [--progress] [--sequential] \
         [--format <text|md|csv|json>] [--json]"
    );
    std::process::exit(2);
}

/// `study optimize [spec flags] --objective <max:metric|min:metric>
/// [--constraint …] [--driver …] [--budget <n>] [--ensemble <n>]`:
/// search the declared scenario space for the best feasible scenario
/// instead of sweeping all of it. Every probe batch runs through the
/// same session/cache layers as a plain `study` run, so with
/// `--cache-dir` a re-run replays warm — zero simulations, and a
/// byte-identical `SearchReport` (cache counters print on stderr, not
/// in the report, for exactly that reason).
fn optimize_main(args: &[String]) {
    let mut spec_args = SpecArgs::new(REPORT_NAME);
    let mut objective: Option<Objective> = None;
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut driver: Option<Driver> = None;
    let mut budget: Option<usize> = None;
    let mut ensemble: Option<usize> = None;
    let mut format = Format::Text;
    let mut cache_dir: Option<String> = None;
    let mut resume = false;
    let mut progress = false;
    let mut sequential = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            format = Format::Json;
            i += 1;
            continue;
        }
        if flag == "--resume" {
            resume = true;
            i += 1;
            continue;
        }
        if flag == "--progress" {
            progress = true;
            i += 1;
            continue;
        }
        if flag == "--sequential" {
            sequential = true;
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        if spec_args.apply(flag, value) {
            i += 2;
            continue;
        }
        match flag {
            "--objective" => {
                objective = Some(Objective::parse(value).unwrap_or_else(|e| {
                    eprintln!("--objective: {e}");
                    std::process::exit(2);
                }));
            }
            // Repeatable: each --constraint adds one feasibility bound.
            "--constraint" => {
                constraints.push(Constraint::parse(value).unwrap_or_else(|e| {
                    eprintln!("--constraint: {e}");
                    std::process::exit(2);
                }));
            }
            "--driver" => {
                driver = Some(Driver::parse(value).unwrap_or_else(|e| {
                    eprintln!("--driver: {e}");
                    std::process::exit(2);
                }));
            }
            "--budget" => {
                budget = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --budget (a probe count)");
                    std::process::exit(2);
                }));
            }
            "--ensemble" => {
                ensemble = Some(value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --ensemble (seeds per probe)");
                    std::process::exit(2);
                }));
            }
            "--cache-dir" => cache_dir = Some(value.clone()),
            "--format" => {
                format = Format::parse(value).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            _ => {
                eprintln!("unknown flag {flag} for `study optimize`");
                optimize_usage();
            }
        }
        i += 2;
    }
    let Some(objective) = objective else {
        eprintln!(
            "study optimize needs --objective <max:|min:><metric> \
             (e.g. --objective max:lt_years)"
        );
        optimize_usage();
    };
    if resume && cache_dir.is_none() {
        eprintln!("--resume needs --cache-dir <dir> (there is no journal to resume from)");
        std::process::exit(2);
    }
    let mut search = Search::new(ScenarioSpace::grid(spec_args.finish()), objective);
    for c in constraints {
        search = search.constraint(c);
    }
    if let Some(d) = driver {
        search = search.driver(d);
    }
    if let Some(b) = budget {
        search = search.budget(b);
    }
    if let Some(n) = ensemble {
        search = search.ensemble(n);
    }

    let mut session = StudySession::new();
    if sequential {
        session = session.exec(ExecOptions::sequential());
    }
    if progress {
        session = session.observer(Progress);
    }
    let caching = cache_dir.is_some();
    if let Some(dir) = cache_dir {
        if resume
            && !std::path::Path::new(&dir)
                .join(JsonlCache::FILE_NAME)
                .exists()
        {
            eprintln!(
                "--resume: no journal at {dir}/{} — nothing to resume",
                JsonlCache::FILE_NAME
            );
            std::process::exit(2);
        }
        let cache = match JsonlCache::in_dir(&dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        if resume {
            eprintln!("[cache] resuming from {} journaled scenarios", cache.len());
        }
        session = session.cache(cache);
    }
    let report = match search.run(&session) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study optimize failed: {e}");
            std::process::exit(1);
        }
    };
    if caching {
        let stats = session.stats();
        eprintln!(
            "[cache] hits: {}, computed: {}, simulations: {}, entries: {}",
            stats.cache_hits,
            stats.evaluations,
            stats.simulations,
            session.result_cache().map(|c| c.len()).unwrap_or(0)
        );
    }
    if format == Format::Json {
        // Canonical emission: the probe log and incumbent round-trip
        // through `SearchReport::from_json`, and a warm re-run must
        // reproduce these bytes exactly.
        println!("{}", report.to_json());
        return;
    }
    println!("{}", render::table(&report.table(), format));
}

/// `study serve [--addr <host:port>] [--cache-dir <dir>] [--threads
/// <n>] [--shutdown-token <t>] [--addr-file <path>]`: a long-lived
/// HTTP server over the study session and its journal. `GET
/// /render|/query|/compare` answer from the warm cache; `POST /run`
/// computes what is missing, with concurrent identical requests
/// coalesced into one simulation. `--addr` defaults to `127.0.0.1:0`
/// (an OS-assigned port, printed — and written to `--addr-file` —
/// once bound, so scripts can discover it). Without `--cache-dir` the
/// results live in memory and die with the server. The process runs
/// until `POST /shutdown?token=…` (requires `--shutdown-token`)
/// drains it; then it exits 0.
fn serve_main(args: &[String]) {
    let mut options = ServeOptions::default();
    let mut cache_dir: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        match flag {
            "--addr" => options.addr = value.clone(),
            "--cache-dir" => cache_dir = Some(value.clone()),
            "--threads" => {
                options.threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value `{value}` for --threads");
                    std::process::exit(2);
                });
            }
            "--shutdown-token" => options.shutdown_token = Some(value.clone()),
            "--addr-file" => addr_file = Some(value.clone()),
            _ => {
                eprintln!("unknown flag {flag} for `study serve`");
                eprintln!(
                    "usage: study serve [--addr <host:port>] [--cache-dir <dir>] \
                     [--threads <n>] [--shutdown-token <token>] [--addr-file <path>]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }

    /// Request log on stderr; stdout stays clean for piping.
    struct Stderr;
    impl ServeLog for Stderr {
        fn request(&self, method: &str, path: &str, status: u16) {
            eprintln!("[serve] {method} {path} -> {status}");
        }
    }

    let fail = |e: CoreError| -> ! {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    };
    let server = match &cache_dir {
        Some(dir) => {
            let cache = JsonlCache::in_dir(dir).unwrap_or_else(|e| fail(e));
            eprintln!("[serve] journal: {dir} ({} scenarios warm)", cache.len());
            StudyServer::bind(cache, options)
        }
        None => StudyServer::bind(MemoryCache::new(), options),
    }
    .unwrap_or_else(|e| fail(e))
    .with_log(Stderr);
    if cache_dir.is_none() {
        eprintln!("[serve] no --cache-dir: results live in memory and die with the server");
    }
    let addr = server.addr();
    eprintln!("[serve] listening on http://{addr}");
    if let Some(path) = &addr_file {
        std::fs::write(path, format!("{addr}\n")).unwrap_or_else(|e| {
            eprintln!("serve: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        });
    }
    if let Err(e) = server.serve() {
        fail(e);
    }
    let stats = server.stats();
    let session = server.session().stats();
    eprintln!(
        "[serve] drained: {} requests ({} errors, {} coalesced waits), \
         {} simulations, {} cache hits",
        stats.requests,
        stats.errors,
        stats.coalesced_waits,
        session.simulations,
        session.cache_hits
    );
}

/// `study fetch <http://host:port/path?query> [--method GET|POST]
/// [--body <text> | --body-file <path>]`: a dependency-free HTTP
/// client for the serve smoke tests (CI needs no `curl`). The
/// response body goes to stdout *byte-for-byte* — no added newline —
/// so `cmp` against a CLI rendering works. Exits 0 on a 2xx status,
/// 1 otherwise (status on stderr), 2 on usage errors.
fn fetch_main(args: &[String]) {
    use std::io::{Read, Write};

    let usage = || -> ! {
        eprintln!(
            "usage: study fetch <http://host:port/path?query> \
             [--method GET|POST] [--body <text> | --body-file <path>]"
        );
        std::process::exit(2);
    };
    let mut url: Option<&String> = None;
    let mut method: Option<String> = None;
    let mut body: Vec<u8> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--method" | "--body" | "--body-file" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("flag {arg} needs a value");
                    std::process::exit(2);
                };
                match arg {
                    "--method" => method = Some(value.to_ascii_uppercase()),
                    "--body" => body = value.clone().into_bytes(),
                    _ => {
                        body = std::fs::read(value).unwrap_or_else(|e| {
                            eprintln!("fetch: read {value}: {e}");
                            std::process::exit(2);
                        });
                    }
                }
                i += 2;
            }
            _ if url.is_none() && !arg.starts_with("--") => {
                url = Some(&args[i]);
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(url) = url else { usage() };
    let Some(rest) = url.strip_prefix("http://") else {
        eprintln!("fetch: only http:// URLs are supported, got {url}");
        std::process::exit(2);
    };
    let (host, path) = match rest.find('/') {
        Some(pos) => (&rest[..pos], &rest[pos..]),
        None => (rest, "/"),
    };
    // A body implies POST unless the method was given explicitly.
    let method = method.unwrap_or_else(|| if body.is_empty() { "GET" } else { "POST" }.to_string());

    let fail = |what: &str, e: std::io::Error| -> ! {
        eprintln!("fetch: {what}: {e}");
        std::process::exit(1);
    };
    let mut stream =
        std::net::TcpStream::connect(host).unwrap_or_else(|e| fail(&format!("connect {host}"), e));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(&body))
        .unwrap_or_else(|e| fail("send", e));
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .unwrap_or_else(|e| fail("read", e));

    let Some(split) = response.windows(4).position(|w| w == b"\r\n\r\n") else {
        eprintln!("fetch: malformed response (no header terminator)");
        std::process::exit(1);
    };
    let head = String::from_utf8_lossy(&response[..split]);
    let Some(status) = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
    else {
        eprintln!(
            "fetch: malformed status line: {}",
            head.lines().next().unwrap_or_default()
        );
        std::process::exit(1);
    };
    std::io::stdout()
        .write_all(&response[split + 4..])
        .unwrap_or_else(|e| fail("stdout", e));
    if !(200..300).contains(&status) {
        eprintln!("fetch: {method} {path} -> {status}");
        std::process::exit(1);
    }
}
