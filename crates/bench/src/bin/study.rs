//! Run an arbitrary scenario grid from the command line — the open
//! counterpart of the fixed `tableN` binaries.
//!
//! ```sh
//! cargo run --release -p repro-bench --bin study -- \
//!     --cache-kb 8,16,32 --banks 2,4 --policies probing,gray,rotate-xor \
//!     --workloads sha,CRC32 --trace-cycles 320000 --json
//! ```
//!
//! Axes default to the paper's reference point; `--workloads all` (the
//! default) runs the full 18-benchmark suite. Without `--json` a
//! compact summary table is printed.

use aging_cache::report::{pct, years, Table};
use aging_cache::study::StudySpec;
use aging_cache::PolicyRegistry;
use repro_bench::context;

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse::<T>().unwrap_or_else(|_| {
                eprintln!("invalid value `{v}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = StudySpec::new("cli study");
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        if flag == "--list-policies" {
            for (name, policy) in PolicyRegistry::global().iter() {
                println!("{name:<12} {}", policy.description());
            }
            return;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        spec = match flag {
            "--cache-kb" => spec.cache_kb(parse_list(value, flag)),
            "--line-bytes" => spec.line_bytes(parse_list(value, flag)),
            "--banks" => spec.banks(parse_list(value, flag)),
            "--update-days" => spec.update_days(parse_list(value, flag)),
            "--policies" => spec.policies(value.split(',').map(str::trim)),
            "--workloads" if value == "all" => spec,
            "--workloads" => spec
                .workload_names(value.split(',').map(str::trim))
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }),
            "--trace-cycles" => spec.trace_cycles(parse_list(value, flag)[0]),
            "--seed" => spec.base_seed(parse_list(value, flag)[0]),
            "--threads" => spec.threads(parse_list(value, flag)[0]),
            _ => {
                eprintln!("unknown flag {flag}");
                eprintln!(
                    "flags: --cache-kb --line-bytes --banks --update-days --policies \
                     --workloads --trace-cycles --seed --threads --json --list-policies"
                );
                std::process::exit(2);
            }
        };
        i += 2;
    }

    let report = match spec.run(&context()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    if json {
        println!("{}", report.to_json());
        return;
    }
    let mut t = Table::new(
        format!("study: {} scenarios", report.records().len()),
        vec![
            "kB".into(),
            "line".into(),
            "M".into(),
            "policy".into(),
            "workload".into(),
            "Esav%".into(),
            "idl%".into(),
            "LT0".into(),
            "LT".into(),
        ],
    );
    for r in report.records() {
        t.push_row(vec![
            (r.scenario.cache_bytes / 1024).to_string(),
            r.scenario.line_bytes.to_string(),
            r.scenario.banks.to_string(),
            r.scenario.policy.clone(),
            r.scenario.workload.clone(),
            pct(r.esav),
            pct(r.avg_useful_idleness()),
            years(r.lt0_years),
            years(r.lt_years),
        ]);
    }
    println!("{t}");
}
