//! Run an arbitrary scenario grid from the command line — the open
//! counterpart of the fixed `tableN` binaries.
//!
//! ```sh
//! cargo run --release -p repro-bench --bin study -- \
//!     --cache-kb 8,16,32 --banks 2,4 --policies probing,gray,rotate-xor \
//!     --workloads sha,CRC32 --trace-cycles 320000 --json
//! ```
//!
//! Axes default to the paper's reference point; `--workloads all` (the
//! default) runs the full 18-benchmark suite. The workload axis also
//! takes external trace files — `--trace csv:/path/to/trace.csv`
//! (formats: `csv`, `din`, `lackey`, or `file:` to infer from the
//! extension; repeat the flag for several traces) — whose format and
//! content hash are recorded in the report for reproducibility.
//!
//! The device axis is open too: `--model nbti:temp=105,vlow=0.7`
//! (repeat the flag for several models — parameterized keys use commas
//! internally), plus the `--temp`/`--vlow`/`--fail` override axes that
//! cross every listed model with operating-point sweeps.
//! `--list-models` shows the registered models and the parameterized
//! key families. Without `--json` a compact summary table is printed.
//!
//! The execution layer is on the command line too:
//!
//! * `--cache-dir <dir>` journals every finished scenario into
//!   `<dir>/results.jsonl`, keyed by its content-addressed
//!   fingerprint. A re-run — identical, widened, or interrupted
//!   halfway — replays journaled points byte-identically and computes
//!   only what is missing; a fully warm run executes zero simulations.
//!   Cache counters print on stderr after the run.
//! * `--resume` asserts the intent: it requires `--cache-dir` and
//!   fails fast if the journal does not exist yet.
//! * `--progress` streams per-scenario progress to stderr as workers
//!   finish (`cached` marks scenarios replayed from the journal).
//! * `--sequential` forces the single-threaded executor backend
//!   (`--threads N` caps the threaded one, as before).

use aging_cache::exec::{ExecObserver, ExecOptions, RecordOrigin};
use aging_cache::model::ModelRegistry;
use aging_cache::report::{pct, years, Table};
use aging_cache::rescache::{JsonlCache, ResultCache};
use aging_cache::session::StudySession;
use aging_cache::study::{ScenarioRecord, StudySpec};
use aging_cache::{PolicyRegistry, WorkloadRegistry};

/// `--progress`: per-scenario streaming to stderr.
struct Progress;

impl ExecObserver for Progress {
    fn on_start(&self, name: &str, total: usize) {
        eprintln!("[study] {name}: {total} scenarios");
    }

    fn on_record(&self, record: &ScenarioRecord, origin: RecordOrigin, done: usize, total: usize) {
        let s = &record.scenario;
        eprintln!(
            "[{done}/{total}] {}kB/{}B/M={} {} {} {}{}",
            s.cache_bytes / 1024,
            s.line_bytes,
            s.banks,
            s.policy,
            s.model,
            s.workload,
            if origin == RecordOrigin::Cached {
                " (cached)"
            } else {
                ""
            }
        );
    }
}

fn parse_list<T: std::str::FromStr>(value: &str, flag: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse::<T>().unwrap_or_else(|_| {
                eprintln!("invalid value `{v}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = StudySpec::new("cli study");
    let mut json = false;
    // The workload axis is assembled from --workloads and --trace and
    // applied once after parsing: `None` = the full default suite.
    let mut workloads: Option<Vec<String>> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut models: Vec<String> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut resume = false;
    let mut progress = false;
    let mut sequential = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        if flag == "--resume" {
            resume = true;
            i += 1;
            continue;
        }
        if flag == "--progress" {
            progress = true;
            i += 1;
            continue;
        }
        if flag == "--sequential" {
            sequential = true;
            i += 1;
            continue;
        }
        if flag == "--list-policies" {
            for (name, policy) in PolicyRegistry::global().iter() {
                println!("{name:<12} {}", policy.description());
            }
            return;
        }
        if flag == "--list-workloads" {
            for (name, workload) in WorkloadRegistry::global().iter() {
                println!("{name:<12} {}", workload.description());
            }
            println!("{:<12} external trace files also work: csv:/path, din:/path, lackey:/path, file:/path", "…");
            println!(
                "{:<12} pinned per-bank idleness profiles: profile:s0,s1,…",
                "…"
            );
            return;
        }
        if flag == "--list-models" {
            for (name, model) in ModelRegistry::global().iter() {
                println!("{name:<12} {}", model.description());
                println!("{:<12}   {}", "", model.provenance());
            }
            println!(
                "{:<12} parameterized keys: nbti:temp=<degC>,vlow=<V>,sleep=gated|scaled,fail=<pct>",
                "…"
            );
            println!(
                "{:<12}                     variation:<sigma-mv>[,cells=<n>,q=<quantile>]  drv:vlow=<V>[,aged=<dVth>]",
                "…"
            );
            return;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag {flag} needs a value");
            std::process::exit(2);
        };
        spec = match flag {
            "--cache-kb" => spec.cache_kb(parse_list(value, flag)),
            "--line-bytes" => spec.line_bytes(parse_list(value, flag)),
            "--banks" => spec.banks(parse_list(value, flag)),
            "--update-days" => spec.update_days(parse_list(value, flag)),
            "--policies" => spec.policies(value.split(',').map(str::trim)),
            "--workloads" if value == "all" => {
                // Explicit full suite (in suite order), so a --trace
                // appends to it instead of replacing it.
                workloads = Some(
                    trace_synth::suite::mediabench()
                        .iter()
                        .map(|p| p.name().to_string())
                        .collect(),
                );
                spec
            }
            "--workloads" => {
                workloads = Some(value.split(',').map(|s| s.trim().to_string()).collect());
                spec
            }
            "--trace" => {
                traces.push(value.clone());
                spec
            }
            "--profile" => {
                // Repeatable: a pinned per-bank idleness profile
                // (comma-separated sleep fractions, no simulation).
                traces.push(format!("profile:{}", value.trim()));
                spec
            }
            // Deliberately no `--models` alias: commas cannot delimit
            // models (parameterized keys use them internally), so a
            // plural form would invite `--models a,b` as one bad key.
            "--model" => {
                // Repeatable: each --model names exactly one model.
                models.push(value.trim().to_string());
                spec
            }
            "--temp" => spec.temps_c(parse_list(value, flag)),
            "--vlow" => spec.vdd_low(parse_list(value, flag)),
            "--fail" => spec.failure_pct(parse_list(value, flag)),
            "--trace-cycles" => spec.trace_cycles(parse_list(value, flag)[0]),
            "--seed" => spec.base_seed(parse_list(value, flag)[0]),
            "--threads" => spec.threads(parse_list(value, flag)[0]),
            "--cache-dir" => {
                cache_dir = Some(value.clone());
                spec
            }
            _ => {
                eprintln!("unknown flag {flag}");
                eprintln!(
                    "flags: --cache-kb --line-bytes --banks --update-days --policies \
                     --workloads --trace <format:path> --profile <s0,s1,…> \
                     --model --temp --vlow --fail \
                     --trace-cycles --seed --threads --sequential \
                     --cache-dir <dir> --resume --progress \
                     --json --list-policies --list-workloads --list-models"
                );
                std::process::exit(2);
            }
        };
        i += 2;
    }
    // --trace and --profile append to the --workloads selection (or,
    // with `--workloads all`/no selection, replace the default suite);
    // each file's format and content hash lands in the report.
    let keys = match (workloads, traces.is_empty()) {
        (Some(mut named), _) => {
            named.extend(traces);
            Some(named)
        }
        (None, false) => Some(traces),
        (None, true) => None, // default suite
    };
    if let Some(keys) = keys {
        spec = spec.workload_names(&keys).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if !models.is_empty() {
        spec = spec.models(models);
    }

    if resume && cache_dir.is_none() {
        eprintln!("--resume needs --cache-dir <dir> (there is no journal to resume from)");
        std::process::exit(2);
    }
    let mut session = StudySession::new();
    if sequential {
        session = session.exec(ExecOptions::sequential());
    }
    if progress {
        session = session.observer(Progress);
    }
    let caching = cache_dir.is_some();
    if let Some(dir) = cache_dir {
        if resume
            && !std::path::Path::new(&dir)
                .join(JsonlCache::FILE_NAME)
                .exists()
        {
            eprintln!(
                "--resume: no journal at {dir}/{} — nothing to resume",
                JsonlCache::FILE_NAME
            );
            std::process::exit(2);
        }
        let cache = match JsonlCache::in_dir(&dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        if resume {
            eprintln!("[cache] resuming from {} journaled scenarios", cache.len());
        }
        session = session.cache(cache);
    }

    let report = match session.run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    if caching {
        let stats = session.stats();
        eprintln!(
            "[cache] hits: {}, computed: {}, simulations: {}, entries: {}",
            stats.cache_hits,
            stats.evaluations,
            stats.simulations,
            session.result_cache().map(|c| c.len()).unwrap_or(0)
        );
    }
    if json {
        println!("{}", report.to_json());
        return;
    }
    let metric = |v: Option<f64>| match v {
        Some(v) => years(v),
        None => "-".into(),
    };
    let mut t = Table::new(
        format!("study: {} scenarios", report.records().len()),
        vec![
            "kB".into(),
            "line".into(),
            "M".into(),
            "model".into(),
            "policy".into(),
            "workload".into(),
            "Esav%".into(),
            "idl%".into(),
            "LT0".into(),
            "LT".into(),
        ],
    );
    for r in report.records() {
        t.push_row(vec![
            (r.scenario.cache_bytes / 1024).to_string(),
            r.scenario.line_bytes.to_string(),
            r.scenario.banks.to_string(),
            r.scenario.model.clone(),
            r.scenario.policy.clone(),
            r.scenario.workload.clone(),
            pct(r.esav),
            pct(r.avg_useful_idleness()),
            metric(r.metric("lt0_years")),
            metric(r.metric("lt_years")),
        ]);
    }
    println!("{t}");
}
