//! SNM degradation trajectories: read SNM vs time for several sleep
//! fractions — the curve family behind the paper's "lifetime = 20 % SNM
//! degradation" criterion (its Fig.-style companion to Table II).

use aging_cache::report::Table;
use nbti_model::{CellDesign, LifetimeSolver, SleepMode, StressProfile};

fn main() {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration");
    let fresh = solver.fresh_snm();
    let failure = solver.failure_snm();

    let sleeps = [0.0, 0.25, 0.5, 0.75, 0.95];
    let mut t = Table::new(
        "Read SNM vs time (mV), by sleep fraction (drowsy sleep, p0 = 0.5)",
        std::iter::once("years".to_string())
            .chain(sleeps.iter().map(|s| format!("S={s:.2}")))
            .collect(),
    );
    for year in [0.0f64, 0.5, 1.0, 2.0, 2.93, 4.0, 6.0, 8.0, 12.0] {
        let mut row = vec![format!("{year:.2}")];
        for &s in &sleeps {
            let p = StressProfile::new(0.5, s, SleepMode::VoltageScaled).expect("profile");
            let snm = solver.snm_after(&p, year).expect("snm");
            let marker = if snm < failure { " !" } else { "" };
            row.push(format!("{:.1}{marker}", 1000.0 * snm));
        }
        t.push_row(row);
    }
    t.push_note(format!(
        "fresh SNM {:.1} mV; failure below {:.1} mV (20 % degradation); '!' marks dead cells",
        1000.0 * fresh,
        1000.0 * failure
    ));
    println!("{t}");
}
