//! Regenerates Table IV: idleness and lifetime vs cache size and banks.

use aging_cache::experiment::table4;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match table4(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}
