//! Regenerates Table IV: idleness and lifetime vs cache size and banks.
//! A `StudySpec` preset over the generic grid runner; pass `--json` for
//! the raw report.

use aging_cache::{presets, views};
use repro_bench::{default_config, run_preset, session};

fn main() {
    run_preset(
        presets::table4(&default_config()),
        &session(),
        views::table4,
    );
}
