//! Extension study: process variation × NBTI aging — a preset + view
//! over the Study API's model axis (`--json` for the raw report).
//!
//! Per-cell Vth mismatch pre-shrinks one butterfly lobe, so banks
//! (which die with their worst cell) live visibly shorter than the
//! nominal-cell analysis suggests — and re-indexing's *relative* gain
//! survives, because it scales every bank's stress rate equally. The
//! grid behind this table is
//! `aging_cache::presets::variation_study`: `variation:<sigma>` models
//! over the mismatch-sigma range.

use aging_cache::{presets, views};
use repro_bench::{run_preset, section, session};

fn main() {
    section("Process variation x NBTI (bank of 37k cells)");
    run_preset(
        presets::variation_study(),
        &session(),
        views::variation_study,
    );
}
