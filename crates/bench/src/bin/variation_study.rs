//! Extension study: process variation × NBTI aging.
//!
//! Per-cell Vth mismatch pre-shrinks one butterfly lobe, so banks (which
//! die with their worst cell) live visibly shorter than the nominal-cell
//! analysis suggests — and re-indexing's *relative* gain survives, because
//! it scales every bank's stress rate equally. Sweeps the mismatch sigma
//! and reports bank-lifetime quantiles for an always-on and a re-indexed
//! drowsy cache.

use aging_cache::report::{years, Table};
use nbti_model::{CellDesign, LifetimeSolver, VariationModel};
use repro_bench::section;

fn main() {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration");
    let r_v = solver.rd().voltage_acceleration(solver.design().vdd_low());
    // A 16 kB / M = 4 bank: 4 kB of data + tags ≈ 37k cells.
    let cells = 37_000u64;

    section("Process variation x NBTI (bank of 37k cells)");
    let mut t = Table::new(
        "Bank lifetime quantiles vs Vth mismatch sigma (years)",
        vec![
            "sigma".into(),
            "q10 busy".into(),
            "q50 busy".into(),
            "q50 drowsy+reindex".into(),
            "reindex gain %".into(),
        ],
    );
    // Busy bank: rate = 0.5 (always-on balanced). Re-indexed drowsy cache
    // at the suite-average 42 % sleep: rate = 0.5 * (1 - S(1 - r_v)).
    let busy_rate = 0.5;
    let reindexed_rate = 0.5 * (1.0 - 0.42 * (1.0 - r_v));
    for sigma_mv in [0.0, 15.0, 30.0, 45.0] {
        let var = VariationModel::new(sigma_mv / 1000.0, cells).expect("model");
        let table = var.characterize(&solver).expect("characterization");
        let q10 = var.bank_lifetime_quantile(&table, busy_rate, 0.10);
        let q50 = var.bank_lifetime_quantile(&table, busy_rate, 0.50);
        let q50_re = var.bank_lifetime_quantile(&table, reindexed_rate, 0.50);
        t.push_row(vec![
            format!("{sigma_mv:.0} mV"),
            years(q10),
            years(q50),
            years(q50_re),
            format!("{:+.1}", 100.0 * (q50_re - q50) / q50),
        ]);
    }
    t.push_note(
        "variation shortens absolute lifetimes (worst cell of 37k), but the \
         re-indexing gain is rate-relative and survives unchanged",
    );
    println!("{t}");
}
