//! Regenerates Table III: energy savings and lifetime vs line size.

use aging_cache::experiment::table3;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match table3(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
