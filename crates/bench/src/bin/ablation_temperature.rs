//! Ablation: operating temperature.
//!
//! NBTI is Arrhenius-activated: the calibrated 2.93-year cell lives at
//! 85 °C; cooler parts age far slower, hotter parts far faster, while the
//! *relative* benefit of re-indexing is temperature-independent (rates
//! scale uniformly). This binary quantifies both statements.

use aging_cache::aging::AgingAnalysis;
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use nbti_model::{CellDesign, LifetimeSolver};

fn main() {
    let sleep = [0.10, 0.80, 0.60, 0.30];
    let reference =
        LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration");

    let mut t = Table::new(
        "Ablation: operating temperature (calibration fixed at 85 degC)",
        vec![
            "temperature".into(),
            "LT0".into(),
            "LT (probing)".into(),
            "reindex gain %".into(),
        ],
    );
    for celsius in [45.0, 65.0, 85.0, 105.0, 125.0] {
        let design = CellDesign::default_45nm()
            .with_temperature(celsius + 273.15)
            .expect("valid temperature");
        // Same calibrated drift model; only the operating point moves.
        let solver = LifetimeSolver::new(design, reference.rd().clone(), 0.20).expect("solver");
        let aging = AgingAnalysis::new(solver);
        let lt0 = aging
            .cache_lifetime(&sleep, 0.5, PolicyKind::Identity)
            .expect("lifetime");
        let lt = aging
            .cache_lifetime(&sleep, 0.5, PolicyKind::Probing)
            .expect("lifetime");
        t.push_row(vec![
            format!("{celsius:.0} degC"),
            years(lt0),
            years(lt),
            format!("{:+.1}", 100.0 * (lt - lt0) / lt0),
        ]);
    }
    t.push_note("the re-indexing gain is a pure ratio and survives any uniform rate scaling");
    println!("{t}");
}
