//! Ablation: operating temperature — a preset + view over the Study
//! API's model axis (`--json` for the raw report).
//!
//! NBTI is Arrhenius-activated: the calibrated 2.93-year cell lives at
//! 85 °C; cooler parts age far slower, hotter parts far faster, while
//! the *relative* benefit of re-indexing is temperature-independent
//! (rates scale uniformly). The grid behind this table is
//! `aging_cache::presets::ablation_temperature`: the reference model
//! swept over `StudySpec::temps_c`, driven by a pinned idleness
//! profile.

use aging_cache::{presets, views};
use repro_bench::{run_preset, session};

fn main() {
    run_preset(
        presets::ablation_temperature(),
        &session(),
        views::ablation_temperature,
    );
}
