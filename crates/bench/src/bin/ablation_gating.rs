//! Ablation: power-gating sleep vs the paper's voltage scaling.
//!
//! The paper chooses voltage scaling because memory-compiler blocks do not
//! expose their internals (§III-A1) and because ref. \[7\] found it has
//! better power/delay transition characteristics. Power gating, where
//! available, stops NBTI aging entirely during sleep (§I: floating nodes
//! pull to '1'). This binary quantifies how much lifetime that would buy
//! on the same measured idleness.

use aging_cache::aging::AgingAnalysis;
use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use nbti_model::SleepMode;
use repro_bench::{context, default_config};
use trace_synth::suite;

fn main() {
    let cfg = default_config();
    let ctx = context();
    let vs = ctx.aging.clone();
    let pg = AgingAnalysis::new(vs.solver().clone()).with_mode(SleepMode::power_gated());

    let mut t = Table::new(
        "Ablation: sleep mechanism (16 kB, M = 4, Probing)",
        vec![
            "bench".into(),
            "LT drowsy".into(),
            "LT gated".into(),
            "gated gain %".into(),
        ],
    );
    for (i, p) in suite::mediabench().iter().enumerate() {
        let geom = cfg.geometry().expect("valid geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("valid arch");
        let out = arch
            .simulate(
                p.trace(cfg.seed + i as u64).take(cfg.trace_cycles as usize),
                UpdateSchedule::Never,
            )
            .expect("simulation");
        let sleep = out.sleep_fraction_all();
        let lt_vs = vs
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Probing)
            .expect("drowsy lifetime");
        let lt_pg = pg
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Probing)
            .expect("gated lifetime");
        t.push_row(vec![
            p.name().to_string(),
            years(lt_vs),
            years(lt_pg),
            format!("{:+.1}", 100.0 * (lt_pg - lt_vs) / lt_vs),
        ]);
    }
    t.push_note("power gating is state-destroying and needs cell access the paper's flow lacks");
    println!("{t}");
}
