//! Ablation: the drowsy-voltage design knob.
//!
//! Lowering `Vdd,low` slows NBTI aging during sleep (stronger recovery)
//! and cuts retention leakage, but it eats into the data-retention-voltage
//! margin — and that margin shrinks further as the cell ages. This binary
//! sweeps the drowsy rail and reports the lifetime, the aging
//! deceleration, and the end-of-life DRV safety margin, bracketing the
//! paper's 0.75 V choice.

use aging_cache::aging::AgingAnalysis;
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use nbti_model::{CellDesign, DrvAnalysis, LifetimeSolver};

fn main() {
    let sleep = [0.05, 0.95, 0.90, 0.40]; // sha-like idleness profile

    let mut t = Table::new(
        "Ablation: drowsy rail voltage (sha-like idleness, Probing)",
        vec![
            "Vdd,low".into(),
            "aging accel in sleep".into(),
            "LT (years)".into(),
            "fresh DRV margin".into(),
            "aged DRV margin".into(),
        ],
    );
    for vlow in [0.55, 0.65, 0.75, 0.85, 0.95] {
        let design = CellDesign::default_45nm()
            .with_vdd_low(vlow)
            .expect("valid drowsy voltage");
        let solver = LifetimeSolver::calibrated(design.clone(), 2.93).expect("calibration");
        let accel = solver.rd().voltage_acceleration(vlow);
        let aging = AgingAnalysis::new(solver);
        let lt = aging
            .cache_lifetime(&sleep, 0.5, PolicyKind::Probing)
            .expect("lifetime");
        let drv = DrvAnalysis::new(design);
        let fresh = drv.drowsy_margin(0.0, 0.0).expect("fresh DRV");
        // End-of-life aging state: near the critical shift.
        let aged = drv.drowsy_margin(0.08, 0.08).expect("aged DRV");
        t.push_row(vec![
            format!("{vlow:.2} V"),
            format!("{:.2}x", accel),
            years(lt),
            format!("{:+.0} mV", 1000.0 * fresh),
            format!("{:+.0} mV", 1000.0 * aged),
        ]);
    }
    t.push_note(
        "lower rails slow aging but aging costs ~80 mV of retention margin over life; \
         the paper's 0.75 V keeps a comfortable aged margin while tripling sleep relief",
    );
    println!("{t}");
}
