//! Ablation: the drowsy-voltage design knob — a preset + view over the
//! Study API's model axis (`--json` for the raw report).
//!
//! Lowering `Vdd,low` slows NBTI aging during sleep (stronger
//! recovery) and cuts retention leakage, but it eats into the
//! data-retention-voltage margin — and that margin shrinks further as
//! the cell ages. The grid behind this table is
//! `aging_cache::presets::ablation_vlow`: the `nbti` (lifetime) and
//! `drv` (retention margin) models swept together over
//! `StudySpec::vdd_low`, bracketing the paper's 0.75 V choice.

use aging_cache::{presets, views};
use repro_bench::{run_preset, session};

fn main() {
    run_preset(presets::ablation_vlow(), &session(), views::ablation_vlow);
}
