//! Ablation: cell flipping (ref. \[15\]) composed with partitioning.
//!
//! With the paper's balanced workloads (`p0 = 0.5`) flipping is neutral;
//! this study skews the stored-value distribution and shows value
//! balancing and idleness balancing attack independent aging factors.

use aging_cache::flip::CellFlip;
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use repro_bench::context;

fn main() {
    let ctx = context();
    let aging = &ctx.aging;
    let sleep = [0.9, 0.6, 0.3, 0.0]; // a representative uneven profile
    let flip = CellFlip::ideal();

    let mut t = Table::new(
        "Ablation: cell flipping x re-indexing (uneven idleness, skewed data)",
        vec![
            "p0".into(),
            "neither".into(),
            "flip only".into(),
            "reindex only".into(),
            "both".into(),
        ],
    );
    for p0 in [0.5, 0.7, 0.9, 1.0] {
        let neither = aging
            .cache_lifetime(&sleep, p0, PolicyKind::Identity)
            .expect("lifetime");
        let flip_only = flip
            .cache_lifetime(aging, &sleep, p0, PolicyKind::Identity)
            .expect("lifetime");
        let reindex_only = aging
            .cache_lifetime(&sleep, p0, PolicyKind::Probing)
            .expect("lifetime");
        let both = flip
            .cache_lifetime(aging, &sleep, p0, PolicyKind::Probing)
            .expect("lifetime");
        t.push_row(vec![
            format!("{p0:.1}"),
            years(neither),
            years(flip_only),
            years(reindex_only),
            years(both),
        ]);
    }
    t.push_note(format!(
        "flip-bit storage overhead: {:.1} % of the data array",
        100.0 * flip.storage_overhead()
    ));
    println!("{t}");
}
