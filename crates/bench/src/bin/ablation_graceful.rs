//! Ablation: the §III-A2 "graceful degradation" alternative.
//!
//! The paper rejects progressively disabling aged-out banks because the
//! cache shrinks under the application. This binary shows the failure
//! timeline and the miss-rate collapse at each stage, next to the
//! re-indexed cache's single (much later) failure time.

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::graceful::GracefulDegradation;
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use repro_bench::{context, default_config};
use trace_synth::suite;

fn main() {
    let cfg = default_config();
    let ctx = context();
    for name in ["sha", "adpcm.dec", "dijkstra"] {
        let p = suite::by_name(name).expect("benchmark exists");
        let geom = cfg.geometry().expect("valid geometry");
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("valid arch");
        let out = arch
            .simulate(
                p.trace(cfg.seed).take(cfg.trace_cycles as usize),
                UpdateSchedule::Never,
            )
            .expect("simulation");
        let sleep = out.sleep_fraction_all();
        let g = GracefulDegradation::new(geom, 160_000).expect("valid analysis");
        let stages = g
            .timeline(&p, &sleep, &ctx.aging, cfg.seed)
            .expect("timeline");
        let reindexed = ctx
            .aging
            .cache_lifetime(&sleep, p.p0(), PolicyKind::Probing)
            .expect("lifetime");

        let mut t = Table::new(
            format!("Graceful degradation timeline: {name}"),
            vec!["from year".into(), "alive banks".into(), "miss rate".into()],
        );
        for s in &stages {
            t.push_row(vec![
                years(s.starts_at_years),
                s.alive_banks.to_string(),
                format!("{:.3}", s.miss_rate),
            ]);
        }
        t.push_note(format!(
            "re-indexed cache instead keeps full capacity until {} years",
            years(reindexed)
        ));
        println!("{t}");
    }
}
