//! Regenerates the headline claims of §I / §IV-B1.
//! A `StudySpec` preset over the generic grid runner; pass `--json` for
//! the raw report.

use aging_cache::{presets, views};
use repro_bench::{default_config, run_preset, session};

fn main() {
    run_preset(
        presets::claims(&default_config()),
        &session(),
        views::claims,
    );
}
